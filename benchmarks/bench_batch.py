"""Batched multi-query engine benchmark: one plan for a whole workload.

Not a paper figure: this pins the perf properties of
``repro.core.batch_query`` — answering a Q-query workload as one plan
(shared leaf reads, a single (Q x N) signature screen, matrix-shaped
refinement kernels) instead of Q independent searches —

* at Q = 64 the batched workload completes at >= 2x the serial loop's
  throughput on the same index,
* the batch physically loads far fewer leaf blocks than the serial
  runs touch in total (the leaf-share factor), and
* every per-query answer is bit-for-bit the serial answer.

Both arms query the *same* materialized index, single-threaded, so the
work counters are deterministic and the JSON artifact diffs cleanly
against the committed baseline.  Run with
``REPRO_BENCH_JSON=BENCH_batch.json`` to dump the measured numbers;
wall-clock ratios carry ``speedup`` in their key so ``bench-diff``
skips them across machines.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import HerculesIndex
from repro.eval.experiments import ExperimentResult
from repro.eval.methods import hercules_config
from repro.eval.metrics import run_workload
from repro.workloads.generators import make_noise_queries, random_walks

from .conftest import record_table, scaled

#: Long series and a large k make refinement (raw reads + exact
#: distances) the dominant cost, which is where shared scans and the
#: matrix kernel win; the medium-noise workload keeps lower-bound
#: pruning realistic rather than degenerate.
_LENGTH = 256
_NUM_QUERIES = 64
_K = 100


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(4_000), _LENGTH, seed=13)


@pytest.fixture(scope="module")
def queries(data):
    """Medium-difficulty queries with realistic locality: noisy copies
    of indexed rows cluster around the same subtrees, so consecutive
    workload queries genuinely share leaves."""
    return make_noise_queries(data, _NUM_QUERIES, 0.5, seed=11)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("bench-batch") / "hercules"
    config = hercules_config(
        data.shape[0], num_threads=1, prefilter=True, prefilter_bits=8
    )
    HerculesIndex.build(data, config, directory=directory).close()
    return directory


def _timed_workload(method, queries, k, num_series, batched, repeats=3):
    """(best wall seconds, last WorkloadResult) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_workload(
            method, queries, k=k, num_series=num_series, batched=batched
        )
        best = min(best, time.perf_counter() - started)
    return best, result


def test_batched_workload(index_dir, data, queries):
    index = HerculesIndex.open(index_dir)
    try:
        num_series = data.shape[0]
        serial_seconds, serial = _timed_workload(
            index, queries, _K, num_series, batched=False
        )
        batch_seconds, batched = _timed_workload(
            index, queries, _K, num_series, batched=True
        )
        speedup = serial_seconds / batch_seconds

        # One more batch for the sharing stats and the parity gate.
        batch = index.knn_batch(queries, k=_K)
        stats = batch.stats

        serial_reads = sum(p.series_accessed for p in serial.profiles)
        batch_reads = sum(p.series_accessed for p in batched.profiles)

        result = ExperimentResult(
            figure="bench_batch",
            headers=[
                "scenario",
                "queries",
                "leaf_reads",
                "leaf_uses",
                "share",
                "ms_per_query",
            ],
        )
        result.rows.append(
            [
                "serial",
                _NUM_QUERIES,
                "-",
                "-",
                "-",
                serial_seconds / _NUM_QUERIES * 1e3,
            ]
        )
        result.rows.append(
            [
                "batched",
                _NUM_QUERIES,
                stats.unique_leaf_reads,
                stats.leaf_uses,
                f"{stats.leaf_share_factor:.2f}x",
                batch_seconds / _NUM_QUERIES * 1e3,
            ]
        )
        result.raw = {
            "serial": serial,
            "batched": batched,
            "workload_speedup": speedup,
            "leaf_share_factor": stats.leaf_share_factor,
            "unique_lrd_reads": int(stats.unique_leaf_reads),
            "leaf_uses": int(stats.leaf_uses),
            "kernel_rows_per_read": stats.kernel_rows_per_read,
            "screen_ms_per_query": stats.screen_seconds_per_query * 1e3,
        }
        record_table(
            "Batched multi-query engine: shared scans vs the serial loop",
            result,
        )

        # -- parity: batching must never change an answer ------------------
        for qi, answer in enumerate(batch):
            reference = index.knn(queries[qi], k=_K)
            assert np.array_equal(reference.distances, answer.distances)
            assert np.array_equal(reference.positions, answer.positions)

        # The perf properties this PR claims, pinned as assertions.
        assert stats.leaf_share_factor > 1.0, (
            f"no leaf sharing at Q={_NUM_QUERIES} "
            f"({stats.unique_leaf_reads} reads, {stats.leaf_uses} uses)"
        )
        assert batch_reads <= serial_reads, (
            "batched profiles report more work than serial "
            f"({batch_reads} vs {serial_reads} series)"
        )
        assert speedup >= 2.0, (
            f"batched workload only {speedup:.2f}x the serial loop "
            f"at Q={_NUM_QUERIES}"
        )
    finally:
        index.close()
