"""Telemetry overhead gate: instruments on must not tax the hot path.

The windowed instruments sit inside every query (``observe_query`` /
``observe_search``), so this benchmark is the contract that keeps them
honest: the same query workload runs with telemetry fully off (no hub:
the hooks are single-global-read no-ops) and fully on (hub + journal +
SLO tracker + a background :class:`TelemetrySink` flushing a spool),
and the on-throughput must stay within 5% of off.

Run with ``REPRO_BENCH_JSON=BENCH_obs.json`` to dump the measured
throughputs as a JSON artifact for ``repro bench-diff``.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core import HerculesIndex
from repro.eval.experiments import ExperimentResult
from repro.eval.methods import hercules_config
from repro.workloads.generators import make_noise_queries, random_walks

from .conftest import record_table, scaled

#: Telemetry may cost at most this fraction of query throughput.
MAX_OVERHEAD = 0.05

_REPEATS = 5


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(2_000), 64, seed=19)


@pytest.fixture(scope="module")
def queries(data):
    return make_noise_queries(data, 16, 0.25, seed=23)


@pytest.fixture(scope="module")
def index(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("bench-obs") / "hercules"
    config = hercules_config(data.shape[0], num_query_threads=1)
    built = HerculesIndex.build(data, config, directory=directory)
    yield built
    built.close()


def _run_workload(index, queries) -> None:
    for query in queries:
        answer = index.knn(query, k=5)
        obs.observe_query(answer.profile.time_total)


def _best_qps(index, queries) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        started = time.perf_counter()
        _run_workload(index, queries)
        best = min(best, time.perf_counter() - started)
    return len(queries) / best


def test_telemetry_overhead_is_bounded(index, queries, tmp_path_factory):
    # Warm caches/JIT paths once so neither side pays first-run costs.
    _run_workload(index, queries)

    off_qps = _best_qps(index, queries)

    hub = obs.TelemetryHub()
    spool = tmp_path_factory.mktemp("bench-obs-spool")
    sink = obs.TelemetrySink(
        spool, hub.registry, journal=hub.journal, slo=hub.slo,
        interval=0.25,
    )
    sink.start()
    try:
        with obs.use_hub(hub):
            on_qps = _best_qps(index, queries)
    finally:
        sink.close()

    observed = hub.registry.summary()
    recorded = observed["windowed_counters"]["query.requests"]["total"]
    assert recorded == len(queries) * _REPEATS, (
        "the on-side must actually have been instrumented"
    )
    assert observed["windowed_histograms"]["engine.search_seconds"][
        "total_count"
    ] == recorded
    obs.parse_openmetrics((spool / "metrics.prom").read_text())

    overhead = max(0.0, 1.0 - on_qps / off_qps)
    result = ExperimentResult(
        figure="bench_obs_overhead",
        headers=["scenario", "qps", "overhead"],
        rows=[
            ["telemetry off", f"{off_qps:.1f}", "-"],
            ["telemetry on", f"{on_qps:.1f}", f"{overhead:.2%}"],
        ],
        raw={
            ("telemetry_off",): {"qps": off_qps},
            ("telemetry_on",): {
                "qps": on_qps,
                "overhead_fraction": overhead,
                "queries_recorded": recorded,
            },
        },
    )
    record_table("Telemetry overhead (queries/s, best of 5)", result)

    assert on_qps >= off_qps * (1.0 - MAX_OVERHEAD), (
        f"telemetry costs {overhead:.1%} of query throughput "
        f"(limit {MAX_OVERHEAD:.0%}): {off_qps:.1f} -> {on_qps:.1f} qps"
    )
