"""Micro-benchmarks of the substrate kernels.

Not a paper figure: these measure the building blocks every experiment
rests on (batch ED, early abandoning, LB_EAPCA, LB_SAX/MINDIST, PAA,
SAX symbolization, EAPCA segment statistics) so kernel regressions are
visible independently of the end-to-end harnesses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distance.euclidean import (
    batch_squared_euclidean,
    early_abandon_squared,
)
from repro.distance.lower_bounds import lb_eapca
from repro.summarization.eapca import Segmentation, SeriesSketch, segment_stats
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace
from repro.workloads.generators import random_walks


@pytest.fixture(scope="module")
def corpus():
    return random_walks(10_000, 128, seed=1)


@pytest.fixture(scope="module")
def query(corpus):
    return random_walks(1, 128, seed=2)[0]


def test_batch_squared_euclidean(benchmark, corpus, query):
    benchmark(batch_squared_euclidean, query, corpus)


def test_early_abandon_squared(benchmark, corpus, query):
    full = batch_squared_euclidean(query, corpus)
    cutoff = float(np.quantile(full, 0.01))
    benchmark(early_abandon_squared, query, corpus, cutoff)


def test_paa_16_segments(benchmark, corpus):
    benchmark(paa, corpus, 16)


def test_sax_symbolize(benchmark, corpus):
    space = SaxSpace(16, 256)
    values = paa(corpus, 16)
    benchmark(space.symbolize, values)


def test_sax_mindist_batch(benchmark, corpus, query):
    space = SaxSpace(16, 256)
    words = space.symbolize(paa(corpus, 16))
    q_paa = paa(query, 16)
    benchmark(space.mindist, q_paa, words, 128)


def test_eapca_segment_stats(benchmark, corpus):
    seg = Segmentation.uniform(128, 16)
    benchmark(segment_stats, corpus, seg)


def test_lb_eapca_per_node(benchmark, corpus, query):
    seg = Segmentation([16, 40, 80, 128])
    means, stds = segment_stats(corpus, seg)
    synopsis = np.empty((4, 4))
    synopsis[:, 0] = means.min(axis=0)
    synopsis[:, 1] = means.max(axis=0)
    synopsis[:, 2] = stds.min(axis=0)
    synopsis[:, 3] = stds.max(axis=0)
    sketch = SeriesSketch(query)
    q_means, q_stds = sketch.stats(seg)
    benchmark(lb_eapca, q_means, q_stds, synopsis, seg.lengths)


def test_series_sketch_stats(benchmark, query):
    sketch = SeriesSketch(query)
    segmentations = [
        Segmentation.uniform(128, m) for m in (2, 4, 8, 16)
    ]

    def evaluate():
        fresh = SeriesSketch(query)
        for seg in segmentations:
            fresh.stats(seg)

    benchmark(evaluate)
