"""Micro-benchmarks of structural operations.

Not a paper figure: split-policy selection, HTree serialization, HBuffer
throughput, and result-set maintenance — the fixed costs underneath
index construction and query answering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffers import HBuffer
from repro.core.results import ResultSet
from repro.core.split import choose_split
from repro.storage.htree import load_tree, save_tree
from repro.summarization.eapca import Segmentation
from repro.workloads.generators import random_walks


def test_choose_split_100x128(benchmark):
    data = random_walks(100, 128, seed=7)
    seg = Segmentation.uniform(128, 8)
    benchmark(choose_split, seg, data)


def test_choose_split_h_only(benchmark):
    data = random_walks(100, 128, seed=7)
    seg = Segmentation.uniform(128, 8)
    benchmark(choose_split, seg, data, False, True)


def test_htree_roundtrip(benchmark, tmp_path):
    from repro import HerculesConfig, HerculesIndex

    data = random_walks(2_000, 64, seed=8)
    index = HerculesIndex.build(
        data,
        HerculesConfig(
            leaf_capacity=50, num_build_threads=1, flush_threshold=1
        ),
    )
    path = tmp_path / "tree.bin"

    def roundtrip():
        save_tree(path, index.root, {"n": 2000})
        load_tree(path)

    benchmark.pedantic(roundtrip, rounds=5, iterations=1)
    index.close()


def test_hbuffer_store_throughput(benchmark):
    rows = random_walks(1_000, 64, seed=9)

    def fill():
        buffer = HBuffer(capacity=1_000, series_length=64, num_workers=1)
        for row in rows:
            buffer.store(0, row)

    benchmark.pedantic(fill, rounds=5, iterations=1)


def test_result_set_updates(benchmark):
    rng = np.random.default_rng(10)
    distances = rng.uniform(0, 100, size=5_000)
    positions = np.arange(5_000)

    def run():
        results = ResultSet(100)
        results.update_batch(distances, positions)

    benchmark(run)
