"""Benchmark suite regenerating the paper evaluation."""
