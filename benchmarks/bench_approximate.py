"""Approximate query answering: the paper's future-work direction (§5).

Not a figure of this paper (it previews the authors' follow-up line of
work on approximate answering with quality guarantees): measures
recall/approximation-error of the approximate-only mode vs the leaf
budget, and of the ε-approximate mode vs ε, on the Deep analog.
"""

from __future__ import annotations

from repro.core import HerculesIndex
from repro.eval.methods import hercules_config
from repro.eval.quality import evaluate_approximate
from repro.eval.report import format_table
from repro.workloads.datasets import make_analog
from repro.workloads.generators import make_query_workloads

from .conftest import _TABLES, scaled


def test_approximate_quality(benchmark):
    raw = make_analog("Deep", scaled(5_000), seed=81)
    indexable, query_sets = make_query_workloads(
        raw, queries_per_workload=10, seed=82
    )
    config = hercules_config(indexable.shape[0])
    index = HerculesIndex.build(indexable, config)
    queries = query_sets["5%"].queries

    def sweep():
        rows = []
        for l_max in (1, 2, 4, 8, 16):
            summary = evaluate_approximate(index, queries, k=10, l_max=l_max)
            rows.append(
                [
                    f"l_max={l_max}",
                    summary.mean_recall,
                    summary.mean_approximation_error,
                    summary.worst_approximation_error,
                ]
            )
        for epsilon in (0.0, 0.1, 0.5, 1.0):
            summary = evaluate_approximate(index, queries, k=10, epsilon=epsilon)
            rows.append(
                [
                    f"epsilon={epsilon}",
                    summary.mean_recall,
                    summary.mean_approximation_error,
                    summary.worst_approximation_error,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _TABLES.append(
        "\nApproximate answering quality (Deep analog, 5% workload, k=10)\n"
        + format_table(
            ["mode", "mean_recall", "mean_error", "worst_error"], rows
        )
    )

    by_mode = {row[0]: row for row in rows}
    # Recall grows with the leaf budget; ε=0 stays exact; every ε row
    # respects its guarantee.
    assert by_mode["l_max=16"][1] >= by_mode["l_max=1"][1]
    assert by_mode["epsilon=0.0"][3] <= 1.0 + 1e-9
    assert by_mode["epsilon=0.5"][3] <= 1.5 + 1e-9
    assert by_mode["epsilon=1.0"][3] <= 2.0 + 1e-9
    index.close()
