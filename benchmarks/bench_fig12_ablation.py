"""Figure 12: ablation study on the Deep analog.

Paper, 12a (index construction): DSTree* (single-core), DSTree*P (naive
parallelization — workers lock entire root-to-leaf paths to maintain
internal statistics), NoWPara (Hercules with sequential index writing),
and Hercules.  Deferring internal-synopsis maintenance to the writing
phase and parallelizing that phase bottom-up gives Hercules the fastest
construction.

Paper, 12b (query answering): removing the iSAX filter (NoSAX), the
query parallelism (NoPara), or the adaptive thresholds (NoThresh) never
helps and hurts on its target regime — NoSAX always, NoPara on easy and
medium queries, NoThresh on hard (ood) ones.
"""

from __future__ import annotations

from repro.eval.experiments import (
    figure12_ablation_indexing,
    figure12_ablation_query,
)

from .conftest import record_table, scaled


def test_figure12a_ablation_indexing(benchmark):
    result = benchmark.pedantic(
        lambda: figure12_ablation_indexing(size=scaled(6_000), verbose=False),
        rounds=1,
        iterations=1,
    )
    record_table("Figure 12a: ablation - index construction (Deep analog)", result)

    # Hercules constructs faster than both DSTree variants (paper 12a).
    assert result.raw["Hercules"] < result.raw["DSTree*"]
    assert result.raw["Hercules"] < result.raw["DSTree*P"]


def test_figure12b_ablation_query(benchmark):
    result = benchmark.pedantic(
        lambda: figure12_ablation_query(
            size=scaled(6_000),
            num_queries=15,
            workloads=("1%", "5%", "ood"),
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("Figure 12b: ablation - query answering (Deep analog)", result)

    # NoSAX reads at least as much raw data as full Hercules on every
    # workload (the iSAX filter only ever removes candidates).
    for workload in ("1%", "5%", "ood"):
        nosax = result.raw[(workload, "NoSAX")].avg_data_accessed
        full = result.raw[(workload, "Hercules")].avg_data_accessed
        assert nosax >= full * 0.9
    # The thresholds exist for hard queries: on ood, NoThresh must not
    # access less data than adaptive Hercules.
    assert (
        result.raw[("ood", "NoThresh")].avg_data_accessed
        >= result.raw[("ood", "Hercules")].avg_data_accessed * 0.9
    )
