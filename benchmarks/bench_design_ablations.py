"""Design-choice ablations the paper reports in prose (DESIGN.md index).

* Buffer management (Section 3.3.1): one pre-allocated HBuffer vs
  per-leaf growable buffers that die on every split.
* Query-threshold sensitivity (Section 4.2): EAPCA_TH x SAX_TH sweep —
  the paper's claim is stability around (0.25, 0.50).
* L_max sensitivity: the approximate phase's leaf budget.
"""

from __future__ import annotations

import numpy as np

from repro.core import HerculesConfig, HerculesIndex
from repro.eval.ablation import build_with_per_leaf_buffers, threshold_sensitivity
from repro.eval.report import format_table
from repro.workloads.generators import make_query_workloads, random_walks

from .conftest import _TABLES, scaled


def test_buffer_strategy_ablation(benchmark):
    """HBuffer vs per-leaf buffers on identical inserts (single thread)."""
    data = random_walks(scaled(6_000), 64, seed=61)
    config = HerculesConfig(
        leaf_capacity=100,
        num_build_threads=1,
        flush_threshold=1,
        db_size=512,
    )

    def run_both():
        index = HerculesIndex.build(data, config)
        hbuffer_seconds = index.build_report.build_seconds
        index.close()
        per_leaf = build_with_per_leaf_buffers(data, config)
        return hbuffer_seconds, per_leaf

    hbuffer_seconds, per_leaf = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    rows = [
        ["HBuffer (paper design)", hbuffer_seconds, 1, 0],
        [
            "per-leaf buffers (rejected)",
            per_leaf.seconds,
            per_leaf.allocations,
            per_leaf.copies,
        ],
    ]
    _TABLES.append(
        "\nDesign ablation: buffer management (build time, single thread)\n"
        + format_table(["strategy", "build_s", "allocations", "series_copied"], rows)
    )
    # The rejected design must pay materially more allocations and copies.
    assert per_leaf.allocations > 10
    assert per_leaf.copies > data.shape[0]


def test_threshold_sensitivity(benchmark):
    """EAPCA_TH x SAX_TH sweep: stable around the paper's (0.25, 0.50)."""
    raw = random_walks(scaled(4_000), 64, seed=62)
    indexable, query_sets = make_query_workloads(
        raw, queries_per_workload=8, seed=63
    )
    config = HerculesConfig(
        leaf_capacity=100,
        num_build_threads=2,
        db_size=512,
        flush_threshold=1,
        num_query_threads=2,
        l_max=4,
    )
    index = HerculesIndex.build(indexable, config)

    workloads = {
        "1%": query_sets["1%"].queries,
        "ood": query_sets["ood"].queries,
    }
    records = benchmark.pedantic(
        lambda: threshold_sensitivity(index, workloads),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["workload"],
            r["eapca_th"],
            r["sax_th"],
            r["avg_query_seconds"],
            r["avg_data_accessed"],
            "+".join(r["paths"]),
        ]
        for r in records
    ]
    _TABLES.append(
        "\nDesign ablation: EAPCA_TH x SAX_TH sensitivity\n"
        + format_table(
            ["workload", "eapca_th", "sax_th", "avg_query_s", "data_accessed", "paths"],
            rows,
        )
    )

    # Stability claim: on the easy workload, every threshold combination
    # stays within 5x of the best (no catastrophic setting).
    easy = [r["avg_query_seconds"] for r in records if r["workload"] == "1%"]
    assert max(easy) <= 5.0 * min(easy) + 1e-3

    index.close()


def test_split_policy_ablation(benchmark):
    """H-only and mean-only trees vs the full EAPCA split policy.

    The paper's Section 3.2 argues EAPCA trees win by adapting resolution
    both horizontally and vertically, routing on mean or stddev; this
    measures what each dimension contributes on the Seismic analog
    (whose variance structure specifically rewards stddev routing).
    """
    from repro.workloads.datasets import make_analog

    raw = make_analog("Seismic", scaled(3_000), seed=66)
    indexable, query_sets = make_query_workloads(
        raw, queries_per_workload=8, seed=67
    )
    queries = query_sets["5%"].queries

    def build_and_measure():
        rows = []
        for label, flags in (
            ("full (H+V, mean+std)", {}),
            ("H-only", {"allow_vertical_splits": False}),
            ("mean-only", {"allow_std_routing": False}),
            ("H-only, mean-only", {
                "allow_vertical_splits": False,
                "allow_std_routing": False,
            }),
        ):
            config = HerculesConfig(
                leaf_capacity=100,
                num_build_threads=2,
                db_size=512,
                flush_threshold=1,
                num_query_threads=1,
                l_max=3,
                **flags,
            )
            index = HerculesIndex.build(indexable, config)
            accessed = [
                index.knn(q, k=1).profile.data_accessed_fraction(
                    index.num_series
                )
                for q in queries
            ]
            from repro.core.stats import tree_statistics

            stats = tree_statistics(index.root)
            rows.append(
                [
                    label,
                    float(np.mean(accessed)),
                    stats.vertical_splits,
                    stats.std_routed_splits,
                ]
            )
            index.close()
        return rows

    rows = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    _TABLES.append(
        "\nDesign ablation: split policy (Seismic analog, 5% workload)\n"
        + format_table(
            ["policy", "data_accessed", "v_splits", "std_splits"], rows
        )
    )
    by_label = {row[0]: row[1] for row in rows}
    # The restricted policies must not prune dramatically better than the
    # full one (the full candidate set subsumes theirs up to heuristics).
    assert by_label["full (H+V, mean+std)"] <= by_label["H-only, mean-only"] * 1.5


def test_l_max_sensitivity(benchmark):
    """L_max sweep: more approximate leaves -> tighter initial BSF."""
    raw = random_walks(scaled(4_000), 64, seed=64)
    indexable, query_sets = make_query_workloads(
        raw, queries_per_workload=8, seed=65
    )
    config = HerculesConfig(
        leaf_capacity=100,
        num_build_threads=2,
        db_size=512,
        flush_threshold=1,
        num_query_threads=2,
    )
    index = HerculesIndex.build(indexable, config)
    queries = query_sets["5%"].queries

    def sweep():
        rows = []
        for l_max in (1, 2, 4, 8, 16):
            variant = index.config.with_options(l_max=l_max)
            accessed = []
            times = []
            for query in queries:
                answer = index.knn(query, k=1, config=variant)
                accessed.append(
                    answer.profile.data_accessed_fraction(index.num_series)
                )
                times.append(answer.profile.time_total)
            rows.append([l_max, float(np.mean(times)), float(np.mean(accessed))])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _TABLES.append(
        "\nDesign ablation: L_max sensitivity (5% workload)\n"
        + format_table(["l_max", "avg_query_s", "data_accessed"], rows)
    )
    index.close()
