"""Figure 6: scalability with increasing dataset size.

Paper: combined index-construction + query-answering time for 100 (6a)
and 10K (6b, extrapolated) exact 1NN queries over synthetic datasets of
25-250 GB.  Scaled here to 2K-16K series; the printed table carries both
combined columns.

Shape reproduced: Hercules builds ~3-4x faster than DSTree* and its
combined time wins on the large query workload; ParIS+ builds far faster
than both (summaries only) and is competitive when only a handful of
queries amortize construction — the paper's one non-win scenario (6a,
largest dataset).
"""

from __future__ import annotations

from repro.eval.experiments import figure6_dataset_size

from .conftest import record_table, scaled


def test_figure6_dataset_size(benchmark):
    result = benchmark.pedantic(
        lambda: figure6_dataset_size(
            sizes=(scaled(2_000), scaled(4_000), scaled(8_000), scaled(16_000)),
            length=64,
            num_queries=20,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )

    record_table("Figure 6: scalability with dataset size (1NN, synth)", result)

    # Structural sanity: every (size, method) pair produced a row.
    assert len(result.rows) == 4 * 4

    # Shape check (robust direction only): Hercules constructs faster
    # than DSTree* on every dataset size (paper: 3-4x).
    for size in {row[0] for row in result.rows}:
        hercules = result.raw[(size, "Hercules")]
        dstree = result.raw[(size, "DSTree*")]
        assert hercules.build_seconds < dstree.build_seconds
