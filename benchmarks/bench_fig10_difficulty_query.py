"""Figure 10: per-query time and percentage of data accessed vs difficulty.

Paper: the query-answering view of Figure 9 — average query time and the
% of data accessed, per dataset and workload.  Hercules beats DSTree* by
1.5-10x and ParIS+ by 5.5-63x, staying ahead of the scan even when it
must access 96-100% of a hard dataset, thanks to the adaptive
skip-sequential path and the leaf-ordered LRDFile layout.

The printed table adds the modeled disk column (measured I/O pattern
priced at the paper's RAID hardware), which carries the layout story
wall-clock cannot show at laptop scale.
"""

from __future__ import annotations

from repro.eval.experiments import difficulty_experiment

from .conftest import record_table, scaled


def test_figure10_difficulty_query(benchmark):
    result = benchmark.pedantic(
        lambda: difficulty_experiment(
            datasets=("SALD", "Seismic", "Deep"),
            size=scaled(6_000),
            num_queries=15,
            workloads=("1%", "5%", "ood"),
            include_serial_scan=True,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )

    record_table(
        "Figure 10: per-query time and data accessed vs difficulty", result
    )

    for dataset in ("SALD", "Seismic"):
        for workload in ("1%", "5%"):
            hercules = result.raw[(dataset, workload, "Hercules")]
            dstree = result.raw[(dataset, workload, "DSTree*")]
            # Hercules' two-level pruning reads no more raw data than
            # DSTree*'s EAPCA-only pruning (paper: strictly less).
            assert (
                hercules.avg_data_accessed <= dstree.avg_data_accessed + 0.02
            )

    # Deep degenerates every index on ood (paper: ~96-100% accessed).
    deep_ood = result.raw[("Deep", "ood", "Hercules")]
    assert deep_ood.avg_data_accessed > 0.5
