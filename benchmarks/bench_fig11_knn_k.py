"""Figure 11: scalability with increasing k (kNN queries).

Paper: on the medium-hard 5% workload, k is swept over [1, 100].
Hercules wins at every k; finding the *first* neighbor dominates the
cost for Hercules and DSTree* (neighbors live in the same subtree),
while ParIS+ deteriorates with k because its answers' raw data is
scattered anywhere in the dataset file (skip-sequential over an
unclustered layout).

Shape reproduced: Hercules' accessed fraction grows only mildly from
k=1 to k=100, and ParIS+'s random-seek count grows faster than
Hercules' with k (the clustered-layout effect, visible in the modeled
disk column).
"""

from __future__ import annotations

from repro.eval.experiments import figure11_knn_k

from .conftest import record_table, scaled


def test_figure11_knn_k(benchmark):
    ks = (1, 5, 10, 25, 50, 100)
    result = benchmark.pedantic(
        lambda: figure11_knn_k(
            ks=ks, size=scaled(5_000), num_queries=10, verbose=False
        ),
        rounds=1,
        iterations=1,
    )

    record_table("Figure 11: scalability with increasing k (5% workload)", result)

    hercules_access = [result.raw[(k, "Hercules")].avg_data_accessed for k in ks]
    # Monotone-ish growth with k, but no blow-up: the k=100 fraction
    # stays within an order of magnitude of k=1 (paper: nearly flat).
    assert hercules_access[-1] >= hercules_access[0] * 0.9
    assert hercules_access[-1] < min(hercules_access[0] * 50, 1.01)

    def seeks(wl):
        profiles = [p for p in wl.profiles if p.io is not None]
        return sum(p.io.random_seeks for p in profiles) / max(len(profiles), 1)

    # ParIS+'s scattered refinement needs more random I/O than Hercules'
    # clustered LRDFile at large k.
    paris_large = seeks(result.raw[(100, "ParIS+")])
    hercules_large = seeks(result.raw[(100, "Hercules")])
    assert paris_large > hercules_large
