"""Index-vs-scan crossover at paper scale (the mechanism behind Figure 7).

The paper's scans lose at 100GB-1.5TB because a scan's disk time grows
linearly with the dataset while an index's grows with the accessed
fraction — which *shrinks* as the space densifies.  At laptop scale two
distortions hide this: files sit in the page cache, and scaled-down
leaves (100 series vs the paper's 100K) make seeks dominate leaf reads
where the paper's leaves are bandwidth-dominated.

The reproduction's tree *shape* — leaf counts, candidate counts, and
therefore seek counts — already matches the paper's regime (a few
hundred leaves, like 100M series / 100K-series leaves).  Only the bytes
per leaf are ~1000x smaller.  This bench therefore projects disk time
with the byte term scaled by (paper leaf size / our leaf size), sweeps
dataset sizes, and checks the paper's shape: the scan's projected cost
grows faster and Hercules wins by a widening factor.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import figure7_large_datasets
from repro.eval.methods import DEFAULT_LEAF
from repro.eval.report import format_table

from .conftest import _TABLES, scaled

#: The paper's leaf size (Section 4.2) over this suite's default.
PAPER_LEAF_SIZE = 100_000
BYTE_SCALE = PAPER_LEAF_SIZE / DEFAULT_LEAF


def test_crossover_at_paper_scale(benchmark):
    sizes = (scaled(5_000), scaled(10_000), scaled(20_000), scaled(40_000))
    result = benchmark.pedantic(
        lambda: figure7_large_datasets(
            sizes=sizes, length=64, num_queries=8, verbose=False
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    hercules_io = []
    pscan_io = []
    for size in sizes:
        hercules = result.raw[(size, "Hercules")]
        pscan = result.raw[(size, "PSCAN")]
        h_io = hercules.modeled_io_at_scale(BYTE_SCALE)
        p_io = pscan.modeled_io_at_scale(BYTE_SCALE)
        hercules_io.append(h_io)
        pscan_io.append(p_io)
        rows.append(
            [size, hercules.avg_data_accessed, h_io, p_io, p_io / max(h_io, 1e-12)]
        )

    log_n = np.log(np.asarray(sizes, dtype=np.float64))
    scan_slope = float(np.polyfit(log_n, np.log(pscan_io), 1)[0])
    hercules_slope = float(np.polyfit(log_n, np.log(hercules_io), 1)[0])
    rows.append(["(growth exp)", "", hercules_slope, scan_slope, ""])

    _TABLES.append(
        "\nCrossover at paper scale: projected disk time, bytes x "
        f"{BYTE_SCALE:.0f} (paper-size leaves)\n"
        + format_table(
            [
                "size",
                "hercules_access",
                "hercules_io_s",
                "pscan_io_s",
                "scan/hercules",
            ],
            rows,
        )
    )

    # The paper's shape: under paper-size leaves the scan costs more at
    # every size, its cost grows strictly faster, and the win factor
    # widens with the dataset.
    ratios = [p / h for p, h in zip(pscan_io, hercules_io)]
    assert all(r > 1.0 for r in ratios)
    assert scan_slope > hercules_slope
    assert ratios[-1] >= ratios[0]
