"""Build-throughput benchmark: per-row vs grouped batch insertion.

Not a paper figure: this pins the construction-path speedup of grouped
batch insertion (vectorized routing, bulk HBuffer stores, one synopsis
update per (leaf, group)) against the per-row reference path, across
claim sizes and thread counts, in the shape of the paper's Table 4
(per-phase breakdown of index building).

Both paths build bit-for-bit identical trees — the benchmark asserts
the cheap part of that (split count, leaf count, node-id watermark) and
leaves full parity to ``tests/core/test_build_parity.py``.

Run with ``REPRO_BENCH_JSON=BENCH_build.json`` to dump the measured
series/sec (hardware-dependent) and the speedup ratios (stable) as a
JSON artifact; CI fails the perf-smoke job if batched insertion is
slower than the per-row path.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import HerculesConfig
from repro.core.construction import build_tree
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.workloads.generators import random_walks

from .conftest import record_table, scaled

#: Tree-shape knobs shared by every scenario.  The leaf capacity and the
#: coarse initial segmentation follow the paper's regime — Hercules uses
#: leaf thresholds far above the per-node series count of small datasets
#: (Section 5: 100k-series leaves) and DSTree-style trees start from a
#: near-trivial segmentation and refine via splits — which also keeps
#: split cost (identical on both paths) from drowning the insert-path
#: difference; ``buffer_capacity=None`` sizes HBuffer to the dataset so
#: no flushes run and the measurement is pure insertion.
_BASE = dict(leaf_capacity=2048, initial_segments=2, db_size=1024,
             flush_threshold=1)


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(8_000), 64, seed=17)


def _build_once(tmp_path, data, **config_kwargs):
    """One timed tree build; returns (seconds, context)."""
    config = HerculesConfig(**_BASE, **config_kwargs)
    spill = SeriesFile(tmp_path / "spill.bin", data.shape[1])
    dataset = Dataset.from_array(data)
    started = time.perf_counter()
    ctx = build_tree(dataset, config, spill)
    seconds = time.perf_counter() - started
    spill.close()
    (tmp_path / "spill.bin").unlink()
    return seconds, ctx


def _measure(tmp_path, data, repeats: int = 3, **config_kwargs):
    """Best-of-N build; returns (seconds, series_per_sec, context)."""
    best, ctx = float("inf"), None
    for _ in range(repeats):
        seconds, ctx = _build_once(tmp_path, data, **config_kwargs)
        best = min(best, seconds)
    return best, data.shape[0] / best, ctx


def _signature(ctx):
    """Cheap tree-identity fingerprint (full parity lives in tests/)."""
    leaves = [
        (leaf.node_id, leaf.size) for leaf in ctx.root.iter_leaves_inorder()
    ]
    return ctx.splits.load(), ctx.node_ids.load(), leaves


def test_build_throughput(tmp_path, data):
    from repro.eval.experiments import ExperimentResult

    result = ExperimentResult(
        figure="bench_build",
        headers=["mode", "threads", "claim", "seconds", "series_per_s",
                 "speedup"],
    )

    baselines = {}
    scenarios = [
        # (mode, threads, claim_size)
        ("per_row", 1, None),
        ("batched", 1, 64),
        ("batched", 1, None),  # auto claim: the whole DBuffer batch
        ("per_row", 4, None),
        ("batched", 4, None),
    ]
    signatures = {}
    for mode, threads, claim in scenarios:
        seconds, sps, ctx = _measure(
            tmp_path,
            data,
            batched_inserts=(mode == "batched"),
            claim_size=claim,
            num_build_threads=threads,
        )
        if mode == "per_row":
            baselines[threads] = sps
        speedup = sps / baselines[threads]
        claim_label = "auto" if claim is None else str(claim)
        key = (mode, threads, claim_label)
        result.rows.append(
            [mode, threads, claim_label, round(seconds, 4), round(sps, 1),
             round(speedup, 2)]
        )
        result.raw["/".join(map(str, key))] = {
            "seconds": seconds,
            "series_per_sec": sps,
            "speedup": speedup,
            "phases": ctx.timers.seconds(),
        }
        if threads == 1:
            signatures[key] = _signature(ctx)

    # Single-thread builds are deterministic: every mode and claim size
    # must produce the same splits, node ids, and leaf sizes.
    reference = signatures[("per_row", 1, "auto")]
    for key, signature in signatures.items():
        assert signature == reference, f"tree mismatch for {key}"

    record_table(
        "Build throughput: per-row vs grouped batch insertion", result
    )

    # The CI gate: batched insertion must never lose to the per-row path.
    # (The ISSUE's >=5x single-thread target is checked out-of-band on
    # the JSON artifact; hard-failing on it here would make the suite
    # flaky on loaded CI runners.)
    batched_sps = result.raw["batched/1/auto"]["series_per_sec"]
    per_row_sps = result.raw["per_row/1/auto"]["series_per_sec"]
    assert batched_sps >= per_row_sps, (
        f"batched insertion ({batched_sps:.0f}/s) slower than per-row "
        f"({per_row_sps:.0f}/s)"
    )
