"""Signature pre-filter benchmark: whole-array screening before descent.

Not a paper figure: this pins the perf properties of the in-RAM iSAX
fingerprint tier (``repro.core.prefilter``) on a small disk-backed
index —

* easy queries (exact copies of indexed rows) are answered from phase 1
  alone: the screen prunes every row against the zero BSF, so the
  refine phases read nothing at all, and
* on a medium-difficulty workload the filtered pipeline reads a fraction
  of the raw series the unfiltered pipeline reads and is faster
  end-to-end, while returning bit-for-bit identical answers.

Both arms query the *same* materialized index — the pre-filter is
toggled per query through the config — so the comparison isolates the
screen itself (no build-layout noise).  Run with
``REPRO_BENCH_JSON=BENCH_prefilter.json`` to dump the measured numbers;
wall-clock ratios carry ``speedup`` in their key so ``bench-diff``
skips them across machines.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import HerculesIndex
from repro.eval.experiments import ExperimentResult
from repro.eval.methods import hercules_config
from repro.eval.metrics import run_workload
from repro.workloads.generators import make_noise_queries, random_walks

from .conftest import record_table, scaled

#: Long series make the refine phases (raw reads + exact distances)
#: expensive relative to the O(N x segments) screen, as at paper scale.
_LENGTH = 512


class _Toggled:
    """Query adapter running every knn through one fixed config."""

    def __init__(self, index: HerculesIndex, config):
        self._index = index
        self._config = config

    @property
    def num_series(self) -> int:
        return self._index.num_series

    def knn(self, query, k=1):
        return self._index.knn(query, k=k, config=self._config)


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(4_000), _LENGTH, seed=7)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("bench-prefilter") / "hercules"
    # Single-threaded build and querying keep the leaf layout and the
    # per-query counters deterministic across runs, so the JSON artifact
    # diffs cleanly against the committed baseline.
    config = hercules_config(
        data.shape[0], num_threads=1, prefilter=True, prefilter_bits=8
    )
    HerculesIndex.build(data, config, directory=directory).close()
    return directory


def _timed_workload(method, queries, k, num_series, repeats=3):
    """(best wall seconds, last WorkloadResult) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_workload(method, queries, k=k, num_series=num_series)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_prefilter_screen(index_dir, data):
    index = HerculesIndex.open(index_dir)
    try:
        assert index.prefilter_active
        unfiltered = index.config.with_options(prefilter=False)
        num_series = data.shape[0]

        result = ExperimentResult(
            figure="bench_prefilter",
            headers=[
                "scenario",
                "pruned",
                "candidate_series",
                "series_read",
                "ms_per_query",
            ],
        )

        # -- easy queries: exact copies of indexed rows --------------------
        # Phase 1 lands on the stored row (distance 0), so the screen's
        # cutoff is zero and nothing survives: the refine phases never
        # read a leaf.
        step = max(num_series // 10, 1)
        easy_queries = data[::step][:10].copy()
        easy_seconds, easy = _timed_workload(
            index, easy_queries, 1, num_series
        )
        easy_reads = sum(p.series_accessed for p in easy.profiles)
        result.rows.append(
            [
                "easy/prefilter",
                f"{easy.avg_prefilter_pruned_fraction:.2%}",
                sum(p.candidate_series for p in easy.profiles),
                easy_reads,
                easy_seconds / len(easy_queries) * 1e3,
            ]
        )

        # -- medium workload: filtered vs unfiltered on the same tree ------
        medium_queries = make_noise_queries(data, 12, 0.5, seed=11)
        filt_seconds, filt = _timed_workload(
            index, medium_queries, 10, num_series
        )
        plain_seconds, plain = _timed_workload(
            _Toggled(index, unfiltered), medium_queries, 10, num_series
        )
        filt_reads = sum(p.series_accessed for p in filt.profiles)
        plain_reads = sum(p.series_accessed for p in plain.profiles)
        speedup = plain_seconds / filt_seconds
        result.rows.append(
            [
                "medium/prefilter",
                f"{filt.avg_prefilter_pruned_fraction:.2%}",
                sum(p.candidate_series for p in filt.profiles),
                filt_reads,
                filt_seconds / len(medium_queries) * 1e3,
            ]
        )
        result.rows.append(
            [
                "medium/unfiltered",
                "-",
                sum(p.candidate_series for p in plain.profiles),
                plain_reads,
                plain_seconds / len(medium_queries) * 1e3,
            ]
        )

        result.raw = {
            "easy": easy,
            "medium_filtered": filt,
            "medium_unfiltered": plain,
            "easy_pruned_fraction": easy.avg_prefilter_pruned_fraction,
            "medium_pruned_fraction": filt.avg_prefilter_pruned_fraction,
            "medium_reads_filtered": int(filt_reads),
            "medium_reads_unfiltered": int(plain_reads),
            "end_to_end_speedup": speedup,
            "signature_bytes": int(index.signatures.memory_bytes),
        }
        record_table(
            "Signature pre-filter: whole-array screening before descent",
            result,
        )

        # -- parity: the screen must never change an answer ----------------
        for query in medium_queries:
            filtered_answer = index.knn(query, k=10)
            plain_answer = index.knn(query, k=10, config=unfiltered)
            assert np.array_equal(
                filtered_answer.distances, plain_answer.distances
            )
            assert np.array_equal(
                filtered_answer.positions, plain_answer.positions
            )

        # The perf properties this PR claims, pinned as assertions.
        assert easy.avg_prefilter_pruned_fraction >= 0.90, (
            f"easy queries pruned only "
            f"{easy.avg_prefilter_pruned_fraction:.2%} of the array"
        )
        for profile in easy.profiles:
            assert profile.candidate_series == 0, (
                "easy query still refined "
                f"{profile.candidate_series} series"
            )
            assert profile.path == "approx-only"
        # A valid lower bound can only remove work, never add it.
        assert filt_reads <= plain_reads
        assert filt_reads <= plain_reads * 0.75, (
            f"filtered pipeline still read {filt_reads} of "
            f"{plain_reads} series"
        )
        assert speedup >= 1.0, (
            f"prefilter made the workload slower ({speedup:.2f}x)"
        )
    finally:
        index.close()
