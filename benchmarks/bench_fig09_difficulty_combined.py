"""Figure 9: combined indexing + query time vs query difficulty.

Paper: for SALD, Seismic, and Deep, the total of index construction plus
100/10K exact 1NN queries across the five workloads (1%-10%, ood),
against the serial-scan reference line.  Hercules is the only method
that builds its index *and* answers the whole workload before the
sequential scan finishes on every dataset.

Scaled here to the dataset analogs; the combined column in the printed
table is build + measured workload time.
"""

from __future__ import annotations

from repro.eval.experiments import difficulty_experiment

from .conftest import record_table, scaled


def test_figure9_difficulty_combined(benchmark):
    result = benchmark.pedantic(
        lambda: difficulty_experiment(
            datasets=("SALD", "Seismic", "Deep"),
            size=scaled(5_000),
            num_queries=15,
            workloads=("1%", "2%", "5%", "10%", "ood"),
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )

    record_table(
        "Figure 9: combined indexing + query time vs query difficulty", result
    )

    # 3 datasets x 5 workloads x (4 indexes + serial scan).
    assert len(result.rows) == 3 * 5 * 5

    # The serial-scan reference accesses everything on every workload.
    for row in result.rows:
        if row[2] == "SerialScan":
            assert row[7] == 1.0

    # Difficulty gradient: on every dataset, Hercules touches at least
    # as much data on ood as on the easy 1% workload.
    for dataset in ("SALD", "Seismic", "Deep"):
        easy = result.raw[(dataset, "1%", "Hercules")].avg_data_accessed
        hard = result.raw[(dataset, "ood", "Hercules")].avg_data_accessed
        assert hard >= easy * 0.9
