"""Micro-benchmarks of index-level operations.

Not a paper figure: construction throughput of each index and the cost
of a single Hercules query phase pipeline, measured in isolation.
"""

from __future__ import annotations

import pytest

from repro.baselines import DSTreeConfig, DSTreeIndex, ParisConfig, ParisIndex
from repro.core import HerculesConfig, HerculesIndex
from repro.workloads.generators import random_walks

from .conftest import scaled


@pytest.fixture(scope="module")
def corpus():
    return random_walks(scaled(5_000), 64, seed=3)


@pytest.fixture(scope="module")
def queries():
    return random_walks(5, 64, seed=4)


def _hercules_config(num_series: int) -> HerculesConfig:
    return HerculesConfig(
        leaf_capacity=100,
        num_build_threads=4,
        db_size=512,
        flush_threshold=1,
        num_query_threads=4,
        l_max=4,
    )


def test_build_hercules(benchmark, corpus):
    def build():
        index = HerculesIndex.build(corpus, _hercules_config(corpus.shape[0]))
        index.close()

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_build_hercules_sequential(benchmark, corpus):
    def build():
        config = HerculesConfig(
            leaf_capacity=100,
            num_build_threads=1,
            flush_threshold=1,
            db_size=512,
        )
        index = HerculesIndex.build(corpus, config)
        index.close()

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_build_dstree(benchmark, corpus):
    def build():
        index = DSTreeIndex.build(corpus, DSTreeConfig(leaf_capacity=100))
        index.close()

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_build_paris(benchmark, corpus):
    def build():
        ParisIndex.build(corpus, ParisConfig(leaf_capacity=20))

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_hercules_query(benchmark, corpus, queries):
    index = HerculesIndex.build(corpus, _hercules_config(corpus.shape[0]))

    def run():
        for query in queries:
            index.knn(query, k=10)

    benchmark.pedantic(run, rounds=3, iterations=1)
    index.close()


def test_dstree_query(benchmark, corpus, queries):
    index = DSTreeIndex.build(corpus, DSTreeConfig(leaf_capacity=100))

    def run():
        for query in queries:
            index.knn(query, k=10)

    benchmark.pedantic(run, rounds=3, iterations=1)
    index.close()
