"""Query-engine micro-benchmark: squared-space pipeline + leaf cache.

Not a paper figure: this pins the two perf properties of the reworked
query pipeline on a small but disk-backed index —

* early abandoning against the live BSF² skips a substantial fraction
  of candidate points on hard (high-noise) queries, and
* a warm leaf-block LRU answers a repeated workload without touching
  the LRD file at all.

Run with ``REPRO_BENCH_JSON=BENCH_query.json`` to dump the measured
numbers (all hardware-independent except the kernel throughputs) as a
JSON artifact.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import HerculesIndex
from repro.distance.euclidean import (
    batch_squared_euclidean,
    early_abandon_squared,
)
from repro.eval.experiments import ExperimentResult
from repro.eval.methods import hercules_config
from repro.eval.metrics import run_workload
from repro.workloads.generators import make_noise_queries, random_walks

from .conftest import record_table, scaled

#: Budget big enough to hold every leaf of the benchmark index.
_WARM_BUDGET = 64 * 1 << 20


def _best_seconds(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(4_000), 128, seed=7)


@pytest.fixture(scope="module")
def hard_queries(data):
    # High noise makes the BSF converge slowly and defeats lower-bound
    # pruning (these queries touch most of the data): the hard end of
    # the paper's difficulty spectrum, where abandoning matters most.
    return make_noise_queries(data, 12, 1.0, seed=11)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("bench-query") / "hercules"
    # One query thread keeps the set of leaves each query reads
    # deterministic (with racing CRWorkers the evolving BSF can admit a
    # leaf in one run that was pruned in another), which is what lets
    # the warm-cache pass assert *zero* LRD reads.
    config = hercules_config(data.shape[0], num_query_threads=1)
    HerculesIndex.build(data, config, directory=directory).close()
    return directory


def test_query_engine(index_dir, data, hard_queries):
    result = ExperimentResult(
        figure="bench_query",
        headers=[
            "scenario",
            "mpoints_per_s",
            "abandoned",
            "cache_hit_rate",
            "lrd_read_calls",
        ],
    )

    # -- kernel throughput: full matrix vs blocked early abandoning ------------
    corpus = random_walks(scaled(8_000), 128, seed=3)
    query = random_walks(1, 128, seed=4)[0]
    cutoff = float(np.quantile(batch_squared_euclidean(query, corpus), 0.01))
    points = corpus.shape[0] * corpus.shape[1]
    full_s = _best_seconds(lambda: batch_squared_euclidean(query, corpus))
    abandon_s = _best_seconds(
        lambda: early_abandon_squared(query, corpus, cutoff)
    )
    _, compared = early_abandon_squared(query, corpus, cutoff)
    kernel_abandoned = 1.0 - compared / points
    result.rows.append(
        ["kernel/full", points / full_s / 1e6, "0.00%", "-", "-"]
    )
    result.rows.append(
        [
            "kernel/abandon",
            points / abandon_s / 1e6,
            f"{kernel_abandoned:.2%}",
            "-",
            "-",
        ]
    )

    # -- exact search, cache disabled: early-abandoning savings ----------------
    index = HerculesIndex.open(index_dir)
    try:
        before = index.query_io.snapshot()
        cold = run_workload(
            index, hard_queries, k=1, workload="hard", num_series=data.shape[0]
        )
        cold_reads = (index.query_io.snapshot() - before).read_calls
    finally:
        index.close()
    result.rows.append(
        [
            "exact/no-cache",
            "-",
            f"{cold.avg_abandoned_fraction:.2%}",
            "-",
            cold_reads,
        ]
    )

    # -- exact search, warm cache: repeated workload without LRD reads ---------
    index = HerculesIndex.open(index_dir, cache_bytes=_WARM_BUDGET)
    try:
        run_workload(index, hard_queries, k=1, num_series=data.shape[0])
        before = index.query_io.snapshot()
        warm = run_workload(
            index, hard_queries, k=1, workload="warm", num_series=data.shape[0]
        )
        warm_reads = (index.query_io.snapshot() - before).read_calls
        cache_bytes = index.leaf_cache.current_bytes
    finally:
        index.close()
    warm_hit_rate = warm.avg_cache_hit_rate or 0.0
    result.rows.append(
        [
            "exact/warm-cache",
            "-",
            f"{warm.avg_abandoned_fraction:.2%}",
            f"{warm_hit_rate:.2%}",
            warm_reads,
        ]
    )

    result.raw = {
        "kernel": {
            "full_mpoints_per_s": points / full_s / 1e6,
            "abandon_mpoints_per_s": points / abandon_s / 1e6,
            "abandoned_fraction": kernel_abandoned,
        },
        "exact_no_cache": cold,
        "exact_warm_cache": warm,
        "warm_cache": {
            "hit_rate": warm_hit_rate,
            "lrd_read_calls": int(warm_reads),
            "resident_bytes": int(cache_bytes),
        },
    }
    record_table(
        "Query engine: squared-space early abandoning + leaf cache", result
    )

    # The perf properties this PR claims, pinned as assertions.
    assert cold.avg_abandoned_fraction >= 0.30, (
        f"early abandoning saved only {cold.avg_abandoned_fraction:.2%} "
        "of points on hard queries"
    )
    assert warm_hit_rate >= 0.90, f"warm hit rate {warm_hit_rate:.2%}"
    assert warm_reads == 0, f"{warm_reads} LRD reads on a warm cache"
    assert cache_bytes <= _WARM_BUDGET


def test_small_cache_respects_budget(index_dir, data, hard_queries):
    budget = 32 * 1 << 10  # far below the index's total leaf bytes
    index = HerculesIndex.open(index_dir, cache_bytes=budget)
    try:
        run_workload(index, hard_queries, k=1, num_series=data.shape[0])
        cache = index.leaf_cache
        assert cache.current_bytes <= budget
        assert cache.snapshot().evictions > 0
    finally:
        index.close()
