"""Shared configuration of the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_figXX_*.py`` regenerates one figure of the paper's
evaluation (Section 4.2) at laptop scale and prints the same rows the
figure plots; ``bench_micro_*.py`` cover the substrate kernels.  Scales
can be raised with the ``REPRO_BENCH_SCALE`` environment variable
(a float multiplier on dataset sizes, default 1.0).
"""

from __future__ import annotations

import os

import pytest

from repro.eval.report import format_table

#: Tables recorded by figure benchmarks, printed after the run (stdout
#: during tests is captured by pytest; the terminal summary is not).
_TABLES: list[str] = []


def record_table(title: str, result) -> None:
    """Queue an ExperimentResult's table for the end-of-run summary."""
    _TABLES.append(f"\n{title}\n" + format_table(result.headers, result.rows))


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("Reproduced paper figures (scaled workloads)")
    terminalreporter.write_line("=" * 72)
    for table in _TABLES:
        terminalreporter.write_line(table)


def bench_scale() -> float:
    """Dataset-size multiplier taken from REPRO_BENCH_SCALE."""
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1.0")), 0.01)
    except ValueError:
        return 1.0


def scaled(size: int) -> int:
    return max(int(size * bench_scale()), 50)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
