"""Shared configuration of the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_figXX_*.py`` regenerates one figure of the paper's
evaluation (Section 4.2) at laptop scale and prints the same rows the
figure plots; ``bench_micro_*.py`` cover the substrate kernels.  Scales
can be raised with the ``REPRO_BENCH_SCALE`` environment variable
(a float multiplier on dataset sizes, default 1.0).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.eval.report import format_table

#: Tables recorded by figure benchmarks, printed after the run (stdout
#: during tests is captured by pytest; the terminal summary is not).
_TABLES: list[str] = []

#: JSON-ready figure payloads, dumped to REPRO_BENCH_JSON when set.  The
#: cost summaries inside (distance computations, % data accessed, modeled
#: I/O) are hardware-independent, so the file diffs cleanly across runs.
_RESULTS: list[dict] = []


def record_table(title: str, result) -> None:
    """Queue an ExperimentResult's table for the end-of-run summary."""
    _TABLES.append(f"\n{title}\n" + format_table(result.headers, result.rows))
    payload = result.to_json() if hasattr(result, "to_json") else None
    if payload is not None:
        payload["title"] = title
        _RESULTS.append(payload)


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path and _RESULTS:
        with open(json_path, "w") as handle:
            json.dump({"figures": _RESULTS}, handle, indent=2, sort_keys=True)
        terminalreporter.write_line(f"benchmark figures written to {json_path}")
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("Reproduced paper figures (scaled workloads)")
    terminalreporter.write_line("=" * 72)
    for table in _TABLES:
        terminalreporter.write_line(table)


def bench_scale() -> float:
    """Dataset-size multiplier taken from REPRO_BENCH_SCALE."""
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1.0")), 0.01)
    except ValueError:
        return 1.0


def scaled(size: int) -> int:
    return max(int(size * bench_scale()), 50)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
