"""Figure 7: average 1NN query time on the largest datasets.

Paper: 1TB and 1.5TB synthetic datasets; Hercules beats every index and
the optimized parallel scan (DSTree*/VA+file could not even build at
1.5TB).  Scaled here to the two largest sizes of the suite, with PSCAN
included.

Shape reproduced: the tree indexes access a small, shrinking fraction of
the data while the scans stay at 100% — the mechanism behind the paper's
crossover — and Hercules accesses the least among tree indexes under
modeled disk cost.
"""

from __future__ import annotations

from repro.eval.experiments import figure7_large_datasets

from .conftest import record_table, scaled


def test_figure7_large_datasets(benchmark):
    sizes = (scaled(24_000), scaled(40_000))
    result = benchmark.pedantic(
        lambda: figure7_large_datasets(
            sizes=sizes, length=64, num_queries=10, verbose=False
        ),
        rounds=1,
        iterations=1,
    )

    record_table("Figure 7: average 1NN query time on large datasets", result)

    for size in sizes:
        pscan = result.raw[(size, "PSCAN")]
        hercules = result.raw[(size, "Hercules")]
        # Scans read everything; Hercules reads a small fraction.
        assert pscan.avg_data_accessed == 1.0
        assert hercules.avg_data_accessed < 0.5

    # Pruning improves (or holds) as the dataset grows: the fraction of
    # data Hercules touches must not grow with size.
    small, large = sizes
    assert (
        result.raw[(large, "Hercules")].avg_data_accessed
        <= result.raw[(small, "Hercules")].avg_data_accessed * 1.5
    )
