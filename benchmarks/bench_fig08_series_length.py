"""Figure 8: scalability with increasing series length.

Paper: series of length 128-16384 (fixed total dataset size); Hercules
is 5-10x faster than the best competitor at every length, with the best
competitor changing identity (DSTree* on short series, VA+file/ParIS+ on
long ones).  Scaled here to lengths 64-512 at fixed series count.

Shape reproduced: every index beats the scans' 100% data access at every
length, and Hercules' accessed fraction stays below DSTree*'s.
"""

from __future__ import annotations

from repro.eval.experiments import figure8_series_length

from .conftest import record_table, scaled


def test_figure8_series_length(benchmark):
    lengths = (64, 128, 256, 512)
    result = benchmark.pedantic(
        lambda: figure8_series_length(
            lengths=lengths, size=scaled(4_000), num_queries=10, verbose=False
        ),
        rounds=1,
        iterations=1,
    )

    record_table("Figure 8: scalability with series length (1NN, synth)", result)

    for length in lengths:
        hercules = result.raw[(length, "Hercules")]
        pscan = result.raw[(length, "PSCAN")]
        assert pscan.avg_data_accessed == 1.0
        assert hercules.avg_data_accessed < 1.0
