"""Shard-scaling benchmark: build throughput and query latency vs N shards.

Not a paper figure: this pins the scatter-gather engine's scaling story.
A single-process Hercules build is GIL-bound outside the NumPy kernels;
``ShardedIndex`` with worker processes is the path past it (the paper's
multi-core numbers assume real parallelism).  The benchmark builds the
same dataset at shard counts 1/2/4 — process workers for N > 1 — then
answers the same queries through each index, recording:

* end-to-end build wall-clock and series/sec (``raw["build/N"]``),
* the throughput ratio vs the single-process baseline
  (``raw["speedup/N"]``) — the number the CI shard-smoke gate reads,
* per-query exact k-NN latency through the scatter-gather path.

Answer parity across shard counts is asserted inline (distances must be
value-identical); byte-level and protocol parity live in
``tests/core/test_sharding.py``.

Speedup is hardware-honest: on a single-core container process workers
cannot beat the baseline (``raw["cpus"]`` records what the run had), so
the CI gate only enforces ``speedup >= 1`` when the runner reports
multiple CPUs.  Run with ``REPRO_BENCH_JSON=BENCH_shard.json`` to dump
the figures as a JSON artifact.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import HerculesConfig, ShardedIndex
from repro.workloads.generators import random_walks

from .conftest import record_table, scaled

#: Per-shard tree knobs: single-threaded shard builds (the processes are
#: the parallelism), everything else at the scaled-experiment defaults.
_BASE = dict(
    leaf_capacity=256,
    num_build_threads=1,
    flush_threshold=1,
    db_size=1024,
)

_SHARD_COUNTS = (1, 2, 4)
_NUM_QUERIES = 8
_K = 10


@pytest.fixture(scope="module")
def data():
    return random_walks(scaled(30_000), 64, seed=17)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(23)
    noise = 0.1 * rng.standard_normal((_NUM_QUERIES, data.shape[1]))
    return (data[:: data.shape[0] // _NUM_QUERIES][:_NUM_QUERIES] + noise).astype(
        np.float32
    )


def _build_once(data, directory, num_shards):
    config = HerculesConfig(
        num_shards=num_shards,
        shard_workers=num_shards if num_shards > 1 else None,
        **_BASE,
    )
    started = time.perf_counter()
    index = ShardedIndex.build(data, config, directory=directory)
    return time.perf_counter() - started, index


def _measure_build(data, tmp_path, num_shards, repeats=2):
    """Best-of-N end-to-end build; returns (seconds, opened index)."""
    best, index = float("inf"), None
    for attempt in range(repeats):
        if index is not None:
            index.close()
        directory = tmp_path / f"shards{num_shards}-{attempt}"
        seconds, index = _build_once(data, directory, num_shards)
        best = min(best, seconds)
    return best, index


def _query_latency(index, queries):
    """Median per-query exact k-NN seconds (first pass warms nothing)."""
    laps = []
    for query in queries:
        started = time.perf_counter()
        index.knn(query, k=_K)
        laps.append(time.perf_counter() - started)
    return float(np.median(laps))


def test_shard_scaling(tmp_path, data, queries):
    from repro.eval.experiments import ExperimentResult

    result = ExperimentResult(
        figure="bench_shard",
        headers=[
            "shards",
            "build_s",
            "series_per_s",
            "speedup",
            "query_ms",
        ],
    )
    result.raw["cpus"] = os.cpu_count() or 1

    baseline_sps = None
    reference = None
    for num_shards in _SHARD_COUNTS:
        seconds, index = _measure_build(data, tmp_path, num_shards)
        sps = data.shape[0] / seconds
        if baseline_sps is None:
            baseline_sps = sps
        speedup = sps / baseline_sps
        latency = _query_latency(index, queries)

        answers = [index.knn(q, k=5).distances for q in queries]
        if reference is None:
            reference = answers
        else:  # scatter-gather must be value-identical at every N
            for ref, got in zip(reference, answers):
                np.testing.assert_array_equal(got, ref)
        index.close()

        result.rows.append(
            [
                num_shards,
                round(seconds, 3),
                round(sps, 1),
                round(speedup, 2),
                round(latency * 1e3, 2),
            ]
        )
        result.raw[f"build/{num_shards}"] = {
            "seconds": seconds,
            "series_per_sec": sps,
        }
        result.raw[f"speedup/{num_shards}"] = speedup
        result.raw[f"query_seconds/{num_shards}"] = latency

    record_table(
        "Shard scaling: build throughput and exact-query latency",
        result,
    )
