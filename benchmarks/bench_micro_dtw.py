"""Micro-benchmarks of the DTW substrate.

Not a paper figure: measures the banded batch DTW kernel, the envelope
construction, and the LB_Keogh filter that carries the DTW scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distance.dtw import dtw_distance_batch, dtw_envelope, lb_keogh
from repro.workloads.generators import random_walks


@pytest.fixture(scope="module")
def corpus():
    return random_walks(500, 128, seed=5)


@pytest.fixture(scope="module")
def query():
    return random_walks(1, 128, seed=6)[0]


def test_dtw_envelope(benchmark, query):
    benchmark(dtw_envelope, query, 12)


def test_lb_keogh_batch(benchmark, corpus, query):
    lower, upper = dtw_envelope(query, 12)
    benchmark(lb_keogh, lower, upper, corpus)


def test_dtw_batch_no_cutoff(benchmark, corpus, query):
    benchmark.pedantic(
        lambda: dtw_distance_batch(query, corpus[:100], 12),
        rounds=3,
        iterations=1,
    )


def test_dtw_batch_with_cutoff(benchmark, corpus, query):
    # A realistic cutoff (the true 1-NN) lets rows abandon early.
    full = dtw_distance_batch(query, corpus[:100], 12)
    cutoff = float(np.partition(full, 5)[5])
    benchmark.pedantic(
        lambda: dtw_distance_batch(query, corpus[:100], 12, cutoff=cutoff),
        rounds=3,
        iterations=1,
    )
