#!/usr/bin/env python3
"""Image-embedding similarity search: the paper's Deep workload.

Deep-network embeddings are "notoriously hard" for every pruning-based
index (Section 4.2, Figure 10e): pairwise distances concentrate, lower
bounds stop discriminating, and most indexes degenerate below a plain
parallel scan.  This example reproduces that story at laptop scale on the
Deep analog: it compares Hercules against the optimized parallel scan
(PSCAN) and the DSTree* baseline on easy and hard queries, printing the
work each method performs.

    python examples/embedding_search.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.baselines import DSTreeConfig, DSTreeIndex, PScan
from repro.eval.metrics import run_workload
from repro.eval.report import print_table
from repro.workloads.datasets import deep_like
from repro.workloads.generators import make_query_workloads


def main() -> None:
    print("Generating 10,000 CNN-embedding-like vectors (length 96) ...")
    raw = deep_like(10_000, 96, seed=21)
    embeddings, workloads = make_query_workloads(
        raw, queries_per_workload=10, seed=22
    )

    workdir = Path(tempfile.mkdtemp(prefix="hercules-embeddings-"))
    print("Building Hercules, DSTree*, and PSCAN over the collection ...")
    hercules = HerculesIndex.build(
        embeddings,
        HerculesConfig(
            leaf_capacity=150,
            num_build_threads=4,
            db_size=1024,
            flush_threshold=1,
            num_query_threads=4,
            l_max=5,
        ),
        directory=workdir,
    )
    dstree = DSTreeIndex.build(embeddings, DSTreeConfig(leaf_capacity=150))
    pscan = PScan(embeddings, num_threads=4)

    rows = []
    for label in ("1%", "10%", "ood"):
        queries = workloads[label].queries
        for name, method in (
            ("Hercules", hercules),
            ("DSTree*", dstree),
            ("PSCAN", pscan),
        ):
            result = run_workload(method, queries, k=10, workload=label)
            rows.append(
                [
                    label,
                    name,
                    f"{result.avg_query_seconds * 1e3:.2f} ms",
                    f"{result.avg_data_accessed:.1%}",
                    int(result.avg_distance_computations),
                ]
            )
    print_table(
        "10-NN retrieval over 10K embeddings (per-query averages)",
        ["workload", "method", "avg time", "data accessed", "full distances"],
        rows,
    )

    print(
        "\nReading the table: on easy (1%) queries the indexes prune almost"
        "\neverything; as difficulty grows toward out-of-dataset queries the"
        "\naccessed fraction climbs toward 100% and Hercules adapts by"
        "\nswitching to its skip-sequential path instead of issuing per-series"
        "\nrandom reads — the behaviour behind Figure 10e of the paper."
    )

    hercules.close()
    dstree.close()
    pscan.close()


if __name__ == "__main__":
    main()
