#!/usr/bin/env python3
"""Approximate query answering: the paper's stated next step (§5).

Hercules' conclusion points at approximate answering with and without
quality guarantees.  This example demonstrates both modes this
reproduction implements on top of the exact pipeline:

* **approximate-only** — stop after the tree descent (Algorithm 11);
  recall grows with the leaf budget ``L_max``;
* **ε-approximate** — run the full pipeline with every pruning
  comparison tightened by (1+ε); answers carry a hard guarantee
  (reported k-th distance ≤ (1+ε) · exact k-th distance) while pruning
  gets more aggressive.

    python examples/approximate_search.py
"""

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.eval.report import print_table
from repro.workloads.generators import make_query_workloads, random_walks


def main() -> None:
    print("Building an index over 15,000 random walks (length 128) ...")
    raw = random_walks(15_000, 128, seed=71)
    data, workloads = make_query_workloads(raw, queries_per_workload=20, seed=72)
    config = HerculesConfig(
        leaf_capacity=150,
        num_build_threads=4,
        db_size=1024,
        flush_threshold=1,
        num_query_threads=2,
        l_max=4,
    )
    index = HerculesIndex.build(data, config)
    queries = workloads["5%"].queries

    exact = [index.knn(q, k=10) for q in queries]
    exact_kth = np.array([a.distances[-1] for a in exact])

    # --- approximate-only: recall vs leaf budget --------------------------
    rows = []
    for l_max in (1, 2, 4, 8, 16, 32):
        recalls = []
        times = []
        for q, ex in zip(queries, exact):
            approx = index.knn_approx(q, k=10, l_max=l_max)
            hits = np.isin(approx.positions, ex.positions).sum()
            recalls.append(hits / 10)
            times.append(approx.profile.time_total)
        rows.append(
            [l_max, f"{np.mean(recalls):.1%}", f"{np.mean(times) * 1e3:.2f} ms"]
        )
    print_table(
        "Approximate-only search: recall@10 vs leaf budget (L_max)",
        ["L_max", "recall@10", "avg time"],
        rows,
    )

    # --- ε-approximate: guaranteed quality vs work -------------------------
    rows = []
    for epsilon in (0.0, 0.05, 0.1, 0.25, 0.5, 1.0):
        variant = index.config.with_options(epsilon=epsilon)
        ratios = []
        accessed = []
        for q, true_kth in zip(queries, exact_kth):
            answer = index.knn(q, k=10, config=variant)
            ratios.append(answer.distances[-1] / true_kth)
            accessed.append(
                answer.profile.data_accessed_fraction(index.num_series)
            )
            assert answer.distances[-1] <= (1 + epsilon) * true_kth + 1e-6
        rows.append(
            [
                epsilon,
                f"{max(ratios):.4f}",
                f"{1 + epsilon:.2f}",
                f"{np.mean(accessed):.2%}",
            ]
        )
    print_table(
        "ε-approximate search: worst observed ratio vs guarantee",
        ["epsilon", "worst kth ratio", "guarantee", "data accessed"],
        rows,
    )
    print(
        "\nObserved ratios stay far below the guarantee — ε buys pruning"
        "\n(falling data-accessed column) at a bounded, usually invisible,"
        "\nquality cost."
    )
    index.close()


if __name__ == "__main__":
    main()
