#!/usr/bin/env python3
"""Seismic-event retrieval: the paper's Seismic workload, end to end.

Scenario (Section 1's motivation): a monitoring service holds a large
archive of past seismograms and, whenever a new event is recorded, must
retrieve the most similar historical recordings — exactly, because a
mismatch sends an analyst down the wrong path.

This example indexes a Seismic-analog archive, then answers two kinds of
queries and shows how Hercules *adapts its access path per query*
(Section 3.4): a recording of a known event type prunes well and flows
through the four-phase path, while a never-seen event defeats pruning and
Hercules falls back to a skip-sequential scan of its leaf-ordered LRDFile
— the design that keeps it ahead of a scan even on hard queries.

    python examples/seismic_monitoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.workloads.datasets import seismic_like
from repro.workloads.generators import make_ood_split, make_noise_queries


def main() -> None:
    print("Building the historical archive (12,000 seismograms, length 256) ...")
    archive = seismic_like(12_000, 256, seed=11)
    # Hold out recordings that the index never sees: "new" events.
    indexed, unseen_events = make_ood_split(archive, num_queries=5, seed=12)

    config = HerculesConfig(
        leaf_capacity=150,
        num_build_threads=4,
        db_size=1024,
        flush_threshold=1,
        num_query_threads=4,
        l_max=6,
    )
    workdir = Path(tempfile.mkdtemp(prefix="hercules-seismic-"))
    index = HerculesIndex.build(indexed, config, directory=workdir)
    print(
        f"Archive indexed: {index.num_leaves} leaves, "
        f"construction {index.build_report.total_seconds:.2f}s\n"
    )

    def investigate(label: str, recording: np.ndarray, k: int = 1) -> None:
        answer = index.knn(recording, k=k)
        profile = answer.profile
        print(f"{label}")
        print(
            f"  {k} closest archive event(s): positions "
            f"{[int(p) for p in answer.positions]}, "
            f"distances {np.array2string(answer.distances, precision=2)}"
        )
        print(
            f"  access path: {profile.path:>16}   "
            f"EAPCA pruning {profile.eapca_pruning:6.1%}   "
            f"archive touched {profile.data_accessed_fraction(index.num_series):6.2%}"
        )

    # A recording similar to archived events: a perturbed archive member.
    known = make_noise_queries(indexed, count=2, noise_variance=0.01, seed=13)
    investigate("Known event (sensor echo of an archived event), 1-NN:", known[0])
    investigate("Known event, second station, 1-NN:", known[1])

    # The same query at k=3 is much harder: the archive holds exactly ONE
    # recording of this event, so the exact 2nd/3rd neighbors are far away,
    # BSF_k is large, and pruning legitimately collapses — Hercules adapts
    # by switching to its skip-sequential path instead of random I/O.
    investigate("Same event, but asking for 3 neighbors:", known[0], k=3)

    # Recordings of events the archive has never seen.
    for i, event in enumerate(unseen_events[:2]):
        investigate(f"Novel event #{i} (out-of-archive), 1-NN:", event)

    # The exactness guarantee: verify one answer against brute force.
    query = known[0].astype(np.float64)
    brute = np.sqrt(((indexed.astype(np.float64) - query) ** 2).sum(axis=1))
    assert np.isclose(np.sort(brute)[0], index.knn(known[0], k=1).distances[0],
                      atol=1e-5)
    print("\nVerified: index answers match a brute-force scan exactly.")
    index.close()


if __name__ == "__main__":
    main()
