#!/usr/bin/env python3
"""Bake-off: every method of the paper on one dataset, one table.

Builds Hercules and all four baselines (DSTree*, ParIS+, VA+file, PSCAN,
plus the serial-scan reference) over the same on-disk dataset, runs the
same query workload through each, and prints construction time, query
time, modeled disk time (the measured I/O pattern priced at the paper's
RAID0 hardware), and the fraction of raw data each method touched —
a miniature of Figures 9-10.

    python examples/method_comparison.py
"""

import tempfile
from pathlib import Path

from repro.eval.methods import ALL_METHODS, build_methods
from repro.eval.metrics import run_workload
from repro.eval.report import print_table
from repro.storage.dataset import Dataset
from repro.workloads.generators import make_query_workloads, random_walks


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hercules-bakeoff-"))
    print("Generating and materializing a 15,000 x 128 random-walk dataset ...")
    raw = random_walks(15_000, 128, seed=31)
    indexable, workloads = make_query_workloads(
        raw, queries_per_workload=10, seed=32
    )
    dataset = Dataset.write(workdir / "dataset.bin", indexable)

    print("Building all methods (watch the construction-cost spread) ...")
    methods = build_methods(dataset, names=ALL_METHODS, directory=workdir)

    for label in ("2%", "ood"):
        queries = workloads[label].queries
        rows = []
        for name in ALL_METHODS:
            built = methods[name]
            result = run_workload(built.method, queries, k=1, workload=label)
            rows.append(
                [
                    name,
                    f"{built.build_seconds:.2f}",
                    f"{result.avg_query_seconds * 1e3:.2f}",
                    f"{result.avg_modeled_io_seconds * 1e3:.1f}",
                    f"{result.avg_data_accessed:.1%}",
                ]
            )
        print_table(
            f"Workload {label} — 1NN, per-query averages",
            ["method", "build (s)", "query (ms)", "modeled disk (ms)", "data accessed"],
            rows,
        )

    for built in methods.values():
        built.close()
    dataset.close()
    print(
        "\nShape to look for (paper, Figures 9-10): Hercules touches the"
        "\nleast data among the tree indexes, its modeled disk time stays"
        "\nlowest on both workloads, and on the hard (ood) workload the"
        "\nnon-adaptive indexes fall behind the scans while Hercules does not."
    )


if __name__ == "__main__":
    main()
