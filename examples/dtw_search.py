#!/usr/bin/env python3
"""Exact k-NN under Dynamic Time Warping (the UCR-suite pipeline).

The paper's methods target Euclidean distance but support any measure
with a lower bound (Section 2 names DTW).  This example exercises the
DTW substrate: Keogh envelopes, the LB_Keogh filter, and banded batch
DTW with early abandoning — and shows why the filter matters by counting
how many full DTW computations it avoids.

    python examples/dtw_search.py
"""

import numpy as np

from repro.baselines import DtwScan
from repro.distance.dtw import dtw_distance, dtw_envelope, lb_keogh
from repro.workloads.datasets import seismic_like
from repro.workloads.generators import znormalize


def main() -> None:
    print("Generating 4,000 seismogram-like series (length 128) ...")
    archive = seismic_like(4_000, 128, seed=51)

    # A probe that is a time-warped version of an archived recording:
    # stretch the first half, compress the second (sensor clock drift).
    original = archive[123].astype(np.float64)
    warped_t = np.interp(
        np.linspace(0, 1, 128) ** 1.15, np.linspace(0, 1, 128), original
    )
    probe = znormalize(warped_t)

    window = 12  # Sakoe-Chiba band, points
    scan = DtwScan(archive, window=window, chunk_size=512)

    print(f"\nSearching under DTW (band = ±{window} points) ...")
    answer = scan.knn(probe, k=3)
    print(f"3-NN DTW distances: {np.array2string(answer.distances, precision=3)}")
    print(f"positions:          {list(answer.positions)}")
    filtered = answer.profile.sax_pruning
    print(
        f"LB_Keogh filtered {filtered:.1%} of the archive before any full "
        f"DTW ({answer.profile.distance_computations} DTW computations "
        f"for {scan.num_series} series)"
    )
    assert int(answer.positions[0]) == 123, "warped probe should find its source"

    # Contrast with Euclidean distance: warping breaks pointwise alignment.
    ed = float(np.sqrt(((probe - znormalize(original)) ** 2).sum()))
    dtw = dtw_distance(probe, znormalize(original), window)
    print(
        f"\nProbe vs its source: ED = {ed:.3f}, DTW = {dtw:.3f} — warping "
        f"recovers the alignment ED cannot."
    )

    # The lower-bounding property that makes filtered search exact.
    lower, upper = dtw_envelope(probe, window)
    bounds = lb_keogh(lower, upper, archive[:500])
    true = np.array(
        [dtw_distance(probe, archive[i], window) for i in range(50)]
    )
    assert np.all(bounds[:50] <= true + 1e-9)
    print("Verified on a sample: LB_Keogh never exceeds true DTW.")


if __name__ == "__main__":
    main()
