#!/usr/bin/env python3
"""Quickstart: build a Hercules index, run exact k-NN queries, persist it.

Run from the repository root (after ``pip install -e .``):

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.workloads.generators import make_noise_queries, random_walks


def main() -> None:
    # --- 1. A dataset: 20,000 z-normalized random-walk series ------------
    print("Generating 20,000 random-walk series of length 128 ...")
    data = random_walks(20_000, 128, seed=42)

    # --- 2. Build the index ----------------------------------------------
    # The configuration mirrors the paper's Section 4.2 defaults, scaled:
    # shared EAPCA/iSAX summaries, 4 build threads with the flush
    # protocol, and the adaptive query thresholds EAPCA_TH/SAX_TH.
    config = HerculesConfig(
        leaf_capacity=200,
        num_build_threads=4,
        db_size=1024,
        flush_threshold=1,
        num_query_threads=4,
        l_max=8,
    )
    workdir = Path(tempfile.mkdtemp(prefix="hercules-quickstart-"))
    index = HerculesIndex.build(data, config, directory=workdir)
    report = index.build_report
    print(
        f"Built {index}: {report.num_leaves} leaves, "
        f"{report.splits} splits, {report.flushes} flushes, "
        f"build {report.build_seconds:.2f}s + write {report.write_seconds:.2f}s"
    )

    # --- 3. Query it -------------------------------------------------------
    queries = make_noise_queries(data, count=3, noise_variance=0.05, seed=7)
    for i, query in enumerate(queries):
        answer = index.knn(query, k=5)
        profile = answer.profile
        print(
            f"\nQuery {i}: 5-NN distances "
            f"{np.array2string(answer.distances, precision=3)}"
        )
        print(
            f"  path={profile.path}  "
            f"EAPCA pruning={profile.eapca_pruning:.1%}  "
            f"data accessed={profile.data_accessed_fraction(index.num_series):.2%}  "
            f"time={profile.time_total * 1e3:.1f} ms"
        )

    # --- 4. Persist and reopen ----------------------------------------------
    # build() already materialized HTree/LRDFile/LSDFile into workdir;
    # open() reconstructs a queryable index from those three files.
    index.close()
    reopened = HerculesIndex.open(workdir)
    answer = reopened.knn(queries[0], k=1)
    print(
        f"\nReopened from {workdir}: 1-NN distance {answer.distances[0]:.3f} "
        f"(same as before)"
    )
    reopened.close()


if __name__ == "__main__":
    main()
