#!/usr/bin/env python3
"""Progressive search: answers that improve while the user watches.

The paper's workloads model interactive analysis — "the queries are not
known in advance" (Section 4.1) — and its lineage includes progressive
similarity search (its refs [27, 28]), where an analyst sees improving
answers immediately instead of waiting for the exact result.

``HerculesIndex.knn_progressive`` is that interaction model: a generator
yielding a refined answer after every leaf the best-first search visits,
ending with the exact answer.  This example simulates a dashboard that
renders each improvement and reports how early the stream converged.

    python examples/progressive_dashboard.py
"""

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.workloads.generators import make_noise_queries, random_walks


def main() -> None:
    print("Building an index over 20,000 random walks ...")
    data = random_walks(20_000, 128, seed=91)
    config = HerculesConfig(
        leaf_capacity=200,
        num_build_threads=4,
        db_size=1024,
        flush_threshold=1,
        num_query_threads=2,
    )
    index = HerculesIndex.build(data, config)

    query = make_noise_queries(data, 1, 0.05, seed=92)[0]
    print("\nStreaming improvements for one 5-NN query:\n")
    print(f"{'leaves':>6}  {'best':>8}  {'5th':>8}  {'elapsed':>9}")

    last_kth = None
    convergence_leaf = None
    final = None
    for answer in index.knn_progressive(query, k=5):
        if answer.k < 5:
            continue
        kth = float(answer.distances[-1])
        marker = ""
        if last_kth is None or kth < last_kth - 1e-12:
            marker = "  ← improved"
            convergence_leaf = answer.profile.approx_leaves
        last_kth = kth
        print(
            f"{answer.profile.approx_leaves:>6}  "
            f"{answer.distances[0]:>8.3f}  {kth:>8.3f}  "
            f"{answer.profile.time_total * 1e3:>7.1f}ms{marker}"
        )
        final = answer

    assert final is not None
    exact = index.knn(query, k=5)
    np.testing.assert_allclose(final.distances, exact.distances, atol=1e-9)
    print(
        f"\nThe stream converged after {convergence_leaf} leaf visit(s) of "
        f"{final.profile.approx_leaves} examined; the final answer equals "
        f"the exact 4-phase result (verified)."
    )
    print(
        "An analyst consuming this stream could have acted on the correct "
        "answer long before the exactness proof completed — the value of "
        "progressive answering the paper's lineage argues for."
    )
    index.close()


if __name__ == "__main__":
    main()
