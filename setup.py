"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` in this offline environment falls
back to the legacy setuptools develop path, which needs a setup.py.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
