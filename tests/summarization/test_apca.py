"""Unit and property tests for APCA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summarization.apca import (
    apca,
    apca_dp,
    apca_error,
    apca_greedy,
    apca_reconstruct,
)
from repro.summarization.paa import paa, paa_segment_bounds

from ..conftest import make_random_walks


def piecewise_constant(levels, width):
    return np.repeat(np.asarray(levels, dtype=np.float64), width)


class TestDp:
    def test_recovers_exact_piecewise_constant_series(self):
        series = piecewise_constant([1.0, -2.0, 3.0], 5)
        ends, means = apca_dp(series, 3)
        np.testing.assert_array_equal(ends, [5, 10, 15])
        np.testing.assert_allclose(means, [1.0, -2.0, 3.0])
        assert apca_error(series, ends, means) == pytest.approx(0.0)

    def test_single_segment_is_global_mean(self):
        series = make_random_walks(1, 20, seed=1)[0]
        ends, means = apca_dp(series, 1)
        np.testing.assert_array_equal(ends, [20])
        assert means[0] == pytest.approx(series.astype(np.float64).mean())

    def test_n_segments_is_lossless(self):
        series = make_random_walks(1, 12, seed=2)[0]
        ends, means = apca_dp(series, 12)
        assert apca_error(series, ends, means) == pytest.approx(0.0, abs=1e-9)

    def test_error_decreases_with_segments(self):
        series = make_random_walks(1, 32, seed=3)[0]
        errors = [
            apca_error(series, *apca_dp(series, m)) for m in (1, 2, 4, 8, 16)
        ]
        assert all(e1 >= e2 - 1e-9 for e1, e2 in zip(errors, errors[1:]))

    def test_beats_or_matches_paa_grid(self):
        """The optimal adaptive segmentation is at least as good as PAA's
        fixed grid with the same segment count."""
        series = make_random_walks(1, 48, seed=4)[0].astype(np.float64)
        m = 6
        ends, means = apca_dp(series, m)
        bounds = paa_segment_bounds(48, m)
        paa_recon = np.repeat(paa(series, m), np.diff(bounds))
        paa_error = float(((series - paa_recon) ** 2).sum())
        assert apca_error(series, ends, means) <= paa_error + 1e-9

    def test_rejects_bad_segment_counts(self):
        with pytest.raises(ValueError):
            apca_dp(np.zeros(4), 0)
        with pytest.raises(ValueError):
            apca_dp(np.zeros(4), 5)


class TestGreedy:
    def test_recovers_exact_piecewise_constant_series(self):
        series = piecewise_constant([0.5, 4.0, -1.0, 2.0], 4)
        ends, means = apca_greedy(series, 4)
        np.testing.assert_array_equal(ends, [4, 8, 12, 16])
        assert apca_error(series, ends, means) == pytest.approx(0.0)

    def test_close_to_dp_optimum(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            series = rng.standard_normal(40).cumsum()
            optimal = apca_error(series, *apca_dp(series, 5))
            greedy = apca_error(series, *apca_greedy(series, 5))
            assert greedy <= 2.0 * optimal + 1e-6

    def test_segment_count_respected(self):
        series = make_random_walks(1, 64, seed=6)[0]
        for m in (1, 3, 9, 30):
            ends, means = apca_greedy(series, m)
            assert ends.shape[0] == m
            assert means.shape[0] == m
            assert ends[-1] == 64

    def test_dispatch(self):
        series = make_random_walks(1, 16, seed=7)[0]
        np.testing.assert_array_equal(
            apca(series, 4, method="greedy")[0], apca_greedy(series, 4)[0]
        )
        with pytest.raises(ValueError):
            apca(series, 4, method="haar")


class TestReconstruction:
    def test_roundtrip_shapes(self):
        series = make_random_walks(1, 32, seed=8)[0]
        ends, means = apca_greedy(series, 5)
        recon = apca_reconstruct(ends, means)
        assert recon.shape == (32,)

    def test_reconstruction_uses_segment_means(self):
        ends = np.array([2, 5])
        means = np.array([1.0, -1.0])
        np.testing.assert_allclose(
            apca_reconstruct(ends, means), [1, 1, -1, -1, -1]
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(6, 40),
    segments=st.integers(1, 6),
)
def test_greedy_error_never_below_dp_property(seed, length, segments):
    """DP is optimal: greedy error >= DP error, always."""
    segments = min(segments, length)
    series = make_random_walks(1, length, seed=seed)[0]
    dp_err = apca_error(series, *apca_dp(series, segments))
    greedy_err = apca_error(series, *apca_greedy(series, segments))
    assert greedy_err >= dp_err - 1e-7
