"""Unit tests for Piecewise Aggregate Approximation."""

import numpy as np
import pytest

from repro.summarization.paa import paa, paa_segment_bounds


class TestSegmentBounds:
    def test_even_division(self):
        bounds = paa_segment_bounds(16, 4)
        assert list(bounds) == [0, 4, 8, 12, 16]

    def test_uneven_division_front_loads_extra_points(self):
        bounds = paa_segment_bounds(10, 4)
        sizes = np.diff(bounds)
        assert list(sizes) == [3, 3, 2, 2]
        assert bounds[-1] == 10

    def test_single_segment(self):
        assert list(paa_segment_bounds(5, 1)) == [0, 5]

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            paa_segment_bounds(16, 0)

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError):
            paa_segment_bounds(3, 4)


class TestPaa:
    def test_matches_naive_means(self):
        series = np.arange(12, dtype=np.float64)
        result = paa(series, 3)
        expected = [series[0:4].mean(), series[4:8].mean(), series[8:12].mean()]
        np.testing.assert_allclose(result, expected)

    def test_batch_matches_per_series(self, small_dataset):
        batch = paa(small_dataset, 8)
        for i in range(5):
            np.testing.assert_allclose(batch[i], paa(small_dataset[i], 8))

    def test_constant_series_maps_to_constant_paa(self):
        series = np.full(32, 2.5)
        np.testing.assert_allclose(paa(series, 4), np.full(4, 2.5))

    def test_preserves_overall_mean_on_even_division(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(64)
        result = paa(series, 8)
        np.testing.assert_allclose(result.mean(), series.mean())

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            paa(np.zeros((2, 2, 2)), 2)
