"""Unit tests for orthonormal DFT features (VA+file substrate)."""

import numpy as np
import pytest

from repro.distance.euclidean import euclidean
from repro.summarization.dft import DftBasis, dft_features

from ..conftest import make_random_walks


class TestDftFeatures:
    def test_full_feature_set_preserves_euclidean_distance(self):
        for length in (8, 9, 16, 33):
            data = make_random_walks(6, length, seed=length)
            feats = dft_features(data, length)
            for i in range(3):
                for j in range(3, 6):
                    time_dist = euclidean(data[i], data[j])
                    feat_dist = float(np.linalg.norm(feats[i] - feats[j]))
                    np.testing.assert_allclose(feat_dist, time_dist, rtol=1e-6)

    def test_prefix_distance_lower_bounds_euclidean(self):
        data = make_random_walks(20, 64, seed=21)
        query = make_random_walks(1, 64, seed=22)[0]
        q_feat = dft_features(query, 16)
        d_feat = dft_features(data, 16)
        for i in range(data.shape[0]):
            feat_dist = float(np.linalg.norm(d_feat[i] - q_feat))
            assert feat_dist <= euclidean(query, data[i]) + 1e-9

    def test_feature_count_and_shapes(self):
        data = make_random_walks(4, 32, seed=23)
        assert dft_features(data, 10).shape == (4, 10)
        assert dft_features(data[0], 10).shape == (10,)

    def test_first_feature_is_scaled_mean(self):
        series = np.arange(16, dtype=np.float64)
        feats = dft_features(series, 1)
        np.testing.assert_allclose(feats[0], series.sum() / np.sqrt(16))

    def test_energy_concentration_on_smooth_series(self):
        """For random walks most energy lives in low frequencies."""
        data = make_random_walks(10, 128, seed=24)
        prefix = dft_features(data, 16)
        full = dft_features(data, 128)
        prefix_energy = np.einsum("ij,ij->i", prefix, prefix)
        total_energy = np.einsum("ij,ij->i", full, full)
        # 16 of 128 features hold far more than the uniform 12.5% share.
        assert np.all(prefix_energy >= 0.4 * total_energy)
        assert prefix_energy.mean() >= 0.7 * total_energy.mean()


class TestDftBasis:
    def test_transform_matches_function(self):
        basis = DftBasis(series_length=32, num_features=8)
        data = make_random_walks(3, 32, seed=25)
        np.testing.assert_allclose(basis.transform(data), dft_features(data, 8))

    def test_rejects_bad_feature_counts(self):
        with pytest.raises(ValueError):
            DftBasis(series_length=16, num_features=0)
        with pytest.raises(ValueError):
            DftBasis(series_length=16, num_features=17)
