"""Unit tests for variable-cardinality iSAX words."""

import numpy as np
import pytest

from repro.distance.euclidean import euclidean
from repro.summarization.isax import IsaxWord, isax_from_symbols
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace

from ..conftest import make_random_walks


class TestIsaxWord:
    def test_from_symbols_takes_top_bits(self):
        word = isax_from_symbols(np.array([0b10110011, 0b01000000]), bits=3)
        assert word.symbols == (0b101, 0b010)
        assert word.bits == (3, 3)

    def test_zero_bits_word_contains_everything(self):
        word = isax_from_symbols(np.array([17, 42]), bits=0)
        assert word.symbols == (0, 0)
        full = np.array([[0, 0], [255, 255], [17, 42]], dtype=np.uint8)
        assert word.contains(full).all()

    def test_contains_matches_prefix(self):
        word = IsaxWord((1, 0), (1, 1))  # segment0 high half, segment1 low half
        assert word.contains(np.array([200, 10]))
        assert not word.contains(np.array([10, 10]))
        assert not word.contains(np.array([200, 200]))

    def test_refine_creates_disjoint_children(self):
        word = IsaxWord((1,), (1,))
        low, high = word.refine(0)
        assert low.symbols == (2,) and high.symbols == (3,)
        assert low.bits == (2,) and high.bits == (2,)
        samples = np.arange(256, dtype=np.uint8).reshape(-1, 1)
        in_parent = word.contains(samples)
        in_low = low.contains(samples)
        in_high = high.contains(samples)
        assert np.array_equal(in_parent, in_low | in_high)
        assert not np.any(in_low & in_high)

    def test_refine_rejects_full_cardinality(self):
        word = IsaxWord((0,), (8,))
        with pytest.raises(ValueError):
            word.refine(0)

    def test_child_for_routes_to_containing_child(self):
        word = isax_from_symbols(np.array([128]), bits=1)
        child = word.child_for(np.array([130]), 0)
        assert child.contains(np.array([130]))

    def test_symbol_must_fit_bits(self):
        with pytest.raises(ValueError):
            IsaxWord((4,), (2,))


class TestIsaxMindist:
    def test_lower_bounds_euclidean(self):
        space = SaxSpace(segments=16, alphabet_size=256)
        data = make_random_walks(40, 128, seed=11)
        query = make_random_walks(1, 128, seed=12)[0]
        q_paa = paa(query, 16)
        symbols = space.symbolize(paa(data, 16))
        for bits in (1, 2, 4, 8):
            for i in range(data.shape[0]):
                word = isax_from_symbols(symbols[i], bits)
                bound = word.mindist(q_paa, space, 128)
                assert bound <= euclidean(query, data[i]) + 1e-9

    def test_coarser_words_give_looser_bounds(self):
        space = SaxSpace(segments=8, alphabet_size=256)
        data = make_random_walks(20, 64, seed=13)
        query = make_random_walks(1, 64, seed=14)[0]
        q_paa = paa(query, 8)
        symbols = space.symbolize(paa(data, 8))
        for i in range(data.shape[0]):
            bounds = [
                isax_from_symbols(symbols[i], bits).mindist(q_paa, space, 64)
                for bits in (1, 2, 4, 8)
            ]
            assert all(b1 <= b2 + 1e-9 for b1, b2 in zip(bounds, bounds[1:]))

    def test_full_cardinality_matches_sax_mindist(self):
        space = SaxSpace(segments=8, alphabet_size=256)
        data = make_random_walks(10, 64, seed=15)
        query = make_random_walks(1, 64, seed=16)[0]
        q_paa = paa(query, 8)
        symbols = space.symbolize(paa(data, 8))
        batch = space.mindist(q_paa, symbols, 64)
        for i in range(data.shape[0]):
            word = isax_from_symbols(symbols[i], 8)
            np.testing.assert_allclose(word.mindist(q_paa, space, 64), batch[i])
