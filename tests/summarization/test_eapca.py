"""Unit tests for EAPCA segmentations and segment statistics."""

import numpy as np
import pytest

from repro.summarization.eapca import Segmentation, SeriesSketch, segment_stats


class TestSegmentation:
    def test_validation_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            Segmentation([4, 4, 8])
        with pytest.raises(ValueError):
            Segmentation([0, 4])
        with pytest.raises(ValueError):
            Segmentation([])

    def test_uniform_covers_length(self):
        seg = Segmentation.uniform(10, 3)
        assert seg.length == 10
        assert seg.num_segments == 3
        assert sum(seg.lengths) == 10

    def test_starts_and_ranges(self):
        seg = Segmentation([4, 8, 16])
        assert seg.starts == (0, 4, 8)
        assert seg.segment_range(2) == (8, 16)

    def test_split_vertically(self):
        seg = Segmentation([4, 8])
        child = seg.split_vertically(1)
        assert child.ends == (4, 6, 8)
        assert child.num_segments == 3

    def test_split_vertically_rejects_single_point_segment(self):
        seg = Segmentation([1, 2])
        with pytest.raises(ValueError):
            seg.split_vertically(0)

    def test_equality_and_hash(self):
        assert Segmentation([4, 8]) == Segmentation([4, 8])
        assert hash(Segmentation([4, 8])) == hash(Segmentation([4, 8]))
        assert Segmentation([4, 8]) != Segmentation([2, 8])


class TestSegmentStats:
    def test_matches_naive(self, small_dataset):
        seg = Segmentation([10, 25, 64])
        means, stds = segment_stats(small_dataset, seg)
        for i in range(3):
            row = small_dataset[i].astype(np.float64)
            for j, (start, end) in enumerate(
                zip(seg.starts, seg.ends)
            ):
                np.testing.assert_allclose(means[i, j], row[start:end].mean(), atol=1e-9)
                np.testing.assert_allclose(stds[i, j], row[start:end].std(), atol=1e-7)

    def test_constant_series_has_zero_std(self):
        data = np.full((2, 8), 3.0)
        means, stds = segment_stats(data, Segmentation([4, 8]))
        np.testing.assert_allclose(means, 3.0)
        np.testing.assert_allclose(stds, 0.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            segment_stats(np.zeros((2, 8)), Segmentation([4, 10]))


class TestSeriesSketch:
    def test_stats_match_segment_stats(self, small_dataset):
        seg = Segmentation([7, 20, 40, 64])
        sketch = SeriesSketch(small_dataset[0])
        means, stds = sketch.stats(seg)
        ref_means, ref_stds = segment_stats(small_dataset[:1], seg)
        np.testing.assert_allclose(means, ref_means[0], atol=1e-9)
        np.testing.assert_allclose(stds, ref_stds[0], atol=1e-9)

    def test_memoizes_per_segmentation(self, small_dataset):
        sketch = SeriesSketch(small_dataset[0])
        seg = Segmentation([32, 64])
        first = sketch.stats(seg)
        second = sketch.stats(Segmentation([32, 64]))
        assert first[0] is second[0]

    def test_range_stats(self):
        sketch = SeriesSketch(np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32))
        mean, std = sketch.range_stats(1, 3)
        np.testing.assert_allclose(mean, 2.5)
        np.testing.assert_allclose(std, 0.5)

    def test_range_stats_rejects_empty_range(self):
        sketch = SeriesSketch(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            sketch.range_stats(2, 2)
