"""Unit tests for EAPCA segmentations and segment statistics."""

import numpy as np
import pytest

from repro.summarization.eapca import (
    BatchSketch,
    Segmentation,
    SeriesSketch,
    segment_stats,
)


class TestSegmentation:
    def test_validation_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            Segmentation([4, 4, 8])
        with pytest.raises(ValueError):
            Segmentation([0, 4])
        with pytest.raises(ValueError):
            Segmentation([])

    def test_uniform_covers_length(self):
        seg = Segmentation.uniform(10, 3)
        assert seg.length == 10
        assert seg.num_segments == 3
        assert sum(seg.lengths) == 10

    def test_starts_and_ranges(self):
        seg = Segmentation([4, 8, 16])
        assert seg.starts == (0, 4, 8)
        assert seg.segment_range(2) == (8, 16)

    def test_split_vertically(self):
        seg = Segmentation([4, 8])
        child = seg.split_vertically(1)
        assert child.ends == (4, 6, 8)
        assert child.num_segments == 3

    def test_split_vertically_rejects_single_point_segment(self):
        seg = Segmentation([1, 2])
        with pytest.raises(ValueError):
            seg.split_vertically(0)

    def test_equality_and_hash(self):
        assert Segmentation([4, 8]) == Segmentation([4, 8])
        assert hash(Segmentation([4, 8])) == hash(Segmentation([4, 8]))
        assert Segmentation([4, 8]) != Segmentation([2, 8])


class TestSegmentStats:
    def test_matches_naive(self, small_dataset):
        seg = Segmentation([10, 25, 64])
        means, stds = segment_stats(small_dataset, seg)
        for i in range(3):
            row = small_dataset[i].astype(np.float64)
            for j, (start, end) in enumerate(
                zip(seg.starts, seg.ends)
            ):
                np.testing.assert_allclose(means[i, j], row[start:end].mean(), atol=1e-9)
                np.testing.assert_allclose(stds[i, j], row[start:end].std(), atol=1e-7)

    def test_constant_series_has_zero_std(self):
        data = np.full((2, 8), 3.0)
        means, stds = segment_stats(data, Segmentation([4, 8]))
        np.testing.assert_allclose(means, 3.0)
        np.testing.assert_allclose(stds, 0.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            segment_stats(np.zeros((2, 8)), Segmentation([4, 10]))


class TestSeriesSketch:
    def test_stats_match_segment_stats(self, small_dataset):
        seg = Segmentation([7, 20, 40, 64])
        sketch = SeriesSketch(small_dataset[0])
        means, stds = sketch.stats(seg)
        ref_means, ref_stds = segment_stats(small_dataset[:1], seg)
        np.testing.assert_allclose(means, ref_means[0], atol=1e-9)
        np.testing.assert_allclose(stds, ref_stds[0], atol=1e-9)

    def test_memoizes_per_segmentation(self, small_dataset):
        sketch = SeriesSketch(small_dataset[0])
        seg = Segmentation([32, 64])
        first = sketch.stats(seg)
        second = sketch.stats(Segmentation([32, 64]))
        assert first[0] is second[0]

    def test_range_stats(self):
        sketch = SeriesSketch(np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32))
        mean, std = sketch.range_stats(1, 3)
        np.testing.assert_allclose(mean, 2.5)
        np.testing.assert_allclose(std, 0.5)

    def test_range_stats_rejects_empty_range(self):
        sketch = SeriesSketch(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            sketch.range_stats(2, 2)


class TestBatchSketch:
    """The batch sketch must be *bit-identical* to per-row sketches.

    Grouped batch insertion's parity guarantee rests on this: the same
    float64 arithmetic in the same order means ``==``, not ``allclose``.
    """

    def test_stats_bit_identical_to_series_sketch(self, small_dataset):
        seg = Segmentation([7, 20, 40, 64])
        batch = BatchSketch(small_dataset)
        means, stds = batch.stats(seg)
        for i, series in enumerate(small_dataset):
            ref_means, ref_stds = SeriesSketch(series).stats(seg)
            np.testing.assert_array_equal(means[i], ref_means)
            np.testing.assert_array_equal(stds[i], ref_stds)

    def test_stats_row_subset(self, small_dataset):
        seg = Segmentation([16, 64])
        batch = BatchSketch(small_dataset)
        rows = np.array([4, 1, 7], dtype=np.int64)
        means, stds = batch.stats(seg, rows=rows)
        full_means, full_stds = batch.stats(seg)
        np.testing.assert_array_equal(means, full_means[rows])
        np.testing.assert_array_equal(stds, full_stds[rows])

    def test_range_stats_bit_identical_to_series_sketch(self, small_dataset):
        batch = BatchSketch(small_dataset)
        means, stds = batch.range_stats(5, 23)
        for i, series in enumerate(small_dataset):
            mean, std = SeriesSketch(series).range_stats(5, 23)
            assert means[i] == mean
            assert stds[i] == std

    def test_range_stats_row_subset(self, small_dataset):
        batch = BatchSketch(small_dataset)
        rows = np.array([3, 0], dtype=np.int64)
        means, stds = batch.range_stats(2, 9, rows=rows)
        full_means, full_stds = batch.range_stats(2, 9)
        np.testing.assert_array_equal(means, full_means[rows])
        np.testing.assert_array_equal(stds, full_stds[rows])

    def test_keeps_raw_rows_in_original_dtype(self, small_dataset):
        batch = BatchSketch(small_dataset)
        assert batch.rows.dtype == small_dataset.dtype
        assert batch.count == small_dataset.shape[0]
        assert batch.length == small_dataset.shape[1]

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            BatchSketch(np.zeros(8, dtype=np.float32))

    def test_rejects_bad_ranges_and_segmentations(self, small_dataset):
        batch = BatchSketch(small_dataset)
        with pytest.raises(ValueError):
            batch.range_stats(3, 3)
        with pytest.raises(ValueError):
            batch.stats(Segmentation([16]))  # wrong length
