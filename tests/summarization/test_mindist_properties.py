"""Property-based tests of the LB_SAX lower-bound guarantee (hypothesis).

The signature pre-filter tier, the SAX phase-3 screen, and the ParIS+
baseline all prune with ``mindist`` lower bounds — exactness of every
pipeline rests on the guarantee that for any query, any data, and any
cardinality

    IsaxWord.mindist  <=  full-resolution SaxSpace.mindist  <=  true ED,

including degenerate shapes: zero-bit (wildcard) segments, single-segment
words, and mixed per-segment refinements.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.prefilter import SignatureArray
from repro.summarization.isax import IsaxWord, isax_from_symbols
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace

from ..conftest import make_random_walks

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_TOL = 1e-9


def shape_strategy():
    """(segments, points-per-segment, series count, seed) tuples."""
    return st.tuples(
        st.sampled_from([1, 2, 4, 8, 16]),  # segments
        st.integers(2, 8),                  # points per segment
        st.integers(3, 24),                 # series count
        st.integers(0, 2**20),              # data seed
    )


def _make(shape):
    segments, per_segment, count, seed = shape
    length = segments * per_segment
    space = SaxSpace(segments=segments)
    data = make_random_walks(count, length, seed=seed).astype(np.float64)
    query = make_random_walks(1, length, seed=seed + 1)[0].astype(np.float64)
    symbols = space.symbolize(paa(data, segments))
    q_paa = paa(query, segments)
    true = np.sqrt(((data - query) ** 2).sum(axis=1))
    return space, length, symbols, q_paa, true


@given(shape_strategy())
@_SETTINGS
def test_sax_mindist_lower_bounds_euclidean(shape):
    space, length, symbols, q_paa, true = _make(shape)
    lb = space.mindist(q_paa, symbols, length)
    assert (lb <= true + _TOL).all()


@given(shape_strategy(), st.integers(0, 8))
@_SETTINGS
def test_uniform_word_chain(shape, bits):
    """Coarse word mindist <= full-resolution mindist <= true distance."""
    space, length, symbols, q_paa, true = _make(shape)
    full = np.atleast_1d(space.mindist(q_paa, symbols, length))
    for i, row in enumerate(symbols):
        word = isax_from_symbols(row, bits)
        coarse = word.mindist(q_paa, space, length)
        assert coarse <= full[i] + _TOL
        assert coarse <= true[i] + _TOL


@given(shape_strategy(), st.data())
@_SETTINGS
def test_mixed_bit_widths_lower_bound(shape, data_strategy):
    """Random per-segment refinements (0-bit wildcards included)."""
    space, length, symbols, q_paa, true = _make(shape)
    widths = data_strategy.draw(
        st.lists(
            st.integers(0, 8),
            min_size=space.segments,
            max_size=space.segments,
        )
    )
    for i, row in enumerate(symbols):
        word = IsaxWord(
            symbols=tuple(
                int(s) >> (8 - b) if b else 0 for s, b in zip(row, widths)
            ),
            bits=tuple(widths),
        )
        assert word.contains(row)
        assert word.mindist(q_paa, space, length) <= true[i] + _TOL


@given(shape_strategy(), st.integers(0, 7), st.data())
@_SETTINGS
def test_refinement_tightens(shape, bits, data_strategy):
    """Children bound at least as tightly as the parent; the child that
    contains the series still lower-bounds its true distance."""
    space, length, symbols, q_paa, true = _make(shape)
    segment = data_strategy.draw(st.integers(0, space.segments - 1))
    for i, row in enumerate(symbols):
        parent = isax_from_symbols(row, bits)
        parent_lb = parent.mindist(q_paa, space, length)
        low, high = parent.refine(segment)
        for child in (low, high):
            assert child.mindist(q_paa, space, length) >= parent_lb - _TOL
        mine = parent.child_for(row, segment)
        assert mine.contains(row)
        assert mine.mindist(q_paa, space, length) <= true[i] + _TOL


@given(
    st.integers(2, 8),      # points in the single segment
    st.integers(3, 16),     # series count
    st.integers(0, 2**20),  # seed
    st.integers(1, 8),      # bits
)
@_SETTINGS
def test_single_segment_words(per_segment, count, seed, bits):
    space, length, symbols, q_paa, true = _make((1, per_segment, count, seed))
    for i, row in enumerate(symbols):
        word = isax_from_symbols(row, bits)
        assert word.segments == 1
        assert word.mindist(q_paa, space, length) <= true[i] + _TOL


@given(shape_strategy(), st.integers(1, 8))
@_SETTINGS
def test_signature_array_matches_scalar_words(shape, bits):
    """The vectorized screen kernel equals the scalar iSAX reference."""
    space, length, symbols, q_paa, true = _make(shape)
    sig = SignatureArray.from_full_symbols(symbols, space, bits)
    bounds = sig.lower_bounds(q_paa, length)
    expected = np.array(
        [
            isax_from_symbols(row, bits).mindist(q_paa, space, length)
            for row in symbols
        ]
    )
    np.testing.assert_allclose(bounds, expected, atol=1e-9)
    assert (bounds <= true + _TOL).all()
