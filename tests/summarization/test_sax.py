"""Unit and property tests for SAX discretization and MINDIST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distance.euclidean import euclidean
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace, inverse_normal_cdf, sax_breakpoints

from ..conftest import make_random_walks


class TestInverseNormalCdf:
    def test_median_is_zero(self):
        np.testing.assert_allclose(inverse_normal_cdf(np.array([0.5])), [0.0], atol=1e-12)

    def test_symmetry(self):
        p = np.array([0.01, 0.1, 0.25, 0.4])
        np.testing.assert_allclose(
            inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), atol=1e-8
        )

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        p = np.linspace(1e-6, 1 - 1e-6, 101)
        np.testing.assert_allclose(
            inverse_normal_cdf(p), scipy_stats.norm.ppf(p), rtol=1e-8, atol=1e-8
        )

    def test_rejects_bounds(self):
        with pytest.raises(ValueError):
            inverse_normal_cdf(np.array([0.0]))
        with pytest.raises(ValueError):
            inverse_normal_cdf(np.array([1.0]))


class TestBreakpoints:
    def test_count_and_monotonicity(self):
        bps = sax_breakpoints(256)
        assert bps.shape == (255,)
        assert np.all(np.diff(bps) > 0)

    def test_alphabet_4_known_values(self):
        # N(0,1) quartiles: -0.6745, 0, 0.6745.
        bps = sax_breakpoints(4)
        np.testing.assert_allclose(bps, [-0.6745, 0.0, 0.6745], atol=1e-4)

    def test_rejects_tiny_and_oversized_alphabets(self):
        with pytest.raises(ValueError):
            sax_breakpoints(1)
        with pytest.raises(ValueError):
            sax_breakpoints(257)


class TestSymbolize:
    def test_symbols_identify_breakpoint_intervals(self):
        space = SaxSpace(segments=4, alphabet_size=8)
        values = np.array([-10.0, -0.5, 0.0, 0.5, 10.0])
        symbols = space.symbolize(values)
        lower, upper = space.symbol_intervals(symbols)
        assert np.all(lower <= values)
        assert np.all(values < upper)

    def test_extreme_values_use_boundary_symbols(self):
        space = SaxSpace(segments=1, alphabet_size=16)
        assert space.symbolize(np.array([-100.0]))[0] == 0
        assert space.symbolize(np.array([100.0]))[0] == 15

    def test_batch_shape(self):
        space = SaxSpace(segments=8, alphabet_size=64)
        values = np.zeros((5, 8))
        assert space.symbolize(values).shape == (5, 8)
        assert space.symbolize(values).dtype == np.uint8


class TestMindist:
    def test_zero_when_query_falls_in_symbol_region(self):
        space = SaxSpace(segments=4, alphabet_size=8)
        q_paa = np.array([-1.0, 0.1, 0.5, 2.0])
        symbols = space.symbolize(q_paa)
        assert space.mindist(q_paa, symbols, series_length=64) == 0.0

    def test_lower_bounds_euclidean_on_random_walks(self):
        space = SaxSpace(segments=16, alphabet_size=256)
        data = make_random_walks(50, 128, seed=3)
        query = make_random_walks(1, 128, seed=99)[0]
        q_paa = paa(query, 16)
        symbols = space.symbolize(paa(data, 16))
        bounds = space.mindist(q_paa, symbols, series_length=128)
        true = np.array([euclidean(query, s) for s in data])
        assert np.all(bounds <= true + 1e-9)

    def test_coarser_alphabet_gives_looser_bound(self):
        data = make_random_walks(30, 64, seed=5)
        query = make_random_walks(1, 64, seed=6)[0]
        fine = SaxSpace(segments=8, alphabet_size=256)
        coarse = SaxSpace(segments=8, alphabet_size=4)
        q_paa = paa(query, 8)
        d_paa = paa(data, 8)
        fine_bounds = fine.mindist(q_paa, fine.symbolize(d_paa), 64)
        coarse_bounds = coarse.mindist(q_paa, coarse.symbolize(d_paa), 64)
        assert np.all(coarse_bounds <= fine_bounds + 1e-9)

    def test_rejects_wrong_query_width(self):
        space = SaxSpace(segments=4, alphabet_size=8)
        with pytest.raises(ValueError):
            space.mindist(np.zeros(3), np.zeros((1, 4), dtype=np.uint8), 64)


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(
        np.float64,
        shape=st.integers(1, 16),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
def test_symbolize_intervals_property(values):
    """Every value lies inside the breakpoint interval of its symbol."""
    space = SaxSpace(segments=values.shape[0], alphabet_size=32)
    symbols = space.symbolize(values)
    lower, upper = space.symbol_intervals(symbols)
    assert np.all(lower <= values)
    assert np.all(values < upper)
