"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest


def make_random_walks(count: int, length: int, seed: int = 7) -> np.ndarray:
    """Z-normalized random-walk series, the paper's synthetic data model."""
    rng = np.random.default_rng(seed)
    steps = rng.standard_normal((count, length))
    walks = np.cumsum(steps, axis=1)
    means = walks.mean(axis=1, keepdims=True)
    stds = walks.std(axis=1, keepdims=True)
    stds[stds == 0.0] = 1.0
    return ((walks - means) / stds).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_dataset() -> np.ndarray:
    """200 z-normalized random walks of length 64."""
    return make_random_walks(200, 64, seed=42)
