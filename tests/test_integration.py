"""Kitchen-sink integration test: the full production workflow.

Generate → materialize dataset on disk → build under buffer pressure
with threads → reopen from disk → every query mode → cross-method
agreement → I/O accounting sanity.  One scenario, every moving part.
"""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.baselines import DSTreeConfig, DSTreeIndex, PScan
from repro.eval.metrics import run_workload
from repro.storage.dataset import Dataset
from repro.storage.iostats import IOStats
from repro.workloads.datasets import seismic_like
from repro.workloads.generators import make_query_workloads


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    base = tmp_path_factory.mktemp("e2e")
    raw = seismic_like(2_000, 128, seed=240)
    indexable, workloads = make_query_workloads(
        raw, queries_per_workload=6, seed=241
    )
    dataset = Dataset.write(base / "dataset.bin", indexable)

    build_stats = IOStats()
    config = HerculesConfig(
        leaf_capacity=80,
        num_build_threads=4,
        db_size=128,
        buffer_capacity=512,  # force flushes
        flush_threshold=2,
        num_write_threads=2,
        num_query_threads=2,
        l_max=4,
        sax_segments=16,
    )
    index = HerculesIndex.build(
        dataset, config, directory=base / "index", stats=build_stats
    )
    yield base, dataset, indexable, workloads, index, build_stats
    index.close()
    dataset.close()


class TestEndToEnd:
    def test_build_under_pressure_spilled_and_wrote(self, scenario):
        _, _, indexable, _, index, build_stats = scenario
        report = index.build_report
        assert report.num_series == indexable.shape[0]
        assert report.flushes >= 1  # tiny HBuffer forced the protocol
        snap = build_stats.snapshot()
        assert snap.bytes_written > indexable.nbytes  # spill + LRD + LSD + HTree

    def test_reopen_and_all_query_modes_agree(self, scenario):
        base, _, indexable, workloads, index, _ = scenario
        reopened = HerculesIndex.open(base / "index")
        try:
            query = workloads["5%"].queries[0]
            exact = index.knn(query, k=5)

            # Reopened exact.
            np.testing.assert_allclose(
                reopened.knn(query, k=5).distances, exact.distances, atol=1e-9
            )
            # Batch.
            batch = reopened.knn_batch(workloads["5%"].queries[:2], k=5)
            np.testing.assert_allclose(
                batch[0].distances, exact.distances, atol=1e-9
            )
            # Progressive final.
            final = list(reopened.knn_progressive(query, k=5))[-1]
            np.testing.assert_allclose(final.distances, exact.distances, atol=1e-9)
            # Approximate-only is a superset-distance answer.
            approx = reopened.knn_approx(query, k=5, l_max=2)
            assert approx.distances[0] >= exact.distances[0] - 1e-9
            # ε-approximate guarantee.
            eps = reopened.knn(
                query, k=5, config=reopened.config.with_options(epsilon=0.3)
            )
            assert eps.distances[-1] <= 1.3 * exact.distances[-1] + 1e-6
        finally:
            reopened.close()

    def test_agreement_with_baselines_on_every_workload(self, scenario):
        _, dataset, indexable, workloads, index, _ = scenario
        dstree = DSTreeIndex.build(indexable, DSTreeConfig(leaf_capacity=80))
        pscan = PScan(indexable, num_threads=2)
        try:
            for label in ("1%", "10%", "ood"):
                for query in workloads[label].queries[:3]:
                    reference = pscan.knn(query, k=3).distances
                    np.testing.assert_allclose(
                        index.knn(query, k=3).distances, reference, atol=1e-5
                    )
                    np.testing.assert_allclose(
                        dstree.knn(query, k=3).distances, reference, atol=1e-5
                    )
        finally:
            dstree.close()
            pscan.close()

    def test_workload_runner_accounts_io(self, scenario):
        _, _, _, workloads, index, _ = scenario
        result = run_workload(index, workloads["1%"].queries, k=1, workload="1%")
        assert result.query_count == 6
        assert all(p.io is not None for p in result.profiles)
        assert result.avg_modeled_io_seconds > 0.0
        assert 0.0 < result.avg_data_accessed <= 1.0

    def test_difficulty_ordering_holds(self, scenario):
        _, _, _, workloads, index, _ = scenario
        accessed = {}
        for label in ("1%", "10%"):
            result = run_workload(index, workloads[label].queries, k=1)
            accessed[label] = result.avg_data_accessed
        assert accessed["10%"] >= accessed["1%"] * 0.8
