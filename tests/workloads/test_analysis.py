"""Tests for workload hardness analysis — validating the paper's gradings."""

import pytest

from repro.workloads.analysis import workload_hardness
from repro.workloads.datasets import deep_like, sald_like
from repro.workloads.generators import (
    NOISE_WORKLOADS,
    make_noise_queries,
    make_query_workloads,
    random_walks,
)


class TestHardnessMeasure:
    def test_self_queries_have_zero_nn_distance(self):
        data = random_walks(200, 32, seed=270)
        hardness = workload_hardness(data, data[:5])
        assert hardness.mean_nn_distance == pytest.approx(0.0, abs=1e-6)

    def test_noise_gradient_orders_as_the_paper_labels(self):
        """1% < 2% < 5% < 10% in NN distance; contrast falls with noise."""
        data = random_walks(500, 64, seed=271)
        results = {}
        for label, variance in NOISE_WORKLOADS.items():
            queries = make_noise_queries(data, 15, variance, seed=272)
            results[label] = workload_hardness(data, queries)
        nn = [results[l].mean_nn_distance for l in ("1%", "2%", "5%", "10%")]
        assert nn == sorted(nn)
        contrast = [
            results[l].relative_contrast for l in ("1%", "2%", "5%", "10%")
        ]
        assert contrast == sorted(contrast, reverse=True)

    def test_ood_is_hardest(self):
        raw = random_walks(500, 64, seed=273)
        data, workloads = make_query_workloads(raw, queries_per_workload=15,
                                               seed=274)
        easy = workload_hardness(data, workloads["1%"].queries)
        hard = workload_hardness(data, workloads["ood"].queries)
        assert hard.mean_nn_distance > easy.mean_nn_distance
        assert hard.relative_contrast < easy.relative_contrast

    def test_deep_is_harder_than_sald_on_ood(self):
        """The dataset-hardness ordering the analogs must reproduce: on
        out-of-dataset queries, Deep's distances concentrate (contrast
        near 1) while SALD keeps genuinely close neighbors."""
        results = {}
        for name, generator in (("SALD", sald_like), ("Deep", deep_like)):
            raw = generator(400, 96, seed=275)
            indexable, workloads = make_query_workloads(
                raw, queries_per_workload=10, seed=276
            )
            results[name] = workload_hardness(
                indexable, workloads["ood"].queries
            )
        assert results["Deep"].relative_contrast < results["SALD"].relative_contrast
        assert (
            results["Deep"].separable_fraction
            <= results["SALD"].separable_fraction + 0.05
        )

    def test_is_hard_flag(self):
        deep = deep_like(300, 96, seed=277)
        indexable, workloads = make_query_workloads(
            deep, queries_per_workload=8, seed=278
        )
        hardness = workload_hardness(indexable, workloads["ood"].queries)
        assert hardness.is_hard

    def test_sampling_bounds_work(self):
        data = random_walks(5000, 32, seed=279)
        queries = data[:3]
        hardness = workload_hardness(data, queries, sample=100)
        assert hardness.mean_distance > 0
