"""Tests for workload bundle persistence."""

import json

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import make_query_workloads
from repro.workloads.io import (
    DATASET_NAME,
    MANIFEST_NAME,
    load_workload_bundle,
    save_workload_bundle,
)

from ..conftest import make_random_walks


@pytest.fixture
def bundle(tmp_path):
    raw = make_random_walks(150, 32, seed=210)
    data, workloads = make_query_workloads(raw, queries_per_workload=5, seed=211)
    directory = save_workload_bundle(
        tmp_path / "bundle", data, workloads, metadata={"seed": 211}
    )
    return directory, data, workloads


class TestRoundTrip:
    def test_everything_preserved(self, bundle):
        directory, data, workloads = bundle
        loaded_data, loaded_workloads, metadata = load_workload_bundle(directory)
        np.testing.assert_array_equal(loaded_data, data)
        assert metadata == {"seed": 211}
        assert set(loaded_workloads) == set(workloads)
        for label in workloads:
            np.testing.assert_array_equal(
                loaded_workloads[label].queries, workloads[label].queries
            )

    def test_files_on_disk(self, bundle):
        directory, _, workloads = bundle
        assert (directory / MANIFEST_NAME).exists()
        assert (directory / DATASET_NAME).exists()
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["num_series"] == 145  # 150 minus 5 held-out ood
        assert set(manifest["workloads"]) == set(workloads)
        assert (directory / "queries-1pct.bin").exists()
        assert (directory / "queries-ood.bin").exists()


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_workload_bundle(tmp_path)

    def test_corrupt_manifest(self, bundle):
        directory, _, _ = bundle
        (directory / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(WorkloadError):
            load_workload_bundle(directory)

    def test_count_mismatch_detected(self, bundle):
        directory, _, _ = bundle
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["workloads"]["1%"]["count"] = 999
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(WorkloadError):
            load_workload_bundle(directory)

    def test_length_mismatch_rejected_at_save(self, tmp_path):
        from repro.workloads.generators import QueryWorkload

        data = make_random_walks(50, 32, seed=212)
        bad = QueryWorkload("bad", make_random_walks(3, 16, seed=213))
        with pytest.raises(WorkloadError):
            save_workload_bundle(tmp_path / "b", data, {"bad": bad})
