"""Tests for the real-dataset analogs and their hardness ordering."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.summarization.dft import dft_features
from repro.workloads.datasets import (
    DATASET_ANALOGS,
    deep_like,
    make_analog,
    sald_like,
    seismic_like,
)


class TestShapesAndNormalization:
    @pytest.mark.parametrize("name", sorted(DATASET_ANALOGS))
    def test_default_lengths_match_paper(self, name):
        generator, length = DATASET_ANALOGS[name]
        data = make_analog(name, 20, seed=1)
        assert data.shape == (20, length)
        np.testing.assert_allclose(data.mean(axis=1), 0.0, atol=1e-3)
        np.testing.assert_allclose(data.std(axis=1), 1.0, atol=1e-3)

    def test_custom_length(self):
        assert make_analog("SALD", 5, length=64, seed=2).shape == (5, 64)

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            make_analog("MNIST", 5)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            make_analog("Deep", 8, seed=3), make_analog("Deep", 8, seed=3)
        )


class TestDistributionalProperties:
    def test_sald_is_smoother_than_deep(self):
        """SALD concentrates spectral energy low; Deep spreads it flat."""

        def low_freq_energy_fraction(data, keep=8):
            prefix = dft_features(data, keep)
            full = dft_features(data, data.shape[1])
            return (
                np.einsum("ij,ij->i", prefix, prefix).mean()
                / np.einsum("ij,ij->i", full, full).mean()
            )

        sald = sald_like(50, 128, seed=4)
        deep = deep_like(50, 128, seed=4)
        assert low_freq_energy_fraction(sald) > 0.8
        assert low_freq_energy_fraction(deep) < 0.5
        assert low_freq_energy_fraction(sald) > 1.5 * low_freq_energy_fraction(deep)

    def test_seismic_is_heteroscedastic(self):
        """Per-segment σ varies far more for Seismic than for SALD."""

        def segment_std_spread(data, segments=8):
            from repro.summarization.eapca import Segmentation, segment_stats

            seg = Segmentation.uniform(data.shape[1], segments)
            _, stds = segment_stats(data, seg)
            return float((stds.max(axis=1) - stds.min(axis=1)).mean())

        seismic = seismic_like(40, 128, seed=5)
        sald = sald_like(40, 128, seed=5)
        assert segment_std_spread(seismic) > 1.5 * segment_std_spread(sald)

    def test_deep_distances_concentrate(self):
        """Relative contrast (spread/mean of pairwise NN distances) is
        much lower for Deep than for SALD — the hardness driver."""

        def relative_contrast(data):
            sample = data[:80].astype(np.float64)
            diffs = sample[:, None, :] - sample[None, :, :]
            d = np.sqrt((diffs**2).sum(-1))
            d = d[np.triu_indices_from(d, k=1)]
            return (d.max() - d.min()) / d.mean()

        deep = deep_like(100, 96, seed=6)
        sald = sald_like(100, 96, seed=6)
        assert relative_contrast(deep) < relative_contrast(sald)
