"""Unit tests for dataset and query-workload generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import (
    ALL_WORKLOADS,
    NOISE_WORKLOADS,
    make_noise_queries,
    make_ood_split,
    make_query_workloads,
    random_walks,
    znormalize,
)


class TestZNormalize:
    def test_zero_mean_unit_std(self):
        data = random_walks(20, 64, seed=1, normalize=False)
        normed = znormalize(data)
        np.testing.assert_allclose(normed.mean(axis=1), 0.0, atol=1e-4)
        np.testing.assert_allclose(normed.std(axis=1), 1.0, atol=1e-4)

    def test_constant_series_maps_to_zeros(self):
        normed = znormalize(np.full((1, 8), 5.0))
        np.testing.assert_array_equal(normed, np.zeros((1, 8)))

    def test_single_series_path(self):
        out = znormalize(np.arange(8, dtype=np.float64))
        assert out.ndim == 1
        assert out.dtype == np.float32


class TestRandomWalks:
    def test_deterministic_per_seed(self):
        a = random_walks(5, 32, seed=7)
        b = random_walks(5, 32, seed=7)
        c = random_walks(5, 32, seed=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unnormalized_walks_are_cumulative(self):
        walks = random_walks(3, 100, seed=9, normalize=False)
        steps = np.diff(walks.astype(np.float64), axis=1)
        # Steps are N(0,1): sample std near 1.
        assert 0.8 < steps.std() < 1.2

    def test_rejects_bad_shape(self):
        with pytest.raises(WorkloadError):
            random_walks(0, 10)


class TestNoiseQueries:
    def test_noise_level_controls_distance_to_nearest_neighbor(self):
        data = random_walks(300, 64, seed=10)
        easy = make_noise_queries(data, 20, NOISE_WORKLOADS["1%"], seed=11)
        hard = make_noise_queries(data, 20, NOISE_WORKLOADS["10%"], seed=11)

        def mean_nn_distance(queries):
            dists = []
            for q in queries:
                d = np.sqrt(
                    ((data.astype(np.float64) - q.astype(np.float64)) ** 2).sum(1)
                )
                dists.append(d.min())
            return np.mean(dists)

        assert mean_nn_distance(easy) < mean_nn_distance(hard)

    def test_zero_noise_returns_dataset_members(self):
        data = random_walks(50, 32, seed=12)
        queries = make_noise_queries(data, 5, 0.0, seed=13)
        for q in queries:
            d = ((data.astype(np.float64) - q.astype(np.float64)) ** 2).sum(1)
            assert d.min() == pytest.approx(0.0, abs=1e-6)

    def test_rejects_negative_variance(self):
        with pytest.raises(WorkloadError):
            make_noise_queries(np.zeros((5, 8)), 2, -0.1)


class TestOodSplit:
    def test_split_is_disjoint_and_complete(self):
        data = random_walks(100, 16, seed=14)
        kept, held = make_ood_split(data, 10, seed=15)
        assert kept.shape[0] == 90
        assert held.shape[0] == 10
        combined = np.concatenate([kept, held])
        np.testing.assert_array_equal(
            combined[np.lexsort(combined.T[::-1])],
            data[np.lexsort(data.T[::-1])],
        )

    def test_rejects_holding_out_everything(self):
        with pytest.raises(WorkloadError):
            make_ood_split(np.zeros((5, 4)), 5)


class TestQueryWorkloads:
    def test_produces_all_five_workloads(self):
        data = random_walks(200, 32, seed=16)
        indexable, workloads = make_query_workloads(
            data, queries_per_workload=10, seed=17
        )
        assert tuple(workloads) == ALL_WORKLOADS
        assert indexable.shape[0] == 190  # ood held out
        for workload in workloads.values():
            assert workload.count == 10
            assert workload.queries.shape[1] == 32

    def test_ood_queries_not_in_index(self):
        data = random_walks(100, 16, seed=18)
        indexable, workloads = make_query_workloads(
            data, queries_per_workload=5, seed=19
        )
        for q in workloads["ood"].queries:
            d = ((indexable.astype(np.float64) - q.astype(np.float64)) ** 2).sum(1)
            assert d.min() > 1e-6

    def test_without_ood(self):
        data = random_walks(50, 16, seed=20)
        indexable, workloads = make_query_workloads(
            data, queries_per_workload=5, seed=21, include_ood=False
        )
        assert indexable.shape[0] == 50
        assert "ood" not in workloads
