"""Unit tests for :mod:`repro.retry` — deterministic backoff policy."""

import pytest

from repro.retry import RetryPolicy, deterministic_jitter


class TestDeterministicJitter:
    def test_in_unit_interval(self):
        for attempt in range(1, 20):
            value = deterministic_jitter("shard-3", attempt)
            assert 0.0 <= value < 1.0

    def test_reproducible(self):
        assert deterministic_jitter("a", 1) == deterministic_jitter("a", 1)
        assert deterministic_jitter("a", 1, seed=7) == deterministic_jitter(
            "a", 1, seed=7
        )

    def test_decorrelated_across_keys_attempts_and_seeds(self):
        values = {
            deterministic_jitter("a", 1),
            deterministic_jitter("b", 1),
            deterministic_jitter("a", 2),
            deterministic_jitter("a", 1, seed=1),
        }
        assert len(values) == 4


class TestRetryPolicy:
    def test_delays_are_deterministic_and_grow(self):
        policy = RetryPolicy(attempts=5, backoff_seconds=0.1, jitter_fraction=0.0)
        delays = policy.delays("shard-0")
        assert delays == policy.delays("shard-0")
        assert len(delays) == 4
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            attempts=4, backoff_seconds=0.1, jitter_fraction=0.5,
            max_backoff_seconds=100.0,
        )
        for attempt in range(1, 4):
            base = 0.1 * 2 ** (attempt - 1)
            delay = policy.delay(attempt, key="k")
            assert base <= delay <= base * 1.5

    def test_max_backoff_caps_delay(self):
        policy = RetryPolicy(
            attempts=10, backoff_seconds=1.0, max_backoff_seconds=2.0
        )
        assert all(d <= 2.0 for d in policy.delays("k"))

    def test_different_keys_get_different_delays(self):
        policy = RetryPolicy(attempts=3, backoff_seconds=0.1)
        assert policy.delay(1, key="shard-0") != policy.delay(1, key="shard-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)


class TestConfigBridge:
    def test_config_builds_matching_policy(self):
        from repro.core import HerculesConfig

        config = HerculesConfig(
            shard_retry_attempts=5,
            shard_retry_backoff=0.2,
            shard_retry_jitter=0.25,
            shard_timeout=1.5,
            query_deadline=10.0,
        )
        policy = config.retry_policy()
        assert policy.attempts == 5
        assert policy.backoff_seconds == 0.2
        assert policy.jitter_fraction == 0.25
        assert policy.shard_timeout == 1.5
        assert policy.deadline == 10.0

    def test_config_validates_resilience_fields(self):
        from repro.core import HerculesConfig
        from repro.errors import ConfigError

        for bad in (
            dict(max_worker_restarts=-1),
            dict(shard_retry_attempts=0),
            dict(shard_retry_jitter=2.0),
            dict(shard_timeout=0.0),
            dict(query_deadline=0.0),
            dict(shard_poll_seconds=0.0),
            dict(build_stall_timeout=-1.0),
            dict(build_join_timeout=0.0),
            dict(query_join_timeout=0.0),
        ):
            with pytest.raises(ConfigError):
                HerculesConfig(**bad)


class TestFileReadJitter:
    def test_read_retry_delay_is_deterministic_and_positive(self):
        from repro.storage.files import _retry_delay

        d1 = _retry_delay("/tmp/a.bin", 1)
        assert d1 == _retry_delay("/tmp/a.bin", 1)
        assert d1 > 0.0
        assert _retry_delay("/tmp/a.bin", 2) > d1
        assert _retry_delay("/tmp/b.bin", 1) != d1
