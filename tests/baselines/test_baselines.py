"""Tests for the baseline methods: exactness, structure, and behaviour.

The paper's central exactness invariant — "all algorithms return the
same, exact results" (Section 1) — is asserted across every method,
including Hercules, in TestCrossMethodAgreement.
"""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.baselines import (
    DSTreeConfig,
    DSTreeIndex,
    ParisConfig,
    ParisIndex,
    PScan,
    SerialScan,
    VAFileConfig,
    VAFileIndex,
)
from repro.errors import ConfigError
from repro.storage.dataset import Dataset

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(1200, 64, seed=120)


@pytest.fixture(scope="module")
def queries():
    return make_random_walks(6, 64, seed=121)


def brute_force(data, query, k):
    d = np.sqrt(
        ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(axis=1)
    )
    return np.sort(d)[:k]


class TestDSTree:
    @pytest.fixture(scope="class")
    def index(self, corpus):
        idx = DSTreeIndex.build(corpus, DSTreeConfig(leaf_capacity=50))
        yield idx
        idx.close()

    def test_exact_answers(self, index, corpus, queries):
        for q in queries:
            answer = index.knn(q, k=5)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 5), atol=1e-6
            )

    def test_self_query(self, index, corpus):
        answer = index.knn(corpus[7], k=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-5)

    def test_leaf_capacity_respected(self, index):
        for leaf in index.root.iter_leaves_inorder():
            assert leaf.size <= index.config.leaf_capacity

    def test_internal_synopses_maintained_during_build(self, index, corpus):
        """Unlike Hercules, DSTree's root box is complete right after build."""
        from repro.distance.lower_bounds import MU_MAX, MU_MIN
        from repro.summarization.eapca import segment_stats

        means, _ = segment_stats(corpus, index.root.segmentation)
        np.testing.assert_allclose(
            index.root.synopsis[:, MU_MIN], means.min(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            index.root.synopsis[:, MU_MAX], means.max(axis=0), atol=1e-6
        )

    def test_parallel_variant_is_exact(self, corpus, queries):
        idx = DSTreeIndex.build(
            corpus, DSTreeConfig(leaf_capacity=50, num_build_threads=3)
        )
        try:
            assert idx.num_series == corpus.shape[0]
            total = sum(l.size for l in idx.root.iter_leaves_inorder())
            assert total == corpus.shape[0]
            for q in queries[:3]:
                answer = idx.knn(q, k=3)
                np.testing.assert_allclose(
                    answer.distances, brute_force(corpus, q, 3), atol=1e-6
                )
        finally:
            idx.close()

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            DSTreeIndex.build(np.empty((0, 8), dtype=np.float32))


class TestParis:
    @pytest.fixture(scope="class")
    def index(self, corpus):
        return ParisIndex.build(
            corpus, ParisConfig(leaf_capacity=20, num_query_threads=2)
        )

    def test_exact_answers(self, index, corpus, queries):
        for q in queries:
            answer = index.knn(q, k=5)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 5), atol=1e-6
            )

    def test_single_thread_matches(self, corpus, queries):
        idx = ParisIndex.build(
            corpus, ParisConfig(leaf_capacity=20, num_query_threads=1)
        )
        ref = ParisIndex.build(
            corpus, ParisConfig(leaf_capacity=20, num_query_threads=3)
        )
        for q in queries[:3]:
            np.testing.assert_allclose(
                idx.knn(q, k=4).distances, ref.knn(q, k=4).distances, atol=1e-9
            )

    def test_words_match_dataset_order(self, index, corpus):
        from repro.summarization.paa import paa

        expected = index.sax_space.symbolize(paa(corpus, 16))
        np.testing.assert_array_equal(index.words, expected)

    def test_tree_partitions_all_series(self, index, corpus):
        seen = []
        for root in index._roots.values():
            stack = [root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    seen.extend(node.positions)
                else:
                    stack.extend((node.left, node.right))
        assert sorted(seen) == list(range(corpus.shape[0]))

    def test_sax_pruning_reported(self, index, queries):
        answer = index.knn(queries[0], k=1)
        assert answer.profile.sax_pruning is not None
        assert 0.0 <= answer.profile.sax_pruning <= 1.0

    def test_probe_falls_back_to_nearest_root(self, index, corpus):
        """A query whose cardinality-1 word has no subtree still seeds a
        finite BSF from the nearest existing root (and stays exact)."""
        rng = np.random.default_rng(7)
        hostile = rng.uniform(-30, 30, size=64).astype(np.float32)
        answer = index.knn(hostile, k=1)
        np.testing.assert_allclose(
            answer.distances, brute_force(corpus, hostile, 1), atol=1e-6
        )
        assert answer.profile.series_accessed >= 1  # probe happened


class TestVAFile:
    @pytest.fixture(scope="class")
    def index(self, corpus):
        return VAFileIndex.build(
            corpus, VAFileConfig(num_features=16, total_bits=64)
        )

    def test_exact_answers(self, index, corpus, queries):
        for q in queries:
            answer = index.knn(q, k=5)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 5), atol=1e-6
            )

    def test_cell_bounds_are_lower_bounds(self, index, corpus, queries):
        q = queries[0].astype(np.float64)
        bounds = index._cell_lower_bounds(index.basis.transform(q))
        true = np.sqrt(
            ((corpus.astype(np.float64) - q) ** 2).sum(axis=1)
        )
        assert np.all(bounds <= true + 1e-9)

    def test_pruning_is_effective_on_easy_queries(self, index, corpus):
        easy = corpus[3] + 0.01 * np.random.default_rng(0).standard_normal(64).astype(
            np.float32
        )
        answer = index.knn(easy, k=1)
        assert answer.profile.series_accessed < corpus.shape[0] / 2

    def test_bit_allocation_favors_high_variance_dimensions(self, corpus):
        from repro.baselines.vafile import _allocate_bits

        rng = np.random.default_rng(1)
        feats = np.column_stack(
            [rng.normal(0, 10.0, 500), rng.normal(0, 0.1, 500)]
        )
        bits = _allocate_bits(feats, 8)
        assert bits[0] > bits[1]
        assert bits.sum() == 8

    def test_rejects_more_features_than_length(self, corpus):
        with pytest.raises(ConfigError):
            VAFileIndex.build(corpus, VAFileConfig(num_features=100, total_bits=200))


class TestScans:
    @pytest.mark.parametrize("threads", [1, 3])
    def test_pscan_exact(self, corpus, queries, threads):
        scan = PScan(corpus, num_threads=threads, chunk_size=300)
        for q in queries:
            answer = scan.knn(q, k=5)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 5), atol=1e-6
            )

    def test_serial_scan_exact(self, corpus, queries):
        scan = SerialScan(corpus, chunk_size=500)
        for q in queries:
            answer = scan.knn(q, k=3)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 3), atol=1e-6
            )

    def test_scans_access_everything(self, corpus, queries):
        scan = SerialScan(corpus)
        answer = scan.knn(queries[0], k=1)
        assert answer.profile.series_accessed == corpus.shape[0]

    def test_early_abandoning_saves_point_comparisons(self, corpus):
        scan = SerialScan(corpus, chunk_size=200)
        answer = scan.knn(corpus[0], k=1)  # self-query: bsf hits 0 early
        assert answer.profile.distance_computations < corpus.shape[0]


class TestCrossMethodAgreement:
    """Every method returns identical exact distances (Section 1)."""

    def test_all_methods_agree(self, corpus, queries, tmp_path):
        hercules = HerculesIndex.build(
            corpus,
            HerculesConfig(
                leaf_capacity=50,
                num_build_threads=2,
                db_size=128,
                flush_threshold=1,
                num_query_threads=2,
                l_max=5,
                sax_segments=8,
            ),
            directory=tmp_path / "hercules",
        )
        methods = [
            hercules,
            DSTreeIndex.build(corpus, DSTreeConfig(leaf_capacity=50)),
            ParisIndex.build(corpus, ParisConfig(leaf_capacity=20)),
            VAFileIndex.build(corpus),
            PScan(corpus, num_threads=2),
            SerialScan(corpus),
        ]
        try:
            for q in queries:
                reference = brute_force(corpus, q, 10)
                for method in methods:
                    answer = method.knn(q, k=10)
                    np.testing.assert_allclose(
                        answer.distances,
                        reference,
                        atol=1e-6,
                        err_msg=f"{method.__class__.__name__} diverged",
                    )
        finally:
            for method in methods:
                method.close()

    def test_on_disk_dataset_agreement(self, tmp_path):
        data = make_random_walks(400, 32, seed=122)
        dataset = Dataset.write(tmp_path / "data.bin", data)
        query = make_random_walks(1, 32, seed=123)[0]
        reference = brute_force(data, query, 5)
        methods = [
            ParisIndex.build(dataset, ParisConfig(leaf_capacity=10)),
            VAFileIndex.build(dataset, VAFileConfig(num_features=8, total_bits=32)),
            PScan(dataset, num_threads=2, chunk_size=64),
        ]
        for method in methods:
            np.testing.assert_allclose(
                method.knn(query, k=5).distances, reference, atol=1e-6
            )
        dataset.close()


class TestVAFileSaxContender:
    """The fair-contender mode: VA+file over Hercules' signature screen."""

    @pytest.fixture(scope="class")
    def sax_index(self, corpus):
        return VAFileIndex.build(
            corpus,
            VAFileConfig(num_features=16, filter_kind="sax", sax_bits=6),
        )

    def test_exact_answers(self, sax_index, corpus, queries):
        for q in queries:
            answer = sax_index.knn(q, k=5)
            np.testing.assert_allclose(
                answer.distances, brute_force(corpus, q, 5), atol=1e-6
            )

    def test_agrees_with_dft_filter(self, sax_index, corpus, queries):
        dft = VAFileIndex.build(
            corpus, VAFileConfig(num_features=16, total_bits=64)
        )
        for q in queries:
            np.testing.assert_allclose(
                sax_index.knn(q, k=10).distances,
                dft.knn(q, k=10).distances,
                atol=1e-6,
            )

    def test_profile_reports_the_screen(self, sax_index, corpus, queries):
        answer = sax_index.knn(queries[0], k=5)
        assert answer.profile.path == "vafile-sax-skipseq"
        assert answer.profile.prefilter_screened == corpus.shape[0]
        assert (
            answer.profile.prefilter_survivors
            == answer.profile.candidate_series
        )
        assert answer.profile.prefilter_pruned_fraction is not None

    def test_dft_mode_path_unchanged(self, corpus, queries):
        dft = VAFileIndex.build(
            corpus, VAFileConfig(num_features=16, total_bits=64)
        )
        answer = dft.knn(queries[0], k=5)
        assert answer.profile.path == "vafile-skipseq"
        assert answer.profile.prefilter_screened == 0

    def test_save_open_roundtrip(self, sax_index, corpus, queries, tmp_path):
        sax_index.save(tmp_path)
        reopened = VAFileIndex.open(tmp_path, corpus)
        assert reopened.signatures is not None
        np.testing.assert_array_equal(
            reopened.signatures.reduced, sax_index.signatures.reduced
        )
        for q in queries:
            ref = sax_index.knn(q, k=3)
            answer = reopened.knn(q, k=3)
            np.testing.assert_array_equal(answer.distances, ref.distances)
            np.testing.assert_array_equal(answer.positions, ref.positions)

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="filter_kind"):
            VAFileConfig(filter_kind="wavelet")
        with pytest.raises(ConfigError, match="sax_bits"):
            VAFileConfig(filter_kind="sax", sax_bits=0)
        with pytest.raises(ConfigError, match="sax_bits"):
            VAFileConfig(filter_kind="sax", sax_bits=9)
