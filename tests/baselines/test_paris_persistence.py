"""Tests for ParIS+ save/open."""

import numpy as np
import pytest

from repro.baselines import ParisConfig, ParisIndex
from repro.errors import StorageError

from ..conftest import make_random_walks


class TestParisPersistence:
    def test_roundtrip_answers_identical(self, tmp_path):
        data = make_random_walks(400, 32, seed=320)
        index = ParisIndex.build(
            data, ParisConfig(leaf_capacity=15, num_query_threads=1)
        )
        index.save(tmp_path)
        queries = make_random_walks(4, 32, seed=321)
        expected = [index.knn(q, k=3) for q in queries]

        reopened = ParisIndex.open(tmp_path, data)
        assert reopened.num_series == 400
        assert reopened.config.leaf_capacity == 15
        np.testing.assert_array_equal(reopened.words, index.words)
        for q, ref in zip(queries, expected):
            answer = reopened.knn(q, k=3)
            np.testing.assert_allclose(answer.distances, ref.distances, atol=1e-9)
            np.testing.assert_array_equal(answer.positions, ref.positions)

    def test_tree_partition_survives(self, tmp_path):
        data = make_random_walks(300, 16, seed=322)
        ParisIndex.build(data, ParisConfig(leaf_capacity=10)).save(tmp_path)
        reopened = ParisIndex.open(tmp_path, data)
        seen = []
        for root in reopened._roots.values():
            stack = [root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    seen.extend(node.positions)
                else:
                    stack.extend((node.left, node.right))
        assert sorted(seen) == list(range(300))

    def test_open_missing(self, tmp_path):
        with pytest.raises(StorageError):
            ParisIndex.open(tmp_path, make_random_walks(10, 16, seed=323))

    def test_dataset_size_mismatch_rejected(self, tmp_path):
        data = make_random_walks(100, 16, seed=324)
        ParisIndex.build(data, ParisConfig(leaf_capacity=10)).save(tmp_path)
        with pytest.raises(StorageError):
            ParisIndex.open(tmp_path, data[:50])

    def test_corrupt_tree_rejected(self, tmp_path):
        data = make_random_walks(100, 16, seed=325)
        ParisIndex.build(data, ParisConfig(leaf_capacity=10)).save(tmp_path)
        blob = (tmp_path / "paris-tree.bin").read_bytes()
        (tmp_path / "paris-tree.bin").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StorageError):
            ParisIndex.open(tmp_path, data)
