"""Tests for DSTree* save/open."""

import numpy as np
import pytest

from repro.baselines import DSTreeConfig, DSTreeIndex
from repro.errors import StorageError

from ..conftest import make_random_walks


class TestDSTreePersistence:
    def test_roundtrip_answers_identical(self, tmp_path):
        data = make_random_walks(500, 32, seed=260)
        index = DSTreeIndex.build(
            data, DSTreeConfig(leaf_capacity=40), directory=tmp_path
        )
        index.save()
        queries = make_random_walks(4, 32, seed=261)
        expected = [index.knn(q, k=3) for q in queries]
        index.close()

        reopened = DSTreeIndex.open(tmp_path)
        try:
            assert reopened.num_series == 500
            assert reopened.num_leaves > 1
            for q, ref in zip(queries, expected):
                answer = reopened.knn(q, k=3)
                np.testing.assert_allclose(
                    answer.distances, ref.distances, atol=1e-9
                )
                np.testing.assert_array_equal(answer.positions, ref.positions)
        finally:
            reopened.close()

    def test_open_missing_tree(self, tmp_path):
        with pytest.raises(StorageError):
            DSTreeIndex.open(tmp_path)

    def test_config_survives_roundtrip(self, tmp_path):
        data = make_random_walks(200, 16, seed=262)
        index = DSTreeIndex.build(
            data,
            DSTreeConfig(leaf_capacity=30, initial_segments=2),
            directory=tmp_path,
        )
        index.save()
        index.close()
        reopened = DSTreeIndex.open(tmp_path)
        assert reopened.config.leaf_capacity == 30
        assert reopened.config.initial_segments == 2
        reopened.close()
