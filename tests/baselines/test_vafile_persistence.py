"""Tests for VA+file save/open."""

import numpy as np
import pytest

from repro.baselines import VAFileConfig, VAFileIndex
from repro.errors import StorageError

from ..conftest import make_random_walks


class TestVAFilePersistence:
    def test_roundtrip_answers_identical(self, tmp_path):
        data = make_random_walks(300, 32, seed=330)
        index = VAFileIndex.build(
            data, VAFileConfig(num_features=8, total_bits=32)
        )
        index.save(tmp_path)
        queries = make_random_walks(4, 32, seed=331)
        expected = [index.knn(q, k=3) for q in queries]

        reopened = VAFileIndex.open(tmp_path, data)
        assert reopened.config.num_features == 8
        np.testing.assert_array_equal(reopened.cells, index.cells)
        for d in range(len(index.edges)):
            np.testing.assert_array_equal(reopened.edges[d], index.edges[d])
        for q, ref in zip(queries, expected):
            answer = reopened.knn(q, k=3)
            np.testing.assert_allclose(answer.distances, ref.distances, atol=1e-9)

    def test_open_missing(self, tmp_path):
        with pytest.raises(StorageError):
            VAFileIndex.open(tmp_path, make_random_walks(10, 16, seed=332))

    def test_dataset_mismatch_rejected(self, tmp_path):
        data = make_random_walks(100, 16, seed=333)
        VAFileIndex.build(
            data, VAFileConfig(num_features=8, total_bits=16)
        ).save(tmp_path)
        with pytest.raises(StorageError):
            VAFileIndex.open(tmp_path, data[:40])

    def test_corrupt_metadata_rejected(self, tmp_path):
        data = make_random_walks(100, 16, seed=334)
        VAFileIndex.build(
            data, VAFileConfig(num_features=8, total_bits=16)
        ).save(tmp_path)
        (tmp_path / "vafile-meta.json").write_text("{broken")
        with pytest.raises(StorageError):
            VAFileIndex.open(tmp_path, data)
