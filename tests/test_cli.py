"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.storage.dataset import Dataset


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "data.bin"
    code = main(
        [
            "generate",
            "--kind",
            "synth",
            "--count",
            "400",
            "--length",
            "32",
            "--seed",
            "3",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_readable_dataset(self, dataset_file, capsys):
        with Dataset.open(dataset_file, 32) as ds:
            assert ds.num_series == 400
            batch = ds.read_batch(0, 10)
            np.testing.assert_allclose(batch.std(axis=1), 1.0, atol=1e-3)

    @pytest.mark.parametrize("kind, length", [("sald", 128), ("deep", 96)])
    def test_analog_default_lengths(self, tmp_path, kind, length):
        path = tmp_path / f"{kind}.bin"
        code = main(
            ["generate", "--kind", kind, "--count", "50", "--output", str(path)]
        )
        assert code == 0
        with Dataset.open(path, length) as ds:
            assert ds.num_series == 50


class TestBuildQueryInspect:
    def test_full_workflow(self, dataset_file, tmp_path, capsys):
        index_dir = tmp_path / "index"
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(index_dir),
                "--leaf-capacity",
                "50",
                "--threads",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built index over 400 series" in out
        assert (index_dir / "htree.bin").exists()

        # Query the index with the dataset itself (self-queries).
        code = main(
            [
                "query",
                "--index",
                str(index_dir),
                "--queries",
                str(dataset_file),
                "--k",
                "2",
                "--count",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query 0: d=[0.0000" in out
        assert "answered 3 queries" in out

        code = main(["inspect", "--index", str(index_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "leaves" in out
        assert "series length      32" in out

    def test_verbose_build_prints_phase_breakdown(
        self, dataset_file, tmp_path, capsys
    ):
        index_dir = tmp_path / "index"
        code = main(
            [
                "-v",
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(index_dir),
                "--leaf-capacity",
                "50",
                "--threads",
                "1",
                "--claim-size",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "series/s)" in out
        assert "build phase breakdown:" in out
        for phase in ("routing", "hbuffer stores", "splits", "flushes",
                      "other"):
            assert phase in out

    def test_per_row_build_matches_batched(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(tmp_path / "per-row"),
                "--leaf-capacity",
                "50",
                "--threads",
                "1",
                "--per-row",
            ]
        )
        assert code == 0
        per_row = capsys.readouterr().out
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(tmp_path / "batched"),
                "--leaf-capacity",
                "50",
                "--threads",
                "1",
            ]
        )
        assert code == 0
        batched = capsys.readouterr().out
        # Identical trees: same leaf/split/flush counts in the summary.
        assert per_row.splitlines()[0] == batched.splitlines()[0]

    def test_approximate_and_epsilon_flags(self, dataset_file, tmp_path, capsys):
        index_dir = tmp_path / "index"
        assert (
            main(
                [
                    "build",
                    "--dataset",
                    str(dataset_file),
                    "--length",
                    "32",
                    "--output",
                    str(index_dir),
                    "--threads",
                    "1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--index",
                    str(index_dir),
                    "--queries",
                    str(dataset_file),
                    "--count",
                    "1",
                    "--approximate",
                ]
            )
            == 0
        )
        assert "path=approximate" in capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    "--index",
                    str(index_dir),
                    "--queries",
                    str(dataset_file),
                    "--count",
                    "1",
                    "--epsilon",
                    "0.5",
                ]
            )
            == 0
        )

    def test_missing_index_reports_error(self, tmp_path, capsys):
        code = main(["inspect", "--index", str(tmp_path / "missing")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestVerifyIndex:
    @pytest.fixture
    def index_dir(self, dataset_file, tmp_path):
        index_dir = tmp_path / "index"
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(index_dir),
                "--threads",
                "1",
            ]
        )
        assert code == 0
        return index_dir

    def test_healthy_index_passes(self, index_dir, capsys):
        capsys.readouterr()
        code = main(["verify-index", str(index_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "MANIFEST.json" in out
        assert "is healthy" in out
        for artifact in ("lrd.bin", "lsd.bin", "htree.bin"):
            assert artifact in out

    def test_damaged_artifact_fails_and_is_named(self, index_dir, capsys):
        lrd = index_dir / "lrd.bin"
        blob = bytearray(lrd.read_bytes())
        blob[64] ^= 0xFF
        lrd.write_bytes(bytes(blob))
        capsys.readouterr()
        code = main(["verify-index", str(index_dir)])
        assert code == 1
        out = capsys.readouterr().out
        assert "lrd.bin" in out
        assert "DAMAGED" in out

    def test_damaged_manifest_fails(self, index_dir, capsys):
        manifest = index_dir / "MANIFEST.json"
        blob = bytearray(manifest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        manifest.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify-index", str(index_dir)]) == 1
        out = capsys.readouterr().out
        assert "MANIFEST.json" in out and "DAMAGED" in out

    def test_quick_level_skips_checksums(self, index_dir, capsys):
        lrd = index_dir / "lrd.bin"
        blob = bytearray(lrd.read_bytes())
        blob[64] ^= 0xFF
        lrd.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify-index", str(index_dir), "--level", "quick"]) == 0
        assert main(["verify-index", str(index_dir), "--level", "full"]) == 1

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["verify-index", str(tmp_path / "nope")]) == 1
        assert "not a directory" in capsys.readouterr().err


class TestGenerateWorkload:
    def test_writes_loadable_bundle(self, tmp_path, capsys):
        from repro.workloads.io import load_workload_bundle

        code = main(
            [
                "generate-workload",
                "--kind",
                "synth",
                "--count",
                "120",
                "--length",
                "16",
                "--queries",
                "4",
                "--output",
                str(tmp_path / "bundle"),
            ]
        )
        assert code == 0
        data, workloads, metadata = load_workload_bundle(tmp_path / "bundle")
        assert data.shape == (116, 16)  # 4 ood queries held out
        assert set(workloads) == {"1%", "2%", "5%", "10%", "ood"}
        assert metadata["kind"] == "synth"


class TestBench:
    def test_runs_one_figure_at_tiny_scale(self, capsys):
        code = main(
            [
                "bench",
                "--figure",
                "fig12a",
                "--size",
                "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 12a" in out
        assert "Hercules" in out

    def test_bench_all_runs_every_figure(self, capsys):
        code = main(
            [
                "bench",
                "--figure",
                "all",
                "--size",
                "200",
                "--num-queries",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("fig6", "fig7", "fig12b"):
            assert f"=== {figure} ===" in out

    def test_size_and_queries_overrides(self, capsys):
        code = main(
            [
                "bench",
                "--figure",
                "fig7",
                "--size",
                "400",
                "--num-queries",
                "2",
            ]
        )
        assert code == 0
        assert "PSCAN" in capsys.readouterr().out


class TestCompare:
    def test_prints_method_table(self, dataset_file, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--num-queries",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("Hercules", "DSTree*", "ParIS+", "VA+file", "PSCAN"):
            assert name in out


class TestTraceAndExplain:
    @pytest.fixture
    def index_dir(self, dataset_file, tmp_path):
        index_dir = tmp_path / "index"
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(index_dir),
                "--threads",
                "2",
            ]
        )
        assert code == 0
        return index_dir

    def test_build_trace_has_construction_spans(self, dataset_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "build-trace.json"
        code = main(
            [
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(tmp_path / "traced-index"),
                "--threads",
                "2",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        assert "trace with" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"build", "build.tree", "build.buffering", "build.write"} <= names

    def test_query_trace_has_phase_spans(self, index_dir, dataset_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "query-trace.json"
        code = main(
            [
                "query",
                "--index",
                str(index_dir),
                "--queries",
                str(dataset_file),
                "--count",
                "2",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"query", "query.phase1.approx", "query.phase2.candidates"} <= names

    def test_tracing_is_off_after_traced_command(self, index_dir, dataset_file, tmp_path):
        from repro import obs

        code = main(
            [
                "query",
                "--index",
                str(index_dir),
                "--queries",
                str(dataset_file),
                "--count",
                "1",
                "--trace",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 0
        assert obs.get_trace() is None

    def test_explain_reports_phases_and_summary(self, index_dir, dataset_file, capsys):
        code = main(
            [
                "explain",
                "--index",
                str(index_dir),
                "--queries",
                str(dataset_file),
                "--k",
                "2",
                "--count",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query 0: path=" in out
        assert "phase 1 approx" in out
        assert "EAPCA pruning" in out
        assert "random seeks" in out
        assert "workload summary (2 queries)" in out
        assert "access paths:" in out

    def test_verbose_flag_enables_info_logs(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "-v",
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(tmp_path / "verbose-index"),
                "--threads",
                "1",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "building tree over 400 series" in err

    def test_quiet_flag_suppresses_info_logs(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "-q",
                "build",
                "--dataset",
                str(dataset_file),
                "--length",
                "32",
                "--output",
                str(tmp_path / "quiet-index"),
                "--threads",
                "1",
            ]
        )
        assert code == 0
        assert "building tree" not in capsys.readouterr().err


class TestCacheFlag:
    @pytest.fixture
    def index_dir(self, dataset_file, tmp_path):
        index_dir = tmp_path / "index"
        code = main(
            [
                "build",
                "--dataset", str(dataset_file),
                "--length", "32",
                "--output", str(index_dir),
                "--threads", "1",
            ]
        )
        assert code == 0
        return index_dir

    def _query_lines(self, index_dir, dataset_file, capsys, *extra):
        code = main(
            [
                "query",
                "--index", str(index_dir),
                "--queries", str(dataset_file),
                "--k", "3",
                "--count", "4",
                *extra,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [
            line.rsplit(" (", 1)[0]  # drop the per-query wall-clock suffix
            for line in out.splitlines()
            if line.startswith("query ")
        ]
        return lines, out

    def test_cache_mb_reports_hit_rate(self, index_dir, dataset_file, capsys):
        _, out = self._query_lines(
            index_dir, dataset_file, capsys, "--cache-mb", "16"
        )
        assert "leaf cache:" in out
        assert "hit rate" in out

    def test_cache_mb_zero_is_silent_and_identical(
        self, index_dir, dataset_file, capsys
    ):
        cached, _ = self._query_lines(
            index_dir, dataset_file, capsys, "--cache-mb", "16"
        )
        plain, out = self._query_lines(index_dir, dataset_file, capsys)
        assert "leaf cache:" not in out
        # --cache-mb 0 (the default) changes nothing about the answers.
        assert cached == plain

    def test_explain_reports_abandoning_and_cache(
        self, index_dir, dataset_file, capsys
    ):
        code = main(
            [
                "explain",
                "--index", str(index_dir),
                "--queries", str(dataset_file),
                "--k", "2",
                "--count", "3",
                "--cache-mb", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "early abandoning" in out
        assert "points compared" in out
        assert "leaf cache" in out
        assert "abandoned fraction" in out
        assert "points:" in out

    def test_compare_table_has_abandoned_and_cache_columns(
        self, dataset_file, capsys
    ):
        code = main(
            [
                "compare",
                "--dataset", str(dataset_file),
                "--length", "32",
                "--num-queries", "2",
                "--cache-mb", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "abandoned" in out
        assert "cache_hit" in out
        # Hercules ran with the leaf cache; scans have no cache ("-").
        hercules_row = next(
            line for line in out.splitlines() if line.lstrip().startswith("Hercules")
        )
        assert "%" in hercules_row


class TestShardedCLI:
    @pytest.fixture
    def sharded_dir(self, dataset_file, tmp_path, capsys):
        index_dir = tmp_path / "sharded"
        code = main(
            [
                "build",
                "--dataset", str(dataset_file),
                "--length", "32",
                "--output", str(index_dir),
                "--leaf-capacity", "50",
                "--threads", "1",
                "--shards", "2",
                "--shard-workers", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        return index_dir

    def test_query_matches_unsharded_build(
        self, dataset_file, sharded_dir, tmp_path, capsys
    ):
        plain_dir = tmp_path / "plain"
        code = main(
            [
                "build",
                "--dataset", str(dataset_file),
                "--length", "32",
                "--output", str(plain_dir),
                "--leaf-capacity", "50",
                "--threads", "1",
                "--shards", "1",
            ]
        )
        assert code == 0
        capsys.readouterr()
        query_args = ["--queries", str(dataset_file), "--k", "3", "--count", "2"]
        assert main(["query", "--index", str(plain_dir)] + query_args) == 0
        plain_out = capsys.readouterr().out
        assert main(["query", "--index", str(sharded_dir)] + query_args) == 0
        sharded_out = capsys.readouterr().out
        # Distances printed per query must agree exactly across layouts
        # (positions are storage-order and paths differ by design).
        def distances(out):
            return [
                line.split("] pos")[0]
                for line in out.splitlines()
                if "d=[" in line
            ]

        assert distances(plain_out) == distances(sharded_out)
        assert len(distances(plain_out)) == 2

    def test_query_with_worker_pool(self, dataset_file, sharded_dir, capsys):
        code = main(
            [
                "query",
                "--index", str(sharded_dir),
                "--queries", str(dataset_file),
                "--k", "2",
                "--count", "2",
                "--shard-workers", "2",
            ]
        )
        assert code == 0
        assert "answered 2 queries" in capsys.readouterr().out

    def test_verify_index_reports_per_shard_rows(self, sharded_dir, capsys):
        code = main(["verify-index", str(sharded_dir), "--level", "full"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SHARDS.json" in out
        for shard in ("shard-0000", "shard-0001"):
            assert f"{shard}/MANIFEST.json" in out
            assert f"{shard}/lrd.bin" in out
        assert "is healthy (full verification, sharded)" in out

    def test_verify_index_names_damaged_shard(self, sharded_dir, capsys):
        lrd = sharded_dir / "shard-0001" / "lrd.bin"
        blob = bytearray(lrd.read_bytes())
        blob[64] ^= 0xFF
        lrd.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify-index", str(sharded_dir), "--level", "full"]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "shard-0001" in out

    def test_explain_prints_per_shard_breakdown(
        self, sharded_dir, dataset_file, capsys
    ):
        code = main(
            [
                "explain",
                "--index", str(sharded_dir),
                "--queries", str(dataset_file),
                "--k", "2",
                "--count", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "path=sharded" in out
        assert "shard 0: path=" in out
        assert "shard 1: path=" in out

    def test_inspect_shows_shard_summary(self, sharded_dir, capsys):
        code = main(["inspect", "--index", str(sharded_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded index" in out
        assert "shards             2" in out
        assert "row base" in out

    def test_cache_flag_prints_per_shard_lines(
        self, sharded_dir, dataset_file, capsys
    ):
        code = main(
            [
                "query",
                "--index", str(sharded_dir),
                "--queries", str(dataset_file),
                "--count", "2",
                "--cache-mb", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "leaf cache shard 0:" in out
        assert "leaf cache shard 1:" in out
