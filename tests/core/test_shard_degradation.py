"""Query retry + graceful degradation semantics (in-process thread path).

Shard failures are simulated by patching individual shards' ``knn`` —
the degradation *policy* (retry accounting, partial-results gating,
coverage arithmetic, metrics visibility) is independent of how a shard
fails; the cross-process chaos tests exercise real storage faults.
"""

import time

import numpy as np
import pytest

from repro.core import HerculesConfig, ShardedIndex, record_sharded_profile
from repro.errors import ShardError, ShardTimeoutError, StorageError
from repro.obs import MetricsRegistry

from ..conftest import make_random_walks

N_ROWS = 240
LENGTH = 32
N_SHARDS = 3


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        num_shards=N_SHARDS,
        shard_workers=0,
        shard_retry_attempts=1,
        shard_retry_backoff=0.001,
    )
    base.update(overrides)
    return HerculesConfig(**base)


@pytest.fixture(scope="module")
def data():
    return make_random_walks(N_ROWS, LENGTH, seed=11)


@pytest.fixture(scope="module")
def query(data):
    rng = np.random.default_rng(5)
    return (data[7] + 0.05 * rng.standard_normal(LENGTH)).astype(np.float32)


@pytest.fixture()
def index(data, tmp_path):
    idx = ShardedIndex.build(data, _config(), directory=tmp_path / "idx")
    yield idx
    idx.close()


def _fail_shard(index, shard_id, exc=None):
    """Make one shard raise on every search attempt."""
    exc = exc if exc is not None else StorageError("simulated shard fault")

    def raise_fault(*args, **kwargs):
        raise exc

    index.shards[shard_id].knn = raise_fault
    index.shards[shard_id].knn_approx = raise_fault


def _shard_rows(index, shard_id):
    record = index.manifest.shards[shard_id]
    return record.row_base, record.row_base + record.num_series


def brute_force(data, query, k, exclude=()):
    """Exact sorted top-k distances outside the excluded row ranges.

    Answer *positions* are physical LRDFile positions (shard ``row_base``
    + in-shard layout order), not input row indices, so correctness is
    asserted on distances; each shard holds a contiguous input row range,
    which is what ``exclude`` masks.
    """
    d = np.sqrt(
        ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(axis=1)
    )
    for start, stop in exclude:
        d[start:stop] = np.inf
    return np.sort(d)[:k]


class TestExactModeRefusesSilentDegradation:
    def test_failed_shard_raises_shard_error_naming_it(self, index, query):
        _fail_shard(index, 1)
        with pytest.raises(ShardError, match=r"shard\(s\) \[1\]"):
            index.knn(query, k=5)

    def test_error_suggests_partial_results(self, index, query):
        _fail_shard(index, 2)
        with pytest.raises(ShardError, match="partial_results"):
            index.knn(query, k=5)

    def test_config_partial_results_field_also_gates(self, index, query):
        _fail_shard(index, 0)
        config = index.config.with_options(partial_results=True)
        answer = index.knn(query, k=5, config=config)
        assert answer.degraded

    def test_bad_arguments_are_not_degradation(self, index, query):
        # A non-storage fault propagates immediately, never retried
        # or dropped — it is a caller bug, not a shard failure.
        _fail_shard(index, 1, exc=ValueError("bad query"))
        with pytest.raises(ValueError, match="bad query"):
            index.knn(query, k=5, partial_results=True)


class TestPartialResults:
    def test_degraded_answer_flags_and_coverage(self, index, query, data):
        _fail_shard(index, 1)
        answer = index.knn(query, k=5, partial_results=True)
        assert answer.degraded
        start, stop = _shard_rows(index, 1)
        expected_coverage = (N_ROWS - (stop - start)) / N_ROWS
        assert answer.coverage == pytest.approx(expected_coverage)
        assert [sid for sid, _ in answer.shard_errors] == [1]
        assert "simulated shard fault" in answer.shard_errors[0][1]

    def test_degraded_answer_is_exact_over_surviving_rows(
        self, index, query, data
    ):
        _fail_shard(index, 1)
        k = 7
        answer = index.knn(query, k=k, partial_results=True)
        expected_d = brute_force(
            data, query, k, exclude=[_shard_rows(index, 1)]
        )
        np.testing.assert_allclose(
            answer.distances, expected_d, rtol=1e-5, atol=1e-5
        )
        # No reported position may fall inside the dropped shard's
        # global position range, and each must hold the series whose
        # distance was reported.
        start, stop = _shard_rows(index, 1)
        for position, distance in zip(answer.positions, answer.distances):
            assert not start <= position < stop
            series = index.get_series(int(position))
            actual = np.sqrt(
                ((series.astype(np.float64) - query) ** 2).sum()
            )
            assert actual == pytest.approx(distance, rel=1e-5)

    def test_degraded_equals_fault_free_restricted_to_survivors(
        self, index, query, data
    ):
        k = 7
        fault_free = index.knn(query, k=N_ROWS // 2)
        _fail_shard(index, 2)
        degraded = index.knn(query, k=k, partial_results=True)
        start, stop = _shard_rows(index, 2)
        keep = (fault_free.positions < start) | (fault_free.positions >= stop)
        restricted = fault_free.positions[keep][:k]
        np.testing.assert_array_equal(degraded.positions, restricted)

    def test_healthy_query_is_not_degraded(self, index, query):
        answer = index.knn(query, k=5, partial_results=True)
        assert not answer.degraded
        assert answer.coverage == 1.0
        assert answer.shard_errors == ()
        assert answer.retries == 0

    def test_every_shard_failing_still_raises(self, index, query):
        for shard_id in range(N_SHARDS):
            _fail_shard(index, shard_id)
        with pytest.raises(ShardError, match="every shard failed"):
            index.knn(query, k=5, partial_results=True)

    def test_approx_mode_degrades_too(self, index, query):
        _fail_shard(index, 0)
        index.config = index.config.with_options(partial_results=True)
        answer = index.knn_approx(query, k=3)
        assert answer.degraded
        assert answer.coverage < 1.0


class TestRetries:
    def test_transient_fault_recovers_without_degradation(
        self, index, query, data
    ):
        fault_free = index.knn(query, k=5)
        shard = index.shards[1]
        real_knn = shard.knn
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StorageError("transient blip")
            return real_knn(*args, **kwargs)

        shard.knn = flaky
        config = index.config.with_options(shard_retry_attempts=3)
        answer = index.knn(query, k=5, config=config)
        assert not answer.degraded
        assert answer.retries == 1
        assert calls["n"] == 2
        np.testing.assert_array_equal(answer.positions, fault_free.positions)
        np.testing.assert_allclose(
            answer.distances, fault_free.distances, rtol=1e-6
        )

    def test_retries_exhaust_then_degrade(self, index, query):
        _fail_shard(index, 1)
        config = index.config.with_options(shard_retry_attempts=3)
        answer = index.knn(query, k=5, config=config, partial_results=True)
        assert answer.degraded
        assert answer.retries == 2  # attempts 1→2 and 2→3


class TestDeadline:
    def test_slow_shard_is_abandoned_at_the_deadline(self, index, query):
        def glacial(*args, **kwargs):
            time.sleep(5.0)
            raise AssertionError("should have been abandoned")

        index.shards[2].knn = glacial
        config = index.config.with_options(query_deadline=0.3)
        started = time.monotonic()
        answer = index.knn(
            query, k=5, config=config, partial_results=True
        )
        assert time.monotonic() - started < 4.0
        assert answer.degraded
        assert [sid for sid, _ in answer.shard_errors] == [2]
        assert "deadline" in answer.shard_errors[0][1]

    def test_timeout_without_partial_raises_timeout_error(self, index, query):
        def glacial(*args, **kwargs):
            time.sleep(5.0)
            raise AssertionError("should have been abandoned")

        index.shards[0].knn = glacial
        config = index.config.with_options(query_deadline=0.3)
        with pytest.raises(ShardTimeoutError):
            index.knn(query, k=5, config=config)


class TestMetricsVisibility:
    def test_degradation_reaches_the_registry(self, index, query):
        _fail_shard(index, 1)
        registry = MetricsRegistry()
        answer = index.knn(query, k=5, partial_results=True)
        record_sharded_profile(registry, answer, num_series=index.num_series)
        summary = registry.summary()
        assert summary["counters"]["query.degraded"] == 1
        assert summary["counters"]["shard.dropped"] == 1
        coverage = summary["histograms"]["query.coverage"]
        assert coverage["count"] == 1
        assert coverage["max"] < 1.0

    def test_retries_reach_the_registry(self, index, query):
        shard = index.shards[0]
        real_knn = shard.knn
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StorageError("transient blip")
            return real_knn(*args, **kwargs)

        shard.knn = flaky
        config = index.config.with_options(shard_retry_attempts=2)
        registry = MetricsRegistry()
        answer = index.knn(query, k=5, config=config)
        record_sharded_profile(registry, answer, num_series=index.num_series)
        summary = registry.summary()
        assert summary["counters"]["shard.retries"] == 1
        assert "query.degraded" not in summary["counters"]

    def test_healthy_query_records_full_coverage(self, index, query):
        registry = MetricsRegistry()
        answer = index.knn(query, k=5)
        record_sharded_profile(registry, answer, num_series=index.num_series)
        summary = registry.summary()
        coverage = summary["histograms"]["query.coverage"]
        assert coverage["min"] == 1.0

    def test_workload_summary_mentions_resilience(self, index, query):
        from repro.obs import explain_workload_summary

        _fail_shard(index, 2)
        registry = MetricsRegistry()
        answer = index.knn(query, k=5, partial_results=True)
        record_sharded_profile(registry, answer, num_series=index.num_series)
        text = explain_workload_summary(registry)
        assert "resilience:" in text
        assert "1 degraded answers" in text
