"""Cross-process chaos matrix: faults shipped into real shard workers.

Every scenario asserts one of the two acceptable outcomes — *full
recovery with value-identical answers* or a *correctly-flagged degraded
answer* — never a silently wrong one.  Fault plans travel into worker
processes through the :data:`repro.storage.faults.PLANS_ENV` channel;
``fence`` latches make kill faults fire exactly once machine-wide so the
supervisor's retry succeeds.
"""

import logging
import os

import numpy as np
import pytest

from repro.core import HerculesConfig, ShardedIndex
from repro.errors import ShardError
from repro.storage import faults

from ..conftest import make_random_walks

N_ROWS = 180
LENGTH = 16
N_SHARDS = 2


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        num_shards=N_SHARDS,
        shard_workers=2,
        shard_poll_seconds=0.05,
        shard_retry_attempts=2,
        shard_retry_backoff=0.001,
        build_join_timeout=5.0,
        query_join_timeout=5.0,
    )
    base.update(overrides)
    return HerculesConfig(**base)


@pytest.fixture(scope="module")
def data():
    return make_random_walks(N_ROWS, LENGTH, seed=21)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(9)
    noise = 0.05 * rng.standard_normal((3, LENGTH))
    return (data[:3] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def fault_free(data, queries, tmp_path_factory):
    """The reference build + answers no chaos scenario may contradict."""
    directory = tmp_path_factory.mktemp("reference") / "idx"
    index = ShardedIndex.build(data, _config(), directory=directory)
    answers = [index.knn(q, k=5) for q in queries]
    index.close()
    return directory, answers


def _assert_identical_answers(actual, expected):
    np.testing.assert_array_equal(actual.positions, expected.positions)
    np.testing.assert_allclose(
        actual.distances, expected.distances, rtol=1e-6, atol=1e-6
    )


class TestBuildChaos:
    def test_killed_worker_recovers_to_identical_tree(
        self, data, queries, fault_free, tmp_path
    ):
        """An OOM-shaped kill mid-build is absorbed: the supervisor wipes
        and requeues the dead worker's shard, and the finished index is
        value-identical to the fault-free one."""
        _, expected_answers = fault_free
        fence = tmp_path / "kill-once"
        plan = faults.FaultPlan(
            op="write", at=3, mode="kill", fence=str(fence)
        )
        with faults.ship_plans({0: plan}):
            index = ShardedIndex.build(
                data,
                _config(max_worker_restarts=2),
                directory=tmp_path / "idx",
            )
        assert fence.exists(), "the kill plan never fired"
        assert index.build_report.worker_restarts >= 1
        assert index.build_report.requeued_tasks >= 1
        for query, expected in zip(queries, expected_answers):
            _assert_identical_answers(index.knn(query, k=5), expected)
        index.close()

    def test_kill_without_restart_budget_fails_loudly(self, data, tmp_path):
        # No fence: the kill re-fires in every worker incarnation, so
        # with a zero restart budget every worker dies and the
        # supervisor must give up loudly.
        plan = faults.FaultPlan(op="write", at=3, mode="kill")
        with faults.ship_plans({"*": plan}):
            with pytest.raises(ShardError):
                ShardedIndex.build(
                    data,
                    _config(max_worker_restarts=0),
                    directory=tmp_path / "idx",
                )

    def test_transient_write_faults_are_absorbed_in_workers(
        self, data, queries, fault_free, tmp_path
    ):
        """A shard whose build crashes once (in-worker error reply) is
        retried from clean ground and ends value-identical."""
        _, expected_answers = fault_free
        fence = tmp_path / "crash-once"
        plan = faults.FaultPlan(
            op="write", at=5, mode="crash", fence=str(fence)
        )
        with faults.ship_plans({1: plan}):
            index = ShardedIndex.build(
                data, _config(), directory=tmp_path / "idx"
            )
        assert fence.exists()
        assert index.build_report.task_retries >= 1
        for query, expected in zip(queries, expected_answers):
            _assert_identical_answers(index.knn(query, k=5), expected)
        index.close()


class TestQueryChaos:
    def test_transient_reads_during_worker_life_recover_identically(
        self, queries, fault_free
    ):
        """Flaky reads inside a query worker are retried by the file
        layer; answers stay value-identical and undegraded."""
        directory, expected_answers = fault_free
        plan = faults.FaultPlan(op="read", at=1, mode="transient", failures=2)
        with faults.ship_plans({"*": plan}):
            index = ShardedIndex.open(directory, workers=2)
        try:
            for query, expected in zip(queries, expected_answers):
                answer = index.knn(query, k=5)
                assert not answer.degraded
                _assert_identical_answers(answer, expected)
        finally:
            index.close()

    def test_dead_query_worker_is_restarted_transparently(
        self, queries, fault_free
    ):
        directory, expected_answers = fault_free
        index = ShardedIndex.open(directory, workers=2)
        try:
            pool = index._pool
            pool._procs[0].kill()
            pool._procs[0].join(timeout=5.0)
            answer = index.knn(queries[0], k=5)
            assert not answer.degraded
            assert pool.worker_restarts == 1
            _assert_identical_answers(answer, expected_answers[0])
        finally:
            index.close()

    def test_failed_shard_degrades_pool_answers_with_coverage(
        self, data, queries, tmp_path
    ):
        """Corrupting one shard's data file under a live pool degrades
        (under --partial-results) with coverage equal to the surviving
        row fraction, and the surviving results are exact."""
        directory = tmp_path / "idx"
        index = ShardedIndex.build(data, _config(), directory=directory)
        index.close()
        index = ShardedIndex.open(directory, workers=2)
        try:
            reference = [index.knn(q, k=5) for q in queries]
            # Truncate shard 1's raw-data file behind the running pool.
            victim = directory / "shard-0001" / "lrd.bin"
            os.truncate(victim, 64)
            record = index.manifest.shards[1]
            start = record.row_base
            stop = record.row_base + record.num_series
            for query, expected in zip(queries, reference):
                answer = index.knn(query, k=5, partial_results=True)
                assert answer.degraded
                assert answer.coverage == pytest.approx(
                    (N_ROWS - record.num_series) / N_ROWS
                )
                assert [sid for sid, _ in answer.shard_errors] == [1]
                # Exactly the fault-free results restricted to survivors.
                keep = (expected.positions < start) | (
                    expected.positions >= stop
                )
                kept = expected.positions[keep]
                np.testing.assert_array_equal(
                    answer.positions[: len(kept)], kept
                )
            # Exact mode without --partial-results refuses, naming it.
            with pytest.raises(ShardError, match=r"shard\(s\) \[1\]"):
                index.knn(queries[0], k=5)
        finally:
            index.close()


@pytest.fixture()
def restore_repro_logging():
    """Undo `main()`'s configure_logging: it binds a handler to the
    captured stderr and stops propagation, which would break caplog
    (and close-stream logging) in every later test."""
    logger = logging.getLogger("repro")
    handlers = list(logger.handlers)
    propagate = logger.propagate
    level = logger.level
    yield
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    for handler in handlers:
        logger.addHandler(handler)
    logger.propagate = propagate
    logger.setLevel(level)


class TestVerifyIndexDegradedCoverage:
    def test_verify_index_reports_partial_coverage(
        self, data, tmp_path, capsys, restore_repro_logging
    ):
        from repro.cli import main

        directory = tmp_path / "idx"
        index = ShardedIndex.build(
            data, _config(shard_workers=0), directory=directory
        )
        index.close()
        os.truncate(directory / "shard-0001" / "lrd.bin", 64)
        rc = main(["verify-index", str(directory)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "a --partial-results query would cover" in out
        assert "(1/2 shards healthy)" in out
