"""Tests for the split-policy ablation switches (Section 3.2 claims)."""

import numpy as np

from repro import HerculesConfig, HerculesIndex
from repro.core.split import choose_split
from repro.summarization.eapca import Segmentation

from ..conftest import make_random_walks


class TestChooseSplitFlags:
    def test_no_vertical_keeps_segmentation(self):
        data = make_random_walks(60, 32, seed=280)
        seg = Segmentation.uniform(32, 4)
        decision = choose_split(seg, data, allow_vertical=False)
        assert decision is not None
        assert not decision.policy.vertical
        assert decision.policy.child_segmentation == seg

    def test_no_std_routes_on_mean_only(self):
        rng = np.random.default_rng(281)
        calm = rng.normal(0.0, 0.05, size=(15, 16))
        wild = rng.normal(0.0, 3.0, size=(15, 16))
        data = np.concatenate([calm, wild]).astype(np.float32)
        decision = choose_split(
            Segmentation([16]), data, allow_std=False
        )
        # Means are all ~0: with std routing off and one segment, only a
        # weak mean split (if any) is available.
        if decision is not None:
            assert not decision.policy.use_std

    def test_flags_reduce_candidates_but_preserve_validity(self):
        data = make_random_walks(80, 32, seed=282)
        seg = Segmentation.uniform(32, 4)
        for kwargs in (
            {"allow_vertical": False},
            {"allow_std": False},
            {"allow_vertical": False, "allow_std": False},
        ):
            decision = choose_split(seg, data, **kwargs)
            assert decision is not None
            n_left = int(decision.left_mask.sum())
            assert 0 < n_left < 80


class TestIndexLevelAblation:
    def test_h_only_tree_has_no_vertical_splits(self, tmp_path):
        data = make_random_walks(600, 32, seed=283)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            allow_vertical_splits=False,
            initial_segments=4,
            sax_segments=8,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "h")
        from repro.core.stats import tree_statistics

        stats = tree_statistics(index.root)
        assert stats.vertical_splits == 0
        assert stats.max_segments == 4  # never refined vertically
        # Still exact.
        query = make_random_walks(1, 32, seed=284)[0]
        d = np.sqrt(
            ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(1)
        )
        np.testing.assert_allclose(
            index.knn(query, k=3).distances, np.sort(d)[:3], atol=1e-5
        )
        index.close()

    def test_mean_only_tree_has_no_std_routing(self, tmp_path):
        data = make_random_walks(600, 32, seed=285)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            allow_std_routing=False,
            sax_segments=8,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "m")
        from repro.core.stats import tree_statistics

        stats = tree_statistics(index.root)
        assert stats.std_routed_splits == 0
        index.close()

    def test_full_policy_prunes_at_least_as_well(self, tmp_path):
        """Both split dimensions help (the paper's §3.2 argument): the
        restricted trees should not access *less* data on average."""
        from repro.workloads.generators import make_noise_queries

        data = make_random_walks(1500, 64, seed=286)
        queries = make_noise_queries(data, 10, 0.05, seed=287)

        def mean_accessed(**flags):
            config = HerculesConfig(
                leaf_capacity=60,
                num_build_threads=1,
                flush_threshold=1,
                num_query_threads=1,
                l_max=3,
                sax_segments=8,
                **flags,
            )
            index = HerculesIndex.build(data, config)
            accessed = [
                index.knn(q, k=1).profile.series_accessed for q in queries
            ]
            index.close()
            return float(np.mean(accessed))

        full = mean_accessed()
        h_only = mean_accessed(allow_vertical_splits=False)
        # Heuristic claim, so allow slack — but H-only must not beat the
        # full policy by a wide margin.
        assert full <= h_only * 1.5
