"""Edge-case tests for buffer containers and segmentation helpers."""

import numpy as np
import pytest

from repro.core.buffers import BufferHalf, HBuffer
from repro.summarization.eapca import Segmentation


class TestBufferHalfEdges:
    def test_fill_larger_than_capacity_fails_loudly(self):
        half = BufferHalf(max_size=4, series_length=2)
        with pytest.raises(ValueError):
            half.fill(np.zeros((5, 2), dtype=np.float32))

    def test_fill_empty_batch(self):
        half = BufferHalf(max_size=4, series_length=2)
        half.fill(np.zeros((0, 2), dtype=np.float32))
        assert half.size == 0

    def test_refill_overwrites_size(self):
        half = BufferHalf(max_size=4, series_length=2)
        half.fill(np.ones((3, 2), dtype=np.float32))
        half.fill(np.zeros((1, 2), dtype=np.float32))
        assert half.size == 1


class TestHBufferEdges:
    def test_single_worker_gets_everything(self):
        buf = HBuffer(capacity=7, series_length=2, num_workers=1)
        assert buf.region_capacity(0) == 7

    def test_uneven_split_front_loads(self):
        buf = HBuffer(capacity=7, series_length=2, num_workers=3)
        sizes = [buf.region_capacity(w) for w in range(3)]
        assert sizes == [3, 2, 2]

    def test_get_rows_empty(self):
        buf = HBuffer(capacity=4, series_length=2, num_workers=1)
        assert buf.get_rows([]).shape == (0, 2)

    def test_store_rejects_after_reset_cycle_overflow(self):
        from repro.errors import ConfigError

        buf = HBuffer(capacity=2, series_length=2, num_workers=1)
        buf.store(0, np.zeros(2, dtype=np.float32))
        buf.store(0, np.zeros(2, dtype=np.float32))
        buf.reset_regions()
        buf.store(0, np.ones(2, dtype=np.float32))
        buf.store(0, np.ones(2, dtype=np.float32))
        with pytest.raises(ConfigError):
            buf.store(0, np.ones(2, dtype=np.float32))


class TestSegmentationEdges:
    def test_uniform_one_point_segments(self):
        seg = Segmentation.uniform(4, 4)
        assert seg.ends == (1, 2, 3, 4)
        with pytest.raises(ValueError):
            seg.split_vertically(0)  # single-point segments cannot split

    def test_lengths_float_dtype(self):
        seg = Segmentation([3, 10])
        lengths = seg.lengths
        assert lengths.dtype == np.float64
        np.testing.assert_array_equal(lengths, [3.0, 7.0])

    def test_repr_and_len(self):
        seg = Segmentation([2, 4])
        assert "2, 4" in repr(seg) or "[2, 4]" in repr(seg)
        assert len(seg) == 2
