"""Parity gates for the batched multi-query engine: answers never change.

``knn_batch`` must be value-identical, per query, to the serial
``knn`` loop it replaces — distances AND positions, bit for bit —
across every execution mode: exact and ε-approximate search, the
signature pre-filter on and off, plain and sharded indexes (thread and
process-pool scatter), and degenerate batches (singletons, duplicated
queries, identical-query batches).

Positions are LRD file positions, so every comparison queries the same
materialized index with only the execution strategy changing.
"""

import numpy as np
import pytest

from repro.core import (
    BatchAnswer,
    BatchStats,
    HerculesConfig,
    HerculesIndex,
    ShardedIndex,
)

from ..conftest import make_random_walks

_LENGTH = 64
_NUM_SERIES = 500


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        prefilter=True,
        prefilter_bits=5,
    )
    base.update(overrides)
    return HerculesConfig(**base)


def _make_queries(data, count, seed=3):
    """A mix of noisy copies, hard randoms, and exact duplicates."""
    rng = np.random.default_rng(seed)
    noisy = data[:count] + 0.3 * rng.standard_normal((count, _LENGTH))
    hard = rng.standard_normal((max(count // 3, 1), _LENGTH))
    copies = data[100 : 100 + max(count // 3, 1)]
    return np.vstack([noisy, hard, copies])[:count].astype(np.float32)


@pytest.fixture(scope="module")
def data():
    return make_random_walks(_NUM_SERIES, _LENGTH, seed=17)


@pytest.fixture(scope="module")
def queries(data):
    return _make_queries(data, 64)


@pytest.fixture(scope="module")
def index(data, tmp_path_factory):
    directory = tmp_path_factory.mktemp("batch-parity") / "index"
    built = HerculesIndex.build(data, _config(), directory=directory)
    yield built
    built.close()


def _assert_batch_matches_serial(index, queries, k, config=None):
    batch = index.knn_batch(queries, k=k, config=config)
    assert len(batch) == queries.shape[0]
    for qi, answer in enumerate(batch):
        serial = index.knn(queries[qi], k=k, config=config)
        np.testing.assert_array_equal(serial.distances, answer.distances)
        np.testing.assert_array_equal(serial.positions, answer.positions)
    return batch


class TestPlainExactParity:
    @pytest.mark.parametrize("num_queries", [1, 2, 64])
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_bit_for_bit(self, index, queries, num_queries, k):
        _assert_batch_matches_serial(index, queries[:num_queries], k)

    @pytest.mark.parametrize("k", [1, 10])
    def test_prefilter_off(self, index, queries, k):
        config = index.config.with_options(prefilter=False)
        batch = _assert_batch_matches_serial(
            index, queries[:16], k, config=config
        )
        for answer in batch:
            assert answer.profile.prefilter_screened == 0

    def test_batch_path_matches_serial_path(self, index, queries):
        """The access-path decision itself must replicate serial."""
        batch = index.knn_batch(queries[:16], k=5)
        for qi, answer in enumerate(batch):
            serial = index.knn(queries[qi], k=5)
            assert answer.profile.path == serial.profile.path


class TestEpsilonParity:
    """ε > 0 pruning depends on the BSF at each check: the batch engine
    must replicate the serial check cadence operation for operation."""

    @pytest.mark.parametrize("prefilter", [True, False])
    @pytest.mark.parametrize("k", [1, 10])
    def test_bit_for_bit(self, index, queries, prefilter, k):
        config = index.config.with_options(
            epsilon=0.15, prefilter=prefilter
        )
        _assert_batch_matches_serial(index, queries[:16], k, config=config)

    def test_large_epsilon(self, index, queries):
        config = index.config.with_options(epsilon=1.0)
        _assert_batch_matches_serial(index, queries[:8], k=5, config=config)


class TestDegenerateBatches:
    def test_singleton_batch(self, index, queries):
        _assert_batch_matches_serial(index, queries[:1], k=5)

    def test_duplicate_queries(self, index, queries):
        batch_queries = np.vstack([queries[:4], queries[:4], queries[:4]])
        _assert_batch_matches_serial(index, batch_queries, k=5)

    def test_identical_query_batch(self, index, queries):
        batch_queries = np.repeat(queries[:1], 8, axis=0)
        batch = _assert_batch_matches_serial(index, batch_queries, k=5)
        first = batch[0]
        for answer in batch:
            np.testing.assert_array_equal(first.distances, answer.distances)
            np.testing.assert_array_equal(first.positions, answer.positions)

    def test_indexed_series_as_queries(self, index, data):
        """Zero-distance self matches survive batching."""
        batch = _assert_batch_matches_serial(
            index, data[200:208].astype(np.float32), k=1
        )
        for answer in batch:
            assert answer.distances[0] == 0.0

    def test_empty_batch(self, index):
        batch = index.knn_batch(np.empty((0, _LENGTH), dtype=np.float32))
        assert len(batch) == 0
        assert isinstance(batch, BatchAnswer)

    def test_rejects_1d_input(self, index, queries):
        with pytest.raises(ValueError, match="2-D|matrix"):
            index.knn_batch(queries[0])


class TestBatchSurface:
    def test_list_compatibility(self, index, queries):
        batch = index.knn_batch(queries[:4], k=3)
        assert len(batch) == 4
        assert list(iter(batch))[2] is batch[2]

    def test_stats_accounting(self, index, queries):
        batch = index.knn_batch(queries[:32], k=5)
        stats = batch.stats
        assert isinstance(stats, BatchStats)
        assert stats.num_queries == 32
        assert stats.unique_leaf_reads > 0
        # Every load is itself a use, so the share factor is >= 1; with
        # 32 queries over one small index, leaves must actually be
        # shared.
        assert stats.leaf_uses >= stats.unique_leaf_reads
        assert stats.leaf_share_factor > 1.0
        assert stats.total_seconds > 0.0

    def test_shared_reads_beat_serial_reads(self, index, queries):
        """The batch must physically read fewer blocks than Q serial
        runs touch in total (that is the point of the engine)."""
        batch = index.knn_batch(queries[:32], k=5)
        assert batch.stats.unique_leaf_reads < batch.stats.leaf_uses

    def test_result_length_mismatch_rejected(self, index, queries):
        from repro.core import ResultSet

        with pytest.raises(ValueError, match="result sets"):
            index.knn_batch(queries[:4], k=3, results=[ResultSet(3)])


class TestShardedParity:
    """Sharded comparisons run exact mode only: even the *serial*
    sharded path is nondeterministic under ε (racy shared BSF)."""

    @pytest.fixture(scope="class", params=[2, 4])
    def sharded(self, data, tmp_path_factory, request):
        directory = tmp_path_factory.mktemp(
            f"batch-shards-{request.param}"
        ) / "index"
        built = ShardedIndex.build(
            data,
            _config(num_shards=request.param, shard_workers=0),
            directory=directory,
        )
        yield built
        built.close()

    @pytest.mark.parametrize("num_queries", [2, 16])
    @pytest.mark.parametrize("k", [1, 10])
    def test_threads_bit_for_bit(self, sharded, queries, num_queries, k):
        _assert_batch_matches_serial(sharded, queries[:num_queries], k)

    def test_threads_duplicate_queries(self, sharded, queries):
        batch_queries = np.repeat(queries[:2], 4, axis=0)
        _assert_batch_matches_serial(sharded, batch_queries, k=5)

    def test_stats_aggregate_across_shards(self, sharded, queries):
        batch = sharded.knn_batch(queries[:16], k=5)
        assert batch.stats.num_queries == 16
        assert batch.stats.unique_leaf_reads > 0
        assert batch.stats.leaf_share_factor > 1.0

    def test_single_shard_is_plain_engine(self, data, tmp_path, queries):
        built = ShardedIndex.build(
            data, _config(num_shards=1), directory=tmp_path / "one"
        )
        try:
            assert isinstance(built, HerculesIndex)
            _assert_batch_matches_serial(built, queries[:8], k=5)
        finally:
            built.close()


class TestPoolParity:
    def test_pool_bit_for_bit(self, data, queries, tmp_path):
        from repro.core import open_index

        directory = tmp_path / "pooled"
        built = ShardedIndex.build(
            data,
            _config(num_shards=2, shard_workers=0),
            directory=directory,
        )
        serial = [built.knn(q, k=5) for q in queries[:12]]
        built.close()
        pooled = open_index(directory, workers=2)
        try:
            batch = pooled.knn_batch(queries[:12], k=5)
            for qi, answer in enumerate(batch):
                np.testing.assert_array_equal(
                    serial[qi].distances, answer.distances
                )
                np.testing.assert_array_equal(
                    serial[qi].positions, answer.positions
                )
        finally:
            pooled.close()
