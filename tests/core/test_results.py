"""Unit tests for the thread-safe k-best result set."""

import threading

import numpy as np
import pytest

from repro.core.results import ResultSet


class TestResultSet:
    def test_bsf_is_infinite_until_k_answers(self):
        rs = ResultSet(3)
        rs.update(1.0, 0)
        rs.update(2.0, 1)
        assert rs.bsf == np.inf
        rs.update(3.0, 2)
        assert rs.bsf == 3.0

    def test_update_replaces_worst(self):
        rs = ResultSet(2)
        rs.update(5.0, 0)
        rs.update(4.0, 1)
        assert rs.update(3.0, 2)
        distances, positions = rs.items()
        np.testing.assert_allclose(distances, [3.0, 4.0])
        assert list(positions) == [2, 1]

    def test_rejects_worse_than_bsf(self):
        rs = ResultSet(1)
        rs.update(1.0, 0)
        assert not rs.update(2.0, 1)
        assert not rs.update(1.0, 2)  # ties do not displace

    def test_update_batch_matches_serial_updates(self):
        rng = np.random.default_rng(95)
        distances = rng.uniform(0, 10, size=200)
        positions = np.arange(200)
        serial = ResultSet(10)
        for d, p in zip(distances, positions):
            serial.update(float(d), int(p))
        batched = ResultSet(10)
        batched.update_batch(distances, positions)
        np.testing.assert_allclose(serial.items()[0], batched.items()[0])

    def test_items_sorted_ascending(self):
        rs = ResultSet(5)
        for d in (3.0, 1.0, 4.0, 1.5, 9.0, 2.6):
            rs.update(d, int(d * 10))
        distances, _ = rs.items()
        assert list(distances) == sorted(distances)
        assert len(rs) == 5

    def test_concurrent_updates_keep_global_top_k(self):
        rng = np.random.default_rng(96)
        all_distances = rng.uniform(0, 100, size=4000)
        chunks = np.array_split(np.arange(4000), 8)
        rs = ResultSet(25)

        def worker(idx):
            for i in idx:
                rs.update(float(all_distances[i]), int(i))

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = np.sort(all_distances)[:25]
        np.testing.assert_allclose(rs.items()[0], expected)

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            ResultSet(0)


class TestSquaredInterface:
    def test_bsf_squared_is_square_of_bsf(self):
        rs = ResultSet(2)
        rs.update(3.0, 0)
        rs.update(4.0, 1)
        assert rs.bsf_squared == 16.0
        assert rs.bsf == 4.0

    def test_update_squared_matches_linear_update(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 10, size=100)
        linear = ResultSet(7)
        squared = ResultSet(7)
        for i, v in enumerate(values):
            linear.update(float(v), i)
            squared.update_squared(float(v) * float(v), i)
        np.testing.assert_array_equal(linear.items()[0], squared.items()[0])
        np.testing.assert_array_equal(linear.items()[1], squared.items()[1])

    def test_update_batch_squared_drops_infinite_rows(self):
        # Abandoned candidates arrive as inf; they must never enter.
        rs = ResultSet(3)
        rs.update_batch_squared(
            np.array([np.inf, 4.0, np.inf, 1.0, 9.0]),
            np.arange(5),
        )
        distances, positions = rs.items()
        np.testing.assert_allclose(distances, [1.0, 2.0, 3.0])
        assert list(positions) == [3, 1, 4]

    def test_update_batch_squared_rejects_shape_mismatch(self):
        rs = ResultSet(2)
        with pytest.raises(ValueError):
            rs.update_batch_squared(np.zeros(3), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            rs.update_batch_squared(np.zeros((2, 2)), np.zeros(4, dtype=np.int64))

    def test_duplicate_positions_survive_prefilter(self):
        # The vectorized pre-filter must not defeat the member guard:
        # the same position offered many times (as happens when racing
        # workers scan one leaf twice) occupies a single slot.
        rs = ResultSet(4)
        distances = np.array([5.0, 5.0, 5.0, 2.0, 2.0, 7.0])
        positions = np.array([9, 9, 9, 9, 9, 11], dtype=np.int64)
        rs.update_batch_squared(distances, positions)
        got_d, got_p = rs.items()
        assert list(got_p) == [9, 11]
        np.testing.assert_allclose(got_d, [np.sqrt(2.0), np.sqrt(7.0)])

    def test_duplicate_positions_across_batches(self):
        # A position already in the set is never re-entered (seed
        # semantics): one slot per series, first admission wins.
        rs = ResultSet(2)
        rs.update_batch_squared(np.array([4.0]), np.array([3], dtype=np.int64))
        rs.update_batch_squared(
            np.array([1.0, 4.0]), np.array([3, 3], dtype=np.int64)
        )
        got_d, got_p = rs.items()
        assert list(got_p) == [3]
        np.testing.assert_allclose(got_d, [2.0])


class TestConcurrentBatches:
    def test_eight_thread_hammer_matches_single_threaded(self):
        rng = np.random.default_rng(97)
        total = 16_000
        # Duplicate positions across threads stress the member guard; as
        # in the real pipeline, a position's distance is a function of
        # the position (same series, same query), so the final top-k is
        # order-independent.
        positions = rng.integers(0, total // 2, size=total).astype(np.int64)
        per_position = rng.uniform(0.0, 100.0, size=total // 2)
        all_squared = per_position[positions]

        reference = ResultSet(25)
        for start in range(0, total, 64):
            reference.update_batch_squared(
                all_squared[start : start + 64], positions[start : start + 64]
            )

        hammered = ResultSet(25)
        chunks = np.array_split(np.arange(total), 8)
        barrier = threading.Barrier(8)

        def worker(idx):
            barrier.wait()
            for start in range(0, idx.shape[0], 64):
                sel = idx[start : start + 64]
                hammered.update_batch_squared(all_squared[sel], positions[sel])

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        np.testing.assert_array_equal(
            reference.items()[0], hammered.items()[0]
        )
        np.testing.assert_array_equal(
            reference.items()[1], hammered.items()[1]
        )
