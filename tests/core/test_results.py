"""Unit tests for the thread-safe k-best result set."""

import threading

import numpy as np
import pytest

from repro.core.results import ResultSet


class TestResultSet:
    def test_bsf_is_infinite_until_k_answers(self):
        rs = ResultSet(3)
        rs.update(1.0, 0)
        rs.update(2.0, 1)
        assert rs.bsf == np.inf
        rs.update(3.0, 2)
        assert rs.bsf == 3.0

    def test_update_replaces_worst(self):
        rs = ResultSet(2)
        rs.update(5.0, 0)
        rs.update(4.0, 1)
        assert rs.update(3.0, 2)
        distances, positions = rs.items()
        np.testing.assert_allclose(distances, [3.0, 4.0])
        assert list(positions) == [2, 1]

    def test_rejects_worse_than_bsf(self):
        rs = ResultSet(1)
        rs.update(1.0, 0)
        assert not rs.update(2.0, 1)
        assert not rs.update(1.0, 2)  # ties do not displace

    def test_update_batch_matches_serial_updates(self):
        rng = np.random.default_rng(95)
        distances = rng.uniform(0, 10, size=200)
        positions = np.arange(200)
        serial = ResultSet(10)
        for d, p in zip(distances, positions):
            serial.update(float(d), int(p))
        batched = ResultSet(10)
        batched.update_batch(distances, positions)
        np.testing.assert_allclose(serial.items()[0], batched.items()[0])

    def test_items_sorted_ascending(self):
        rs = ResultSet(5)
        for d in (3.0, 1.0, 4.0, 1.5, 9.0, 2.6):
            rs.update(d, int(d * 10))
        distances, _ = rs.items()
        assert list(distances) == sorted(distances)
        assert len(rs) == 5

    def test_concurrent_updates_keep_global_top_k(self):
        rng = np.random.default_rng(96)
        all_distances = rng.uniform(0, 100, size=4000)
        chunks = np.array_split(np.arange(4000), 8)
        rs = ResultSet(25)

        def worker(idx):
            for i in idx:
                rs.update(float(all_distances[i]), int(i))

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = np.sort(all_distances)[:25]
        np.testing.assert_allclose(rs.items()[0], expected)

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            ResultSet(0)
