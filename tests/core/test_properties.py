"""Property-based tests on core index invariants (hypothesis).

These complement the example-based suites with randomized coverage of
the invariants everything else rests on:

* every series inserted into a tree is stored exactly once and routes
  back to its own leaf;
* internal synopses after index writing are exact bounding boxes;
* the full query pipeline is exact for arbitrary datasets, shapes, and
  configurations;
* HTree serialization round-trips arbitrary trees built from data.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HerculesConfig, HerculesIndex
from repro.core.construction import build_tree, leaf_data
from repro.core.config import HerculesConfig as Config
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.storage import htree

from ..conftest import make_random_walks

# Building indexes per example is expensive; keep example counts modest
# and suppress the too-slow health check explicitly.
_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dataset_strategy():
    return st.tuples(
        st.integers(60, 220),   # series count
        st.sampled_from([16, 32, 48]),  # length
        st.integers(0, 10_000),  # seed
    )


@_SETTINGS
@given(shape=dataset_strategy(), leaf_capacity=st.integers(8, 40))
def test_tree_stores_every_series_exactly_once(tmp_path_factory, shape, leaf_capacity):
    count, length, seed = shape
    data = make_random_walks(count, length, seed=seed)
    tmp = tmp_path_factory.mktemp("prop")
    config = Config(
        leaf_capacity=leaf_capacity,
        num_build_threads=1,
        flush_threshold=1,
        initial_segments=min(4, length),
    )
    spill = SeriesFile(tmp / "spill.bin", length)
    ctx = build_tree(Dataset.from_array(data), config, spill)
    stored = np.concatenate(
        [leaf_data(ctx, leaf) for leaf in ctx.root.iter_leaves_inorder()]
    )
    assert stored.shape == data.shape
    np.testing.assert_array_equal(
        stored[np.lexsort(stored.T[::-1])], data[np.lexsort(data.T[::-1])]
    )
    spill.close()


@_SETTINGS
@given(shape=dataset_strategy(), k=st.integers(1, 10))
def test_query_pipeline_is_exact(tmp_path_factory, shape, k):
    count, length, seed = shape
    data = make_random_walks(count, length, seed=seed)
    query = make_random_walks(1, length, seed=seed + 1)[0]
    config = HerculesConfig(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        initial_segments=min(4, length),
        sax_segments=min(8, length),
        num_query_threads=1,
        l_max=2,
    )
    index = HerculesIndex.build(data, config)
    try:
        answer = index.knn(query, k=k)
        d = np.sqrt(
            ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(1)
        )
        np.testing.assert_allclose(
            answer.distances, np.sort(d)[:k], atol=1e-5
        )
    finally:
        index.close()


@_SETTINGS
@given(shape=dataset_strategy())
def test_htree_roundtrip_preserves_query_answers(tmp_path_factory, shape):
    count, length, seed = shape
    data = make_random_walks(count, length, seed=seed)
    tmp = tmp_path_factory.mktemp("roundtrip")
    config = HerculesConfig(
        leaf_capacity=25,
        num_build_threads=1,
        flush_threshold=1,
        initial_segments=min(4, length),
        sax_segments=min(8, length),
        num_query_threads=1,
        l_max=2,
    )
    index = HerculesIndex.build(data, config, directory=tmp)
    query = make_random_walks(1, length, seed=seed + 2)[0]
    before = index.knn(query, k=3)
    index.close()
    reopened = HerculesIndex.open(tmp)
    after = reopened.knn(query, k=3)
    np.testing.assert_allclose(before.distances, after.distances, atol=1e-9)
    np.testing.assert_array_equal(before.positions, after.positions)
    reopened.close()


@_SETTINGS
@given(shape=dataset_strategy())
def test_serialized_tree_structure_matches(tmp_path_factory, shape):
    count, length, seed = shape
    data = make_random_walks(count, length, seed=seed)
    tmp = tmp_path_factory.mktemp("ser")
    config = Config(
        leaf_capacity=25,
        num_build_threads=1,
        flush_threshold=1,
        initial_segments=min(4, length),
    )
    spill = SeriesFile(tmp / "spill.bin", length)
    ctx = build_tree(Dataset.from_array(data), config, spill)
    # Leaves need file positions to serialize; assign inorder.
    position = 0
    for leaf in ctx.root.iter_leaves_inorder():
        leaf.file_position = position
        position += leaf.size
    htree.save_tree(tmp / "t.bin", ctx.root, {"n": count})
    loaded, meta = htree.load_tree(tmp / "t.bin")
    assert meta == {"n": count}

    originals = list(ctx.root.iter_nodes_preorder())
    restored = list(loaded.iter_nodes_preorder())
    assert len(originals) == len(restored)
    for original, copy in zip(originals, restored):
        assert original.is_leaf == copy.is_leaf
        assert original.size == copy.size
        assert original.segmentation == copy.segmentation
        np.testing.assert_allclose(original.synopsis, copy.synopsis)
        if not original.is_leaf:
            assert original.policy == copy.policy
        else:
            assert original.file_position == copy.file_position
    spill.close()


@_SETTINGS
@given(
    shape=dataset_strategy(),
    threads=st.sampled_from([2, 3, 4]),
    buffer_fraction=st.sampled_from([0.25, 0.5, 1.0]),
)
def test_parallel_build_with_random_buffer_pressure(
    tmp_path_factory, shape, threads, buffer_fraction
):
    """Flush-protocol stress: random small HBuffers must never lose data."""
    count, length, seed = shape
    data = make_random_walks(count, length, seed=seed)
    tmp = tmp_path_factory.mktemp("pressure")
    workers = threads - 1 if threads > 1 else 1
    db_size = 32
    capacity = max(int(count * buffer_fraction), workers * db_size)
    config = Config(
        leaf_capacity=20,
        num_build_threads=threads,
        db_size=db_size,
        buffer_capacity=capacity,
        flush_threshold=1,
        initial_segments=min(4, length),
    )
    spill = SeriesFile(tmp / "spill.bin", length)
    ctx = build_tree(Dataset.from_array(data), config, spill)
    total = sum(leaf.size for leaf in ctx.root.iter_leaves_inorder())
    assert total == count
    spill.close()
