"""Unit tests of individual query-answering phases (Algorithms 11-14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core.query import _SearchState, _approx_knn, _find_candidate_leaves

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(900, 32, seed=190)


@pytest.fixture(scope="module")
def index(corpus, tmp_path_factory):
    config = HerculesConfig(
        leaf_capacity=45,
        num_build_threads=1,
        flush_threshold=1,
        num_query_threads=1,
        l_max=3,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        corpus, config, directory=tmp_path_factory.mktemp("phases")
    )
    yield idx
    idx.close()


def make_state(index, query, k=3, **config_overrides):
    config = index.config.with_options(**config_overrides)
    return _SearchState(
        query,
        k,
        config,
        index._lrd,
        index._lsd_words,
        index.sax_space,
        index.num_leaves,
        index.num_series,
    )


class TestApproxPhase:
    def test_visits_at_most_l_max_leaves(self, index):
        query = make_random_walks(1, 32, seed=191)[0]
        for l_max in (1, 2, 5):
            state = make_state(index, query, l_max=l_max)
            _approx_knn(state, index.root)
            assert state.profile.approx_leaves <= l_max

    def test_first_leaf_is_the_query_route_leaf(self, index, corpus):
        """For a dataset member, phase 1 must reach distance zero."""
        state = make_state(index, corpus[10], k=1, l_max=1)
        _approx_knn(state, index.root)
        distances, _ = state.results.items()
        assert distances[0] == pytest.approx(0.0, abs=1e-5)

    def test_terminates_early_when_pq_prunes(self, index, corpus):
        """With an exact self-match, BSF=0 prunes the whole queue before
        the leaf budget is exhausted."""
        state = make_state(index, corpus[10], k=1, l_max=1000)
        _approx_knn(state, index.root)
        assert state.profile.approx_leaves < index.num_leaves

    def test_results_populated_with_k_answers(self, index):
        query = make_random_walks(1, 32, seed=192)[0]
        state = make_state(index, query, k=5, l_max=3)
        _approx_knn(state, index.root)
        distances, positions = state.results.items()
        assert distances.shape == (5,)
        assert np.all(np.diff(distances) >= 0)


class TestCandidateLeafPhase:
    def test_lclist_sorted_by_file_position(self, index):
        query = make_random_walks(1, 32, seed=193)[0]
        state = make_state(index, query, l_max=1)
        _approx_knn(state, index.root)
        lclist = _find_candidate_leaves(state)
        positions = [leaf.file_position for leaf, _ in lclist]
        assert positions == sorted(positions)

    def test_candidates_exclude_approx_visited_leaves(self, index):
        """Leaves popped in phase 1 are not re-examined in phase 2 (the
        paper: 'nodes that were visited by algorithm 11 are not accessed
        again')."""
        query = make_random_walks(1, 32, seed=194)[0]
        state = make_state(index, query, l_max=4)

        visited = []
        original = state.scan_leaf

        def tracking(leaf):
            visited.append(leaf)
            original(leaf)

        state.scan_leaf = tracking
        _approx_knn(state, index.root)
        lclist = _find_candidate_leaves(state)
        candidate_ids = {leaf.node_id for leaf, _ in lclist}
        assert not candidate_ids & {leaf.node_id for leaf in visited}

    def test_bounds_below_bsf(self, index):
        query = make_random_walks(1, 32, seed=195)[0]
        state = make_state(index, query, l_max=2)
        _approx_knn(state, index.root)
        bsf = state.results.bsf
        lclist = _find_candidate_leaves(state)
        assert all(bound <= bsf for _, bound in lclist)


class TestPathSelectionBoundaries:
    def test_threshold_zero_never_takes_eapca_skipseq(self, index):
        query = make_random_walks(1, 32, seed=196)[0]
        answer = index.knn(
            query, k=1, config=index.config.with_options(eapca_th=0.0, sax_th=0.0)
        )
        assert answer.profile.path in ("full-four-phase", "approx-only")

    def test_threshold_one_forces_skip_sequential(self, index):
        query = make_random_walks(1, 32, seed=197)[0]
        answer = index.knn(
            query, k=1, config=index.config.with_options(eapca_th=1.0)
        )
        assert answer.profile.path in ("eapca-skipseq", "approx-only")

    def test_sax_threshold_one_forces_sax_skipseq(self, index):
        query = make_random_walks(1, 32, seed=198)[0]
        answer = index.knn(
            query,
            k=1,
            config=index.config.with_options(eapca_th=0.0, sax_th=1.0),
        )
        assert answer.profile.path in ("sax-skipseq", "approx-only")

    def test_all_paths_agree_on_answers(self, index, corpus):
        query = make_random_walks(1, 32, seed=199)[0]
        d = np.sqrt(
            ((corpus.astype(np.float64) - query.astype(np.float64)) ** 2).sum(1)
        )
        expected = np.sort(d)[:4]
        for overrides in (
            {"eapca_th": 0.0, "sax_th": 0.0},
            {"eapca_th": 1.0},
            {"eapca_th": 0.0, "sax_th": 1.0},
            {"use_sax": False},
        ):
            answer = index.knn(
                query, k=4, config=index.config.with_options(**overrides)
            )
            np.testing.assert_allclose(answer.distances, expected, atol=1e-5)


class TestPhaseTiming:
    def test_phase_times_populated_and_bounded(self, index):
        query = make_random_walks(1, 32, seed=205)[0]
        profile = index.knn(query, k=3).profile
        assert profile.time_approx > 0
        assert profile.time_candidates >= 0
        assert profile.time_refine >= 0
        phase_sum = (
            profile.time_approx + profile.time_candidates + profile.time_refine
        )
        assert phase_sum <= profile.time_total + 1e-6

    def test_approx_only_path_has_no_refine_work(self, index, corpus):
        """A self-query that prunes everything spends ~nothing refining."""
        answer = index.knn(corpus[3], k=1)
        if answer.profile.path == "approx-only":
            assert answer.profile.time_refine < answer.profile.time_total


class TestEdgeCases:
    def test_k_equal_to_dataset_size(self, tmp_path):
        data = make_random_walks(30, 16, seed=200)
        config = HerculesConfig(
            leaf_capacity=10,
            num_build_threads=1,
            flush_threshold=1,
            num_query_threads=1,
            sax_segments=8,
            l_max=2,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "idx")
        query = make_random_walks(1, 16, seed=201)[0]
        answer = index.knn(query, k=30)
        assert answer.k == 30
        d = np.sqrt(
            ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(1)
        )
        np.testing.assert_allclose(answer.distances, np.sort(d), atol=1e-5)
        index.close()

    def test_duplicate_series_all_reported(self, tmp_path):
        base = make_random_walks(1, 16, seed=202)
        data = np.concatenate([np.tile(base, (5, 1)),
                               make_random_walks(60, 16, seed=203)])
        config = HerculesConfig(
            leaf_capacity=20,
            num_build_threads=1,
            flush_threshold=1,
            num_query_threads=1,
            sax_segments=8,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "idx")
        answer = index.knn(base[0], k=5)
        np.testing.assert_allclose(answer.distances, np.zeros(5), atol=1e-5)
        assert len(set(answer.positions.tolist())) == 5  # distinct copies
        index.close()

    def test_single_series_dataset(self, tmp_path):
        data = make_random_walks(1, 16, seed=204)
        config = HerculesConfig(
            leaf_capacity=10,
            num_build_threads=1,
            flush_threshold=1,
            num_query_threads=1,
            sax_segments=8,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "idx")
        answer = index.knn(data[0], k=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-6)
        index.close()
