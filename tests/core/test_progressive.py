"""Tests for progressive query answering and concurrent index use."""

import threading

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core.stats import to_networkx

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(1000, 32, seed=230)


@pytest.fixture(scope="module")
def index(corpus, tmp_path_factory):
    config = HerculesConfig(
        leaf_capacity=50,
        num_build_threads=2,
        db_size=256,
        flush_threshold=1,
        num_query_threads=2,
        l_max=3,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        corpus, config, directory=tmp_path_factory.mktemp("prog")
    )
    yield idx
    idx.close()


def brute_force(corpus, query, k):
    d = np.sqrt(
        ((corpus.astype(np.float64) - query.astype(np.float64)) ** 2).sum(axis=1)
    )
    return np.sort(d)[:k]


class TestProgressive:
    def test_final_answer_is_exact(self, index, corpus):
        query = make_random_walks(1, 32, seed=231)[0]
        answers = list(index.knn_progressive(query, k=5))
        assert answers[-1].profile.path == "progressive-final"
        np.testing.assert_allclose(
            answers[-1].distances, brute_force(corpus, query, 5), atol=1e-5
        )

    def test_snapshots_improve_monotonically(self, index):
        query = make_random_walks(1, 32, seed=232)[0]
        answers = list(index.knn_progressive(query, k=3))
        kth = [a.distances[-1] for a in answers if a.k == 3]
        assert all(a >= b - 1e-12 for a, b in zip(kth, kth[1:]))

    def test_partials_are_labeled_and_counted(self, index):
        query = make_random_walks(1, 32, seed=233)[0]
        answers = list(index.knn_progressive(query, k=3))
        partials = [a for a in answers if a.profile.path == "progressive-partial"]
        assert len(partials) == len(answers) - 1
        leaves = [a.profile.approx_leaves for a in partials]
        assert leaves == sorted(leaves)
        assert leaves[0] == 1

    def test_early_stop_is_usable(self, index, corpus):
        """Consuming only the first snapshot still yields valid answers."""
        query = corpus[11]
        first = next(iter(index.knn_progressive(query, k=1)))
        assert first.k == 1
        assert first.distances[0] == pytest.approx(0.0, abs=1e-5)

    def test_progressive_respects_epsilon(self, index, corpus):
        query = make_random_walks(1, 32, seed=234)[0]
        config = index.config.with_options(epsilon=0.5)
        final = list(index.knn_progressive(query, k=3, config=config))[-1]
        exact = brute_force(corpus, query, 3)
        assert final.distances[-1] <= 1.5 * exact[-1] + 1e-6


class TestConcurrentQueries:
    def test_parallel_queries_stay_exact(self, index, corpus):
        """One index object serving many querying threads at once."""
        queries = make_random_walks(12, 32, seed=235)
        expected = [brute_force(corpus, q, 3) for q in queries]
        failures = []

        def run(i):
            try:
                answer = index.knn(queries[i], k=3)
                np.testing.assert_allclose(
                    answer.distances, expected[i], atol=1e-5
                )
            except Exception as exc:  # noqa: BLE001
                failures.append((i, exc))

        threads = [threading.Thread(target=run, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures


class TestNetworkxExport:
    def test_graph_mirrors_tree(self, index):
        pytest.importorskip("networkx")
        graph = to_networkx(index.root)
        from repro.core.stats import tree_statistics

        stats = tree_statistics(index.root)
        assert graph.number_of_nodes() == stats.num_nodes
        assert graph.number_of_edges() == stats.num_nodes - 1
        leaves = [n for n, d in graph.nodes(data=True) if d["is_leaf"]]
        assert len(leaves) == stats.num_leaves
        total = sum(graph.nodes[n]["size"] for n in leaves)
        assert total == index.num_series

    def test_edges_labeled_by_side(self, index):
        pytest.importorskip("networkx")
        graph = to_networkx(index.root)
        sides = {d["side"] for _, _, d in graph.edges(data=True)}
        assert sides == {"left", "right"}
