"""Exact-answer parity of the squared-space query pipeline.

The pipeline now prunes and refines entirely in squared-distance space;
these tests pin the property that made the rework safe: the answers are
*bit-for-bit* the linear-space answers, on every access path.  Survivor
rows of the early-abandoning kernel are recomputed with the unblocked
kernel's summation order, so a final answer's distance is exactly
``sqrt(batch_squared_euclidean(query, row))`` regardless of which path
produced it — identical to what the pre-squared pipeline returned.

ε-approximate search scales lower bounds by ``1 + ε`` exactly once
(squared *after* scaling, never scaling the squared value again):
returned distances stay true distances, and answers honor the paper's
``(1 + ε)``-of-optimal guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core.query import _SearchState
from repro.distance.euclidean import batch_squared_euclidean

from ..conftest import make_random_walks

#: Config overrides that force each refinement path (cf. Algorithms 12-14).
PATHS = {
    "full-four-phase": {"eapca_th": 0.0, "sax_th": 0.0},
    "eapca-skipseq": {"eapca_th": 1.0},
    "sax-skipseq": {"eapca_th": 0.0, "sax_th": 1.0},
    "nosax-leaves": {"eapca_th": 0.0, "use_sax": False},
}


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(700, 32, seed=230)


@pytest.fixture(scope="module")
def index(corpus, tmp_path_factory):
    config = HerculesConfig(
        leaf_capacity=40,
        num_build_threads=1,
        flush_threshold=1,
        num_query_threads=1,
        l_max=3,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        corpus, config, directory=tmp_path_factory.mktemp("parity")
    )
    yield idx
    idx.close()


@pytest.fixture(scope="module")
def queries():
    return make_random_walks(6, 32, seed=231)


def _true_squared(index, query):
    """Squared distances to every series, in LRD (answer-position) order."""
    data = index._lrd.read_range(0, index.num_series)
    return batch_squared_euclidean(np.asarray(query, dtype=np.float64), data)


class TestExactParity:
    @pytest.mark.parametrize("path", sorted(PATHS))
    @pytest.mark.parametrize("k", [1, 5])
    def test_bit_for_bit_on_every_path(self, index, queries, path, k):
        config = index.config.with_options(**PATHS[path])
        for query in queries:
            full = _true_squared(index, query)
            expected = np.sqrt(np.sort(full))[:k]
            answer = index.knn(query, k=k, config=config)
            assert answer.profile.path in (path, "approx-only")
            # Bit-for-bit: same floats the linear-space pipeline produced.
            np.testing.assert_array_equal(answer.distances, expected)
            np.testing.assert_array_equal(
                answer.distances, np.sqrt(full[answer.positions])
            )

    def test_progressive_final_answer_is_exact(self, index, queries):
        for query in queries:
            full = _true_squared(index, query)
            expected = np.sqrt(np.sort(full))[:3]
            final = None
            for final in index.knn_progressive(query, k=3):
                pass
            np.testing.assert_array_equal(final.distances, expected)
            assert final.profile.path != "progressive-partial"

    def test_approximate_answers_are_true_distances(self, index, queries):
        for query in queries:
            full = _true_squared(index, query)
            answer = index.knn_approx(query, k=3)
            # Approximate answers may not be the optimal k, but each
            # reported distance is the true distance of its position.
            np.testing.assert_array_equal(
                answer.distances, np.sqrt(full[answer.positions])
            )
            assert answer.distances[0] >= np.sqrt(full.min()) or (
                answer.distances[0] == np.sqrt(full.min())
            )

    def test_multithreaded_matches_single_threaded(self, index, queries):
        threaded = index.config.with_options(num_query_threads=4)
        for query in queries:
            single = index.knn(query, k=4)
            multi = index.knn(query, k=4, config=threaded)
            np.testing.assert_array_equal(single.distances, multi.distances)
            np.testing.assert_array_equal(single.positions, multi.positions)


class TestEpsilonParity:
    @pytest.mark.parametrize("path", sorted(PATHS))
    @pytest.mark.parametrize("epsilon", [0.0, 0.05])
    def test_epsilon_guarantee_and_true_distances(
        self, index, queries, path, epsilon
    ):
        config = index.config.with_options(epsilon=epsilon, **PATHS[path])
        for query in queries:
            full = _true_squared(index, query)
            optimal = np.sqrt(np.sort(full))[:3]
            answer = index.knn(query, k=3, config=config)
            # Refinement is never ε-scaled: reported distances are the
            # true distances of the reported positions, bit-for-bit.
            np.testing.assert_array_equal(
                answer.distances, np.sqrt(full[answer.positions])
            )
            # The (1 + ε)-of-optimal guarantee, per rank.
            assert np.all(answer.distances <= (1.0 + epsilon) * optimal)
            if epsilon == 0.0:
                np.testing.assert_array_equal(answer.distances, optimal)

    @pytest.mark.parametrize("epsilon", [0.0, 0.05])
    def test_epsilon_runs_are_deterministic(self, index, queries, epsilon):
        config = index.config.with_options(epsilon=epsilon)
        for query in queries:
            first = index.knn(query, k=3, config=config)
            second = index.knn(query, k=3, config=config)
            np.testing.assert_array_equal(first.distances, second.distances)
            np.testing.assert_array_equal(first.positions, second.positions)

    def test_prune_factor_squared_once(self, index):
        # ((1 + ε) · bound)², never ((1 + ε)² · bound²)² or any double
        # application: the scaled-squared helper squares exactly once.
        query = make_random_walks(1, 32, seed=240)[0]
        config = index.config.with_options(epsilon=0.05)
        state = _SearchState(
            query,
            1,
            config,
            index._lrd,
            index._lsd_words,
            index.sax_space,
            index.num_leaves,
            index.num_series,
        )
        assert state.prune_factor == 1.05
        bound = 2.0
        assert state.scaled_squared(bound) == (bound * 1.05) ** 2


class TestPointsAccounting:
    def test_profile_counts_points(self, index, queries):
        answer = index.knn(queries[0], k=1)
        profile = answer.profile
        assert profile.points_total > 0
        assert 0 < profile.points_compared <= profile.points_total
        assert 0.0 <= profile.abandoned_fraction < 1.0

    def test_cache_counters_zero_without_cache(self, index, queries):
        profile = index.knn(queries[0], k=1).profile
        assert profile.cache_hits == 0
        assert profile.cache_misses == 0
        assert profile.cache_hit_rate is None
