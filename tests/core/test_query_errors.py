"""Error propagation from multi-threaded query phases."""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex

from ..conftest import make_random_walks


@pytest.fixture()
def index(tmp_path):
    data = make_random_walks(500, 32, seed=290)
    config = HerculesConfig(
        leaf_capacity=40,
        num_build_threads=1,
        flush_threshold=1,
        num_query_threads=3,
        l_max=2,
        sax_segments=8,
        adaptive_thresholds=False,  # force phases 3-4 to always run
    )
    idx = HerculesIndex.build(data, config, directory=tmp_path / "idx")
    yield idx
    idx.close()


class TestQueryWorkerErrors:
    def test_phase3_worker_error_propagates(self, index, monkeypatch):
        # SaxSpace is a frozen dataclass: patch at class level.
        def broken_mindist(self, query_paa, words, length):
            raise RuntimeError("injected mindist failure")

        monkeypatch.setattr(
            index.sax_space.__class__, "mindist", broken_mindist
        )
        query = make_random_walks(1, 32, seed=291)[0]
        with pytest.raises(RuntimeError, match="injected mindist failure"):
            index.knn(query, k=1)

    def test_phase4_read_error_propagates(self, index, monkeypatch):
        from repro.errors import StorageError

        def broken(positions):
            raise StorageError("injected read failure")

        # Phase 4 (CRWorkers) is the only consumer of read_positions;
        # the approximate phase reads whole leaves via read_range.
        monkeypatch.setattr(index._lrd, "read_positions", broken)
        query = make_random_walks(1, 32, seed=292)[0]
        with pytest.raises(StorageError, match="injected read failure"):
            index.knn(query, k=1)

    def test_queries_work_after_a_failed_query(self, index, monkeypatch):
        """A failed query must not poison the index for later ones."""
        query = make_random_walks(1, 32, seed=293)[0]
        original_mindist = index.sax_space.__class__.mindist

        def broken(self, query_paa, words, length):
            raise RuntimeError("one-off failure")

        monkeypatch.setattr(index.sax_space.__class__, "mindist", broken)
        with pytest.raises(RuntimeError):
            index.knn(query, k=1)
        monkeypatch.setattr(index.sax_space.__class__, "mindist", original_mindist)

        answer = index.knn(query, k=1)
        assert np.isfinite(answer.distances[0])
