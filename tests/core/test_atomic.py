"""Unit tests for the concurrency primitives."""

import threading

from repro.core.atomic import FetchAdd, Flag, HandshakeBit


class TestFetchAdd:
    def test_returns_value_before_addition(self):
        counter = FetchAdd(10)
        assert counter.fetch_add(5) == 10
        assert counter.load() == 15

    def test_store_resets(self):
        counter = FetchAdd(3)
        counter.store(0)
        assert counter.load() == 0

    def test_concurrent_increments_lose_nothing(self):
        counter = FetchAdd(0)
        claimed = []
        lock = threading.Lock()

        def worker():
            mine = []
            for _ in range(1000):
                mine.append(counter.fetch_add(1))
            with lock:
                claimed.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.load() == 8000
        assert sorted(claimed) == list(range(8000))  # unique claims


class TestHandshakeBit:
    def test_raise_await_lower(self):
        bit = HandshakeBit()
        assert not bit.is_raised
        bit.raise_bit()
        assert bit.await_raised(timeout=0.1)
        bit.lower_bit()
        assert not bit.is_raised

    def test_await_unblocks_cross_thread(self):
        bit = HandshakeBit()
        seen = []

        def waiter():
            seen.append(bit.await_raised(timeout=2.0))

        t = threading.Thread(target=waiter)
        t.start()
        bit.raise_bit()
        t.join()
        assert seen == [True]


class TestFlag:
    def test_set_get_clear(self):
        flag = Flag()
        assert not flag.get()
        flag.set(True)
        assert flag.get()
        flag.clear()
        assert not flag.get()
