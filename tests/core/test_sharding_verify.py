"""Open-time verification of sharded directories: every failure names the shard."""

import numpy as np
import pytest

from repro.core import HerculesConfig, HerculesIndex, ShardedIndex
from repro.errors import (
    ChecksumError,
    ManifestError,
    ReproError,
    StorageError,
)
from repro.storage import manifest as manifest_mod

from ..conftest import make_random_walks


@pytest.fixture
def sharded_dir(tmp_path):
    data = make_random_walks(120, 32, seed=3)
    config = HerculesConfig(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        num_shards=3,
        shard_workers=0,
    )
    index = ShardedIndex.build(data, config, directory=tmp_path / "index")
    index.close()
    return tmp_path / "index", data


def _flip(path, offset=50):
    blob = bytearray(path.read_bytes())
    blob[offset % len(blob)] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestVerifyLevels:
    @pytest.mark.parametrize("level", ["quick", "full"])
    def test_healthy_directory_opens(self, sharded_dir, level):
        directory, data = sharded_dir
        with ShardedIndex.open(directory, verify=level) as index:
            assert index.num_shards == 3
            answer = index.knn(data[7], k=1)
            np.testing.assert_allclose(answer.distances[0], 0.0, atol=1e-4)

    def test_off_skips_all_checks(self, sharded_dir):
        directory, _ = sharded_dir
        # Damage artifact bytes without changing sizes: quick would pass
        # anyway, but off must not even read the shard manifests' CRCs.
        _flip(directory / "shard-0001" / "lrd.bin")
        with ShardedIndex.open(directory, verify="off") as index:
            assert index.num_series == 120

    def test_unknown_level_rejected(self, sharded_dir):
        directory, _ = sharded_dir
        with pytest.raises(ValueError, match="verify"):
            ShardedIndex.open(directory, verify="paranoid")


class TestDamageNamesTheShard:
    def test_corrupted_shard_manifest(self, sharded_dir):
        directory, _ = sharded_dir
        _flip(directory / "shard-0001" / manifest_mod.MANIFEST_FILENAME)
        with pytest.raises(ReproError, match="shard-0001"):
            ShardedIndex.open(directory, verify="quick")

    def test_missing_shard_directory(self, sharded_dir):
        directory, _ = sharded_dir
        import shutil

        shutil.rmtree(directory / "shard-0002")
        with pytest.raises(StorageError, match="shard-0002"):
            ShardedIndex.open(directory, verify="quick")

    def test_truncated_artifact_caught_at_quick(self, sharded_dir):
        directory, _ = sharded_dir
        lrd = directory / "shard-0000" / "lrd.bin"
        lrd.write_bytes(lrd.read_bytes()[:-8])
        with pytest.raises(ChecksumError, match="shard-0000") as excinfo:
            ShardedIndex.open(directory, verify="quick")
        assert "lrd.bin" in str(excinfo.value)

    def test_flipped_byte_caught_only_at_full(self, sharded_dir):
        directory, data = sharded_dir
        _flip(directory / "shard-0002" / "lsd.bin", offset=200)
        # Same size, wrong bytes: quick passes, full recomputes the CRC.
        index = ShardedIndex.open(directory, verify="quick")
        index.close()
        with pytest.raises(ChecksumError, match="shard-0002") as excinfo:
            ShardedIndex.open(directory, verify="full")
        assert "lsd.bin" in str(excinfo.value)

    def test_swapped_shard_is_a_mixed_generation(self, sharded_dir):
        directory, data = sharded_dir
        # Rebuild shard-0001 in place from different rows: its own
        # manifest is self-consistent, but the committed SHARDS.json
        # fingerprint no longer matches.
        rebuilt = HerculesIndex.build(
            make_random_walks(40, 32, seed=99),
            HerculesConfig(
                leaf_capacity=20, num_build_threads=1, flush_threshold=1
            ),
            directory=directory / "shard-0001",
        )
        rebuilt.close()
        with pytest.raises(ChecksumError, match="shard-0001") as excinfo:
            ShardedIndex.open(directory, verify="quick")
        assert "mixed generations" in str(excinfo.value)

    def test_corrupted_top_level_manifest(self, sharded_dir):
        directory, _ = sharded_dir
        (directory / manifest_mod.SHARDS_FILENAME).write_text("{not json")
        with pytest.raises(ManifestError):
            ShardedIndex.open(directory, verify="quick")

    def test_failure_closes_already_opened_shards(self, sharded_dir):
        directory, _ = sharded_dir
        # Damage the *last* shard so the first two open before the raise;
        # the open must not leak their file handles.
        _flip(directory / "shard-0002" / manifest_mod.MANIFEST_FILENAME)
        with pytest.raises(ReproError, match="shard-0002"):
            ShardedIndex.open(directory, verify="quick")
