"""Integration tests for index building (Algorithms 1-5)."""

import numpy as np
import pytest

from repro.core.config import HerculesConfig
from repro.core.construction import (
    build_tree,
    leaf_data,
    new_build_context,
)
from repro.distance.lower_bounds import MU_MAX, MU_MIN, SD_MAX, SD_MIN
from repro.errors import ConfigError
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.summarization.eapca import segment_stats

from ..conftest import make_random_walks


def build(tmp_path, data, **config_kwargs):
    config = HerculesConfig(**config_kwargs)
    dataset = Dataset.from_array(data)
    spill = SeriesFile(tmp_path / "spill.bin", data.shape[1])
    ctx = build_tree(dataset, config, spill)
    return ctx, spill


def collect_all_series(ctx):
    """Every series stored in the tree, via leaf data, as one matrix."""
    parts = [leaf_data(ctx, leaf) for leaf in ctx.root.iter_leaves_inorder()]
    return np.concatenate([p for p in parts if p.shape[0]], axis=0)


def assert_tree_invariants(ctx, data):
    """Structural invariants shared by every construction test."""
    total = 0
    for leaf in ctx.root.iter_leaves_inorder():
        rows = leaf_data(ctx, leaf)
        assert rows.shape[0] == leaf.size
        total += leaf.size
        # Leaf synopsis is the exact box of the leaf's series.
        means, stds = segment_stats(rows, leaf.segmentation)
        np.testing.assert_allclose(
            leaf.synopsis[:, MU_MIN], means.min(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            leaf.synopsis[:, MU_MAX], means.max(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            leaf.synopsis[:, SD_MIN], stds.min(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            leaf.synopsis[:, SD_MAX], stds.max(axis=0), atol=1e-6
        )
    assert total == data.shape[0]
    # No series lost or duplicated: multiset of rows matches the dataset.
    stored = collect_all_series(ctx)
    order_stored = np.lexsort(stored.T[::-1])
    order_data = np.lexsort(data.T[::-1])
    np.testing.assert_array_equal(stored[order_stored], data[order_data])


class TestSequentialBuild:
    def test_preserves_every_series(self, tmp_path):
        data = make_random_walks(500, 32, seed=80)
        ctx, _ = build(
            tmp_path, data, leaf_capacity=40, num_build_threads=1, flush_threshold=1
        )
        assert_tree_invariants(ctx, data)

    def test_leaves_respect_capacity(self, tmp_path):
        data = make_random_walks(500, 32, seed=81)
        ctx, _ = build(
            tmp_path, data, leaf_capacity=40, num_build_threads=1, flush_threshold=1
        )
        for leaf in ctx.root.iter_leaves_inorder():
            assert leaf.size <= 40

    def test_routing_sends_each_leaf_series_to_it(self, tmp_path):
        from repro.core.construction import route_to_leaf
        from repro.summarization.eapca import SeriesSketch

        data = make_random_walks(300, 32, seed=82)
        ctx, _ = build(
            tmp_path, data, leaf_capacity=30, num_build_threads=1, flush_threshold=1
        )
        for leaf in ctx.root.iter_leaves_inorder():
            for row in leaf_data(ctx, leaf)[:3]:
                assert route_to_leaf(ctx.root, SeriesSketch(row)) is leaf

    def test_spilling_path_with_tiny_buffer(self, tmp_path):
        data = make_random_walks(400, 32, seed=83)
        ctx, spill = build(
            tmp_path,
            data,
            leaf_capacity=50,
            num_build_threads=1,
            flush_threshold=1,
            buffer_capacity=64,
            db_size=32,
        )
        assert ctx.flushes.load() > 0
        assert spill.num_series > 0
        assert_tree_invariants(ctx, data)

    def test_identical_series_overflow_leaf_without_split(self, tmp_path):
        data = np.tile(make_random_walks(1, 16, seed=84), (50, 1))
        ctx, _ = build(
            tmp_path, data, leaf_capacity=10, num_build_threads=1, flush_threshold=1
        )
        assert ctx.root.is_leaf
        assert ctx.root.size == 50


class TestParallelBuild:
    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_preserves_every_series(self, tmp_path, threads):
        data = make_random_walks(600, 32, seed=85)
        ctx, _ = build(
            tmp_path,
            data,
            leaf_capacity=40,
            num_build_threads=threads,
            db_size=64,
            flush_threshold=max(threads - 2, 1),
        )
        assert_tree_invariants(ctx, data)

    def test_parallel_with_flushes(self, tmp_path):
        data = make_random_walks(600, 32, seed=86)
        ctx, spill = build(
            tmp_path,
            data,
            leaf_capacity=50,
            num_build_threads=4,
            db_size=32,
            buffer_capacity=150,
            flush_threshold=2,
        )
        assert ctx.flushes.load() > 0
        assert_tree_invariants(ctx, data)

    def test_single_batch_dataset(self, tmp_path):
        data = make_random_walks(50, 16, seed=87)
        ctx, _ = build(
            tmp_path,
            data,
            leaf_capacity=10,
            num_build_threads=3,
            db_size=256,
            flush_threshold=1,
        )
        assert_tree_invariants(ctx, data)

    def test_matches_sequential_tree_series_placement(self, tmp_path):
        """Sequential and parallel builds agree on totals and capacities."""
        data = make_random_walks(400, 32, seed=88)
        seq_ctx, _ = build(
            tmp_path / "seq", data, leaf_capacity=40, num_build_threads=1,
            flush_threshold=1,
        )
        par_ctx, _ = build(
            tmp_path / "par", data, leaf_capacity=40, num_build_threads=4,
            db_size=64, flush_threshold=2,
        )
        seq_total = sum(l.size for l in seq_ctx.root.iter_leaves_inorder())
        par_total = sum(l.size for l in par_ctx.root.iter_leaves_inorder())
        assert seq_total == par_total == 400


class TestValidation:
    def test_region_smaller_than_db_size_rejected(self, tmp_path):
        data = make_random_walks(100, 16, seed=89)
        dataset = Dataset.from_array(data)
        config = HerculesConfig(
            num_build_threads=4, db_size=64, buffer_capacity=90, flush_threshold=2
        )
        spill = SeriesFile(tmp_path / "spill.bin", 16)
        with pytest.raises(ConfigError):
            new_build_context(dataset, config, spill)

    def test_initial_segments_longer_than_series_rejected(self, tmp_path):
        data = make_random_walks(10, 4, seed=90)
        dataset = Dataset.from_array(data)
        spill = SeriesFile(tmp_path / "spill.bin", 4)
        with pytest.raises(ConfigError):
            new_build_context(
                dataset, HerculesConfig(initial_segments=8), spill
            )
