"""End-to-end tests for the HerculesIndex facade: build, query, persist."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    HerculesConfig,
    HerculesIndex,
    IndexStateError,
)
from repro.storage.dataset import Dataset

from ..conftest import make_random_walks


def brute_force_knn(data, query, k):
    d = np.sqrt(
        ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(axis=1)
    )
    return np.sort(d)[:k]


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(1500, 64, seed=100)


@pytest.fixture(scope="module")
def built_index(corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("hercules")
    config = HerculesConfig(
        leaf_capacity=60,
        num_build_threads=4,
        db_size=128,
        flush_threshold=2,
        num_query_threads=2,
        l_max=10,
        sax_segments=8,
    )
    index = HerculesIndex.build(corpus, config, directory=directory)
    yield index
    index.close()


class TestBuild:
    def test_build_report(self, built_index, corpus):
        report = built_index.build_report
        assert report.num_series == corpus.shape[0]
        assert report.num_leaves == built_index.num_leaves
        assert report.splits == built_index.num_leaves - 1
        assert report.total_seconds > 0

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConfigError):
            HerculesIndex.build(np.empty((0, 16), dtype=np.float32))

    def test_temp_directory_removed_on_close(self):
        data = make_random_walks(120, 16, seed=101)
        index = HerculesIndex.build(
            data,
            HerculesConfig(
                leaf_capacity=30, num_build_threads=1, flush_threshold=1,
                sax_segments=8,
            ),
        )
        directory = index.directory
        assert directory.exists()
        index.close()
        assert not directory.exists()

    def test_build_from_on_disk_dataset(self, tmp_path):
        data = make_random_walks(200, 32, seed=102)
        dataset = Dataset.write(tmp_path / "data.bin", data)
        index = HerculesIndex.build(
            dataset,
            HerculesConfig(
                leaf_capacity=40, num_build_threads=2, db_size=64,
                flush_threshold=1, sax_segments=8,
            ),
        )
        assert index.num_series == 200
        answer = index.knn(data[17], k=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-5)
        index.close()
        dataset.close()


class TestExactness:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, built_index, corpus, k):
        queries = make_random_walks(10, 64, seed=103)
        for q in queries:
            answer = built_index.knn(q, k=k)
            expected = brute_force_knn(corpus, q, k)
            np.testing.assert_allclose(answer.distances, expected, atol=1e-6)

    def test_self_query_finds_itself(self, built_index, corpus):
        answer = built_index.knn(corpus[42], k=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-5)
        np.testing.assert_allclose(
            built_index.get_series(int(answer.positions[0])),
            corpus[42],
        )

    def test_positions_address_true_neighbors(self, built_index, corpus):
        query = make_random_walks(1, 64, seed=104)[0]
        answer = built_index.knn(query, k=5)
        for dist, pos in zip(answer.distances, answer.positions):
            series = built_index.get_series(int(pos))
            recomputed = np.sqrt(
                ((series.astype(np.float64) - query.astype(np.float64)) ** 2).sum()
            )
            assert recomputed == pytest.approx(dist, abs=1e-6)

    def test_ablation_variants_return_identical_answers(self, built_index, corpus):
        query = make_random_walks(1, 64, seed=105)[0]
        base = built_index.knn(query, k=10)
        for overrides in (
            {"use_sax": False},
            {"num_query_threads": 1},
            {"adaptive_thresholds": False},
            {"num_query_threads": 1, "use_sax": False},
        ):
            variant = built_index.knn(
                query, k=10, config=built_index.config.with_options(**overrides)
            )
            np.testing.assert_allclose(
                variant.distances, base.distances, atol=1e-9
            )

    def test_profile_consistency(self, built_index, corpus):
        query = make_random_walks(1, 64, seed=106)[0]
        answer = built_index.knn(query, k=1)
        profile = answer.profile
        assert profile.path != ""
        assert 0.0 <= profile.eapca_pruning <= 1.0
        assert profile.series_accessed <= built_index.num_series
        assert profile.distance_computations <= built_index.num_series
        assert profile.time_total > 0


class TestAdaptivePaths:
    def test_hard_query_takes_skip_sequential(self, corpus, tmp_path):
        """A far-away query prunes nothing, triggering the scan fallback."""
        config = HerculesConfig(
            leaf_capacity=60, num_build_threads=1, flush_threshold=1,
            l_max=2, sax_segments=8,
        )
        index = HerculesIndex.build(corpus, config, directory=tmp_path / "idx")
        rng = np.random.default_rng(107)
        hostile = rng.uniform(-40, 40, size=64).astype(np.float32)
        answer = index.knn(hostile, k=1)
        assert answer.profile.path in ("eapca-skipseq", "sax-skipseq")
        expected = brute_force_knn(corpus, hostile, 1)
        np.testing.assert_allclose(answer.distances, expected, atol=1e-6)
        index.close()

    def test_nothresh_never_skips(self, corpus, tmp_path):
        config = HerculesConfig(
            leaf_capacity=60, num_build_threads=1, flush_threshold=1,
            adaptive_thresholds=False, l_max=2, sax_segments=8,
        )
        index = HerculesIndex.build(corpus, config, directory=tmp_path / "idx")
        rng = np.random.default_rng(108)
        hostile = rng.uniform(-40, 40, size=64).astype(np.float32)
        answer = index.knn(hostile, k=1)
        assert answer.profile.path == "full-four-phase"
        index.close()


class TestPersistence:
    def test_open_returns_identical_answers(self, built_index, corpus):
        queries = make_random_walks(5, 64, seed=109)
        reopened = HerculesIndex.open(built_index.directory)
        try:
            assert reopened.num_series == built_index.num_series
            assert reopened.num_leaves == built_index.num_leaves
            for q in queries:
                a = built_index.knn(q, k=3)
                b = reopened.knn(q, k=3)
                np.testing.assert_allclose(a.distances, b.distances, atol=1e-9)
                np.testing.assert_array_equal(a.positions, b.positions)
        finally:
            reopened.close()

    def test_open_missing_directory(self, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            HerculesIndex.open(tmp_path / "nope")

    def test_closed_index_rejects_queries(self, corpus, tmp_path):
        config = HerculesConfig(
            leaf_capacity=100, num_build_threads=1, flush_threshold=1,
            sax_segments=8,
        )
        index = HerculesIndex.build(
            corpus[:200], config, directory=tmp_path / "idx"
        )
        index.close()
        with pytest.raises(IndexStateError):
            index.knn(corpus[0], k=1)
