"""Build-worker supervision: dead workers, stalls, malformed replies.

The scripted workers here are top-level functions (picklable under any
start method) that misbehave in one specific way — die after claiming a
task, hang forever, answer out of protocol, or fail once — injected into
:func:`build_shards_in_processes` through its ``worker_main`` hook.
One-shot misbehaviour is latched through an ``O_EXCL`` file named in the
environment, so the respawned replacement behaves normally and the test
asserts *recovery*, not just failure.
"""

import os
import time

import numpy as np
import pytest

from repro.core import HerculesConfig, HerculesIndex, partition_rows
from repro.core.shard_worker import (
    build_shards_in_processes,
    build_worker_main,
    mp_context,
    reap_processes,
)
from repro.errors import ShardError, WorkerSupervisionError

from ..conftest import make_random_walks

LATCH_ENV = "REPRO_TEST_SUPERVISION_LATCH"


def _claim_latch() -> bool:
    """True exactly once per latch file across every process."""
    try:
        fd = os.open(os.environ[LATCH_ENV], os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _die_once_worker(task_queue, result_queue, *args) -> None:
    """Claims a task, then dies — but only the first worker to run."""
    if _claim_latch():
        task = task_queue.get()
        if task is None:
            return
        result_queue.put(("claim", task[0], os.getpid()))
        time.sleep(0.5)  # let the claim message flush before dying
        os._exit(3)
    build_worker_main(task_queue, result_queue, *args)


def _die_always_worker(task_queue, result_queue, *args) -> None:
    """Every incarnation claims a task and dies."""
    task = task_queue.get()
    if task is None:
        return
    result_queue.put(("claim", task[0], os.getpid()))
    time.sleep(0.3)
    os._exit(5)


def _hang_worker(task_queue, result_queue, *args) -> None:
    """Never claims, never replies: pure stall."""
    time.sleep(600)


def _malformed_worker(task_queue, result_queue, *args) -> None:
    """Replies out of protocol."""
    task_queue.get()
    result_queue.put("scrambled nonsense")
    time.sleep(600)


def _error_once_worker(task_queue, result_queue, *args) -> None:
    """Reports one scripted in-worker build failure, then behaves."""
    if _claim_latch():
        task = task_queue.get()
        if task is None:
            return
        result_queue.put(("claim", task[0], os.getpid()))
        result_queue.put(("error", task[0], "scripted failure"))
    build_worker_main(task_queue, result_queue, *args)


def _error_always_worker(task_queue, result_queue, *args) -> None:
    """Reports every task as failed, forever."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        result_queue.put(("claim", task[0], os.getpid()))
        result_queue.put(("error", task[0], "scripted permanent failure"))


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        shard_poll_seconds=0.05,
        build_stall_timeout=60.0,
        build_join_timeout=5.0,
    )
    base.update(overrides)
    return HerculesConfig(**base)


@pytest.fixture()
def latch(tmp_path, monkeypatch):
    path = tmp_path / "latch"
    monkeypatch.setenv(LATCH_ENV, str(path))
    return path


def _run(tmp_path, worker_main, config, num_shards=3, rows=90):
    data = make_random_walks(rows, 16, seed=3)
    ranges = partition_rows(rows, num_shards)
    shard_dirs = [tmp_path / f"shard-{i:04d}" for i in range(num_shards)]
    replies, supervision = build_shards_in_processes(
        data, ranges, shard_dirs, config, workers=2,
        trace_enabled=False, worker_main=worker_main,
    )
    return data, ranges, shard_dirs, replies, supervision


class TestDeadWorkerRecovery:
    def test_requeues_and_respawns_after_worker_death(self, tmp_path, latch):
        data, ranges, shard_dirs, replies, supervision = _run(
            tmp_path, _die_once_worker, _config(max_worker_restarts=2)
        )
        assert supervision.worker_restarts == 1
        assert supervision.requeued_tasks >= 1
        assert supervision.events
        assert sorted(replies) == [0, 1, 2]
        # The requeued shard rebuilt from clean ground into a valid index.
        for (start, stop), shard_dir in zip(ranges, shard_dirs):
            with HerculesIndex.open(shard_dir) as shard:
                assert shard.num_series == stop - start
                answer = shard.knn(data[start], k=1)
                assert answer.distances[0] == pytest.approx(0.0, abs=1e-5)

    def test_exhausted_restart_budget_fails_loudly(self, tmp_path):
        config = _config(max_worker_restarts=0)
        with pytest.raises(WorkerSupervisionError, match="restart budget"):
            _run(tmp_path, _die_always_worker, config)


class TestStallDetection:
    def test_stalled_build_hits_watchdog(self, tmp_path):
        config = _config(build_stall_timeout=0.5)
        with pytest.raises(WorkerSupervisionError, match="stalled"):
            _run(tmp_path, _hang_worker, config)


class TestProtocolValidation:
    def test_malformed_reply_raises_shard_error(self, tmp_path):
        with pytest.raises(ShardError, match="malformed reply"):
            _run(tmp_path, _malformed_worker, _config())


class TestInWorkerErrors:
    def test_error_reply_is_retried_then_succeeds(self, tmp_path, latch):
        data, ranges, shard_dirs, replies, supervision = _run(
            tmp_path, _error_once_worker, _config(shard_retry_attempts=2)
        )
        assert supervision.task_retries == 1
        assert supervision.worker_restarts == 0
        assert sorted(replies) == [0, 1, 2]

    def test_error_reply_exhausts_attempts(self, tmp_path):
        config = _config(shard_retry_attempts=2)
        with pytest.raises(ShardError, match="after 2 attempts"):
            _run(tmp_path, _error_always_worker, config)


class TestReapEscalation:
    def test_reap_escalates_stuck_process(self):
        ctx = mp_context()
        proc = ctx.Process(target=time.sleep, args=(600,), daemon=True)
        proc.start()
        escalated = reap_processes([proc], timeout=0.2, label="test")
        assert escalated == 1
        assert not proc.is_alive()

    def test_reap_leaves_prompt_exits_alone(self):
        ctx = mp_context()
        proc = ctx.Process(target=time.sleep, args=(0.01,), daemon=True)
        proc.start()
        escalated = reap_processes([proc], timeout=5.0, label="test")
        assert escalated == 0
        assert not proc.is_alive()


class TestSupervisionSurfacing:
    def test_restart_counts_reach_build_report_and_metrics(
        self, tmp_path, latch
    ):
        from repro import obs
        from repro.core import ShardedIndex

        data = make_random_walks(90, 16, seed=3)
        import repro.core.shard_worker as sw

        original = sw.build_shards_in_processes

        def with_scripted_worker(*args, **kwargs):
            kwargs["worker_main"] = _die_once_worker
            return original(*args, **kwargs)

        import unittest.mock as mock

        with mock.patch.object(
            sw, "build_shards_in_processes", with_scripted_worker
        ), mock.patch(
            "repro.core.sharding.build_shards_in_processes",
            with_scripted_worker,
        ):
            index = ShardedIndex.build(
                data,
                _config(num_shards=3, shard_workers=2, max_worker_restarts=2),
                directory=tmp_path / "idx",
            )
        report = index.build_report
        assert report.worker_restarts == 1
        assert report.requeued_tasks >= 1
        registry = obs.MetricsRegistry()
        obs.record_build(registry, report)
        summary = registry.summary()
        assert summary["counters"]["build.worker_restarts"] == 1
        assert summary["counters"]["build.requeued_tasks"] >= 1
        index.close()
