"""Open-time verification levels, legacy directories, and damage reporting."""

import logging

import numpy as np
import pytest

from repro.core import HerculesConfig, HerculesIndex
from repro.errors import ChecksumError, ManifestError, StorageError
from repro.storage import manifest as manifest_mod

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    data = make_random_walks(100, 32, seed=9)
    directory = tmp_path_factory.mktemp("verify") / "index"
    config = HerculesConfig(leaf_capacity=20, num_build_threads=1, flush_threshold=1)
    index = HerculesIndex.build(data, config, directory=directory)
    answer = index.knn(data[0], k=2)
    index.close()
    return directory, data, answer


def _flip(path, offset=50):
    blob = bytearray(path.read_bytes())
    blob[offset % len(blob)] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestVerifyLevels:
    def test_build_commits_a_manifest(self, built):
        directory, _, _ = built
        manifest = manifest_mod.load_manifest(directory)
        assert set(manifest.artifacts) == {"lrd.bin", "lsd.bin", "htree.bin"}
        assert manifest.num_series == 100

    def test_full_open_matches_build_answers(self, built):
        directory, data, ref = built
        with HerculesIndex.open(directory, verify="full") as index:
            answer = index.knn(data[0], k=2)
            np.testing.assert_allclose(answer.distances, ref.distances)

    def test_invalid_level_rejected(self, built):
        directory, _, _ = built
        with pytest.raises(ValueError):
            HerculesIndex.open(directory, verify="paranoid")

    def test_default_level_is_quick(self, built, tmp_path):
        import shutil

        directory, _, _ = built
        copy = tmp_path / "copy"
        shutil.copytree(directory, copy)
        _flip(copy / "lrd.bin")
        # quick (default) does not hash artifact bytes...
        HerculesIndex.open(copy).close()
        # ...full does.
        with pytest.raises(ChecksumError, match="lrd.bin"):
            HerculesIndex.open(copy, verify="full")


class TestLegacyDirectories:
    def test_manifestless_directory_opens_with_warning(
        self, built, tmp_path, caplog
    ):
        import shutil

        directory, data, ref = built
        legacy = tmp_path / "legacy"
        shutil.copytree(directory, legacy)
        (legacy / manifest_mod.MANIFEST_FILENAME).unlink()
        with caplog.at_level(logging.WARNING, logger="repro.core.index"):
            index = HerculesIndex.open(legacy)
        assert any("pre-manifest" in r.message for r in caplog.records)
        answer = index.knn(data[0], k=2)
        np.testing.assert_allclose(answer.distances, ref.distances)
        index.close()

    def test_legacy_full_open_still_checks_invariants(self, built, tmp_path):
        import shutil

        directory, _, _ = built
        legacy = tmp_path / "legacy-torn"
        shutil.copytree(directory, legacy)
        (legacy / manifest_mod.MANIFEST_FILENAME).unlink()
        # Drop the last LSD word: counts now disagree across artifacts.
        lsd = legacy / "lsd.bin"
        lsd.write_bytes(lsd.read_bytes()[:-16])
        with pytest.raises(StorageError, match="lsd.bin"):
            HerculesIndex.open(legacy, verify="full")
        # The permissive level preserves the old behaviour.
        HerculesIndex.open(legacy, verify="off").close()


class TestDamageDetection:
    @pytest.mark.parametrize("artifact", ["lrd.bin", "lsd.bin", "htree.bin"])
    def test_single_flipped_byte_detected_at_full(
        self, built, tmp_path, artifact
    ):
        import shutil

        directory, _, _ = built
        copy = tmp_path / f"flip-{artifact}"
        shutil.copytree(directory, copy)
        _flip(copy / artifact)
        with pytest.raises(ChecksumError, match=artifact):
            HerculesIndex.open(copy, verify="full")

    def test_flipped_manifest_byte_detected(self, built, tmp_path):
        import shutil

        directory, _, _ = built
        copy = tmp_path / "flip-manifest"
        shutil.copytree(directory, copy)
        _flip(copy / manifest_mod.MANIFEST_FILENAME)
        with pytest.raises(ManifestError):
            HerculesIndex.open(copy)

    def test_truncation_detected_at_quick(self, built, tmp_path):
        import shutil

        directory, _, _ = built
        copy = tmp_path / "trunc"
        shutil.copytree(directory, copy)
        lrd = copy / "lrd.bin"
        lrd.write_bytes(lrd.read_bytes()[:-128])
        with pytest.raises(ChecksumError, match="lrd.bin"):
            HerculesIndex.open(copy)  # quick already catches size damage

    def test_missing_artifact_detected_at_quick(self, built, tmp_path):
        import shutil

        directory, _, _ = built
        copy = tmp_path / "missing"
        shutil.copytree(directory, copy)
        (copy / "lsd.bin").unlink()
        with pytest.raises(StorageError, match="lsd.bin"):
            HerculesIndex.open(copy)


@pytest.fixture(scope="module")
def built_prefiltered(tmp_path_factory):
    data = make_random_walks(100, 32, seed=29)
    directory = tmp_path_factory.mktemp("verify-prefilter") / "index"
    config = HerculesConfig(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        prefilter=True,
        prefilter_bits=4,
    )
    index = HerculesIndex.build(data, config, directory=directory)
    answer = index.knn(data[0], k=2)
    index.close()
    return directory, data, answer


class TestPrefilterDirectories:
    """signatures.bin is a first-class artifact: manifested, checksummed,
    and — uniquely — allowed to be absent in legacy directories."""

    def test_build_commits_the_signatures_artifact(self, built_prefiltered):
        directory, data, ref = built_prefiltered
        manifest = manifest_mod.load_manifest(directory)
        assert set(manifest.artifacts) == {
            "lrd.bin",
            "lsd.bin",
            "htree.bin",
            "signatures.bin",
        }
        with HerculesIndex.open(directory, verify="full") as index:
            assert index.prefilter_active
            answer = index.knn(data[0], k=2)
            np.testing.assert_allclose(answer.distances, ref.distances)

    def test_flipped_signature_byte_detected_at_full(
        self, built_prefiltered, tmp_path
    ):
        import shutil

        directory, _, _ = built_prefiltered
        copy = tmp_path / "flip-signatures"
        shutil.copytree(directory, copy)
        _flip(copy / "signatures.bin")
        with pytest.raises(ChecksumError, match="signatures.bin"):
            HerculesIndex.open(copy, verify="full")

    def test_manifested_but_missing_signatures_is_loud(
        self, built_prefiltered, tmp_path
    ):
        import shutil

        directory, _, _ = built_prefiltered
        copy = tmp_path / "torn"
        shutil.copytree(directory, copy)
        (copy / "signatures.bin").unlink()
        # The manifest still lists the artifact: this is a torn or
        # tampered directory, not a legacy one — refuse, don't fall back.
        with pytest.raises(StorageError, match="signatures.bin"):
            HerculesIndex.open(copy)

    def test_legacy_pre_prefilter_directory_falls_back(
        self, built_prefiltered, tmp_path, caplog
    ):
        import shutil

        directory, data, ref = built_prefiltered
        legacy = tmp_path / "legacy-prefilter"
        shutil.copytree(directory, legacy)
        # A directory written before the tier existed: no manifest entry
        # and no signature file, but a config that now asks for them.
        (legacy / manifest_mod.MANIFEST_FILENAME).unlink()
        (legacy / "signatures.bin").unlink()
        with caplog.at_level(logging.WARNING, logger="repro.core.index"):
            index = HerculesIndex.open(legacy)
        assert any("pre-manifest" in r.message for r in caplog.records)
        assert any("pre-filter disabled" in r.message for r in caplog.records)
        assert not index.prefilter_active
        assert index.signatures is None
        # Queries take the unfiltered path and still answer exactly.
        answer = index.knn(data[0], k=2)
        np.testing.assert_allclose(answer.distances, ref.distances)
        assert answer.profile.prefilter_screened == 0
        index.close()

    def test_mixed_generation_signatures_rejected(
        self, built_prefiltered, tmp_path
    ):
        import shutil

        directory, _, _ = built_prefiltered
        other_data = make_random_walks(60, 32, seed=31)
        other_dir = tmp_path / "other"
        HerculesIndex.build(
            other_data,
            HerculesConfig(
                leaf_capacity=20,
                num_build_threads=1,
                flush_threshold=1,
                prefilter=True,
                prefilter_bits=4,
            ),
            directory=other_dir,
        ).close()
        mixed = tmp_path / "mixed"
        shutil.copytree(directory, mixed)
        shutil.copy(other_dir / "signatures.bin", mixed / "signatures.bin")
        # verify="off" skips the manifest, so the signature loader's own
        # row-count cross-check is the last line of defence.
        with pytest.raises(StorageError, match="mixed generations"):
            HerculesIndex.open(mixed, verify="off")
