"""Parity gates for the signature pre-filter: answers never change.

Every test queries the *same* materialized index with the pre-filter
toggled through the query-time config, so distances AND positions must
match bit-for-bit (positions are LRD file positions — comparing across
independent builds would be confounded by layout).
"""

import numpy as np
import pytest

from repro.core import HerculesConfig, HerculesIndex, ShardedIndex

from ..conftest import make_random_walks

_LENGTH = 64


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        prefilter=True,
        prefilter_bits=5,
    )
    base.update(overrides)
    return HerculesConfig(**base)


@pytest.fixture(scope="module")
def data():
    return make_random_walks(400, _LENGTH, seed=17)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(3)
    noisy = data[:6] + 0.3 * rng.standard_normal((6, _LENGTH))
    hard = rng.standard_normal((3, _LENGTH))
    copies = data[100:103]
    return np.vstack([noisy, hard, copies]).astype(np.float32)


@pytest.fixture(scope="module")
def index(data, tmp_path_factory):
    directory = tmp_path_factory.mktemp("prefilter-parity") / "index"
    built = HerculesIndex.build(data, _config(), directory=directory)
    yield built
    built.close()


@pytest.fixture(scope="module")
def unfiltered(index):
    return index.config.with_options(prefilter=False)


class TestExactParity:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_bit_for_bit(self, index, unfiltered, queries, k):
        for query in queries:
            filtered = index.knn(query, k=k)
            plain = index.knn(query, k=k, config=unfiltered)
            np.testing.assert_array_equal(
                filtered.distances, plain.distances
            )
            np.testing.assert_array_equal(
                filtered.positions, plain.positions
            )

    def test_screen_engages_only_when_enabled(self, index, unfiltered, queries):
        for query in queries:
            filtered = index.knn(query, k=5)
            plain = index.knn(query, k=5, config=unfiltered)
            assert filtered.profile.prefilter_screened == index.num_series
            assert (
                0
                <= filtered.profile.prefilter_survivors
                <= index.num_series
            )
            assert filtered.profile.prefilter_pruned_fraction is not None
            assert plain.profile.prefilter_screened == 0
            assert plain.profile.prefilter_pruned_fraction is None

    def test_screen_only_subtracts_work(self, index, unfiltered, queries):
        for query in queries:
            filtered = index.knn(query, k=5)
            plain = index.knn(query, k=5, config=unfiltered)
            # Same refine path (the decision is taken pre-screen), so a
            # valid lower bound can only remove reads, never add them.
            assert filtered.profile.path == plain.profile.path
            assert (
                filtered.profile.series_accessed
                <= plain.profile.series_accessed
            )
            assert (
                filtered.profile.candidate_leaves
                <= plain.profile.candidate_leaves
            )


class TestOtherModes:
    def test_progressive_converges_to_unfiltered_exact(
        self, index, unfiltered, queries
    ):
        for query in queries[:4]:
            exact = index.knn(query, k=3, config=unfiltered)
            final = None
            for step in index.knn_progressive(query, k=3):
                final = step
            np.testing.assert_array_equal(final.distances, exact.distances)
            np.testing.assert_array_equal(final.positions, exact.positions)

    def test_approximate_unaffected(self, index, queries):
        # The approximate phase never consults signatures; its answers
        # are real distances of really-stored rows either way.
        for query in queries[:4]:
            answer = index.knn_approx(query, k=3)
            for dist, pos in zip(answer.distances, answer.positions):
                row = index.get_series(int(pos)).astype(np.float64)
                true = float(
                    np.sqrt(((row - query.astype(np.float64)) ** 2).sum())
                )
                assert dist == pytest.approx(true, abs=1e-6)

    def test_epsilon_guarantee_holds_filtered(self, index, unfiltered, queries):
        # Under epsilon-approximate pruning the screen scales its bound
        # by the same prune factor; answers must stay within (1+eps).
        eps = 0.1
        approx_cfg = index.config.with_options(epsilon=eps)
        for query in queries:
            exact = index.knn(query, k=5, config=unfiltered)
            loose = index.knn(query, k=5, config=approx_cfg)
            assert (
                loose.distances <= (1.0 + eps) * exact.distances + 1e-9
            ).all()


class TestShardedParity:
    @pytest.fixture(scope="class", params=[1, 2, 4], ids=["n1", "n2", "n4"])
    def sharded(self, request, data, tmp_path_factory):
        directory = (
            tmp_path_factory.mktemp(f"prefilter-shards{request.param}")
            / "index"
        )
        built = ShardedIndex.build(
            data,
            _config(num_shards=request.param, shard_workers=0),
            directory=directory,
        )
        yield built
        built.close()

    def test_bit_for_bit(self, sharded, data, queries):
        plain_cfg = sharded.config.with_options(prefilter=False)
        for query in queries:
            filtered = sharded.knn(query, k=5)
            plain = sharded.knn(query, k=5, config=plain_cfg)
            np.testing.assert_array_equal(
                filtered.distances, plain.distances
            )
            np.testing.assert_array_equal(
                filtered.positions, plain.positions
            )

    def test_counters_merge_across_shards(self, sharded, data, queries):
        answer = sharded.knn(queries[0], k=5)
        # Every shard screens its whole partition; the merged profile
        # sums to the full dataset.
        assert answer.profile.prefilter_screened == data.shape[0]
        assert answer.profile.prefilter_pruned_fraction is not None
        # num_shards=1 builds a plain index; only the truly sharded
        # answers carry per-shard breakdowns to sum over.
        for _, shard_answer in getattr(answer, "shard_answers", ()):
            assert shard_answer.profile.prefilter_screened > 0

    def test_matches_single_index_distances(self, sharded, index, queries):
        # Layout differs between a sharded and a single build, so compare
        # distances (value identity), not file positions.
        for query in queries:
            np.testing.assert_allclose(
                sharded.knn(query, k=5).distances,
                index.knn(query, k=5).distances,
                atol=1e-9,
            )
