"""Shard-parallel engine: partitioning, parity with a single index, layout."""

import numpy as np
import pytest

from repro.core import (
    HerculesConfig,
    HerculesIndex,
    LinkedResultSet,
    ShardedIndex,
    ShardedQueryAnswer,
    SharedBsf,
    open_index,
    partition_rows,
    record_sharded_profile,
)
from repro.errors import ConfigError, IndexStateError
from repro.obs import MetricsRegistry
from repro.storage import manifest as manifest_mod

from ..conftest import make_random_walks


def _config(**overrides):
    base = dict(leaf_capacity=20, num_build_threads=1, flush_threshold=1)
    base.update(overrides)
    return HerculesConfig(**base)


@pytest.fixture(scope="module")
def data():
    return make_random_walks(240, 32, seed=11)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(5)
    noise = 0.05 * rng.standard_normal((4, 32))
    return (data[:4] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def single(data, tmp_path_factory):
    directory = tmp_path_factory.mktemp("single") / "index"
    index = HerculesIndex.build(data, _config(), directory=directory)
    yield index
    index.close()


@pytest.fixture(scope="module", params=[2, 4], ids=["shards2", "shards4"])
def sharded(request, data, tmp_path_factory):
    directory = tmp_path_factory.mktemp(f"sharded{request.param}") / "index"
    index = ShardedIndex.build(
        data,
        _config(num_shards=request.param, shard_workers=0),
        directory=directory,
    )
    yield index
    index.close()


class TestPartitionRows:
    def test_balanced_and_contiguous(self):
        ranges = partition_rows(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_exact_division(self):
        assert partition_rows(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_single_shard_is_whole_range(self):
        assert partition_rows(100, 1) == [(0, 100)]

    def test_sizes_differ_by_at_most_one(self):
        sizes = [stop - start for start, stop in partition_rows(1003, 7)]
        assert sum(sizes) == 1003
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigError, match="num_shards"):
            partition_rows(10, 0)

    def test_rejects_more_shards_than_rows(self):
        with pytest.raises(ConfigError, match="at least one series"):
            partition_rows(3, 4)


class TestSharedBsf:
    def test_publish_keeps_minimum(self):
        link = SharedBsf()
        assert link.get() == np.inf
        link.publish(4.0)
        link.publish(9.0)  # worse, must not regress the bound
        assert link.get() == 4.0
        link.publish(1.0)
        assert link.get() == 1.0

    def test_reset_returns_to_inf(self):
        link = SharedBsf()
        link.publish(2.0)
        link.reset()
        assert link.get() == np.inf


class TestLinkedResultSet:
    def test_local_improvement_published_immediately(self):
        link = SharedBsf()
        results = LinkedResultSet(1, link)
        results.update_squared(4.0, 0)
        assert link.get() == 4.0
        results.update_squared(1.0, 1)
        assert link.get() == 1.0

    def test_reads_return_min_of_local_and_link(self):
        link = SharedBsf()
        link.publish(4.0)
        results = LinkedResultSet(1, link)  # snapshots the link at creation
        assert results.bsf_squared == 4.0
        results.update_squared(9.0, 0)  # local k-th best is now 9
        assert results.bsf_squared == 4.0  # link is tighter

    def test_refresh_is_throttled(self):
        link = SharedBsf()
        results = LinkedResultSet(1, link)
        link.publish(2.0)  # published after the creation snapshot
        refresh = LinkedResultSet._REFRESH_READS
        stale = [results.bsf_squared for _ in range(refresh - 1)]
        assert all(value == np.inf for value in stale)
        assert results.bsf_squared == 2.0  # refresh-th read picks it up

    def test_batch_updates_publish(self):
        link = SharedBsf()
        results = LinkedResultSet(2, link)
        results.update_batch_squared(
            np.array([9.0, 4.0, 16.0]), np.array([0, 1, 2])
        )
        assert link.get() == 9.0  # k-th (2nd) best of {4, 9, 16}


class TestExactParity:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_value_identical_to_single_index(self, single, sharded, queries, k):
        for query in queries:
            ref = single.knn(query, k=k)
            answer = sharded.knn(query, k=k)
            np.testing.assert_array_equal(answer.distances, ref.distances)

    def test_positions_resolve_to_true_neighbors(self, sharded, queries):
        # Positions are global (shard row_base + local storage position):
        # fetching each one back must reproduce the reported distance.
        query = queries[0]
        answer = sharded.knn(query, k=5)
        for distance, position in zip(answer.distances, answer.positions):
            actual = np.linalg.norm(query - sharded.get_series(position))
            np.testing.assert_allclose(actual, distance, rtol=1e-5)

    def test_answer_carries_per_shard_breakdown(self, sharded, queries):
        answer = sharded.knn(queries[0], k=3)
        assert isinstance(answer, ShardedQueryAnswer)
        assert answer.profile.path == "sharded"
        assert len(answer.shard_answers) == sharded.num_shards
        assert [sid for sid, _ in answer.shard_answers] == list(
            range(sharded.num_shards)
        )

    def test_batch_matches_single_queries(self, sharded, queries):
        batch = sharded.knn_batch(queries, k=2)
        assert len(batch) == len(queries)
        for query, answer in zip(queries, batch):
            one = sharded.knn(query, k=2)
            np.testing.assert_array_equal(answer.distances, one.distances)


class TestApproximateParity:
    def test_exhaustive_l_max_matches_exact(self, single, sharded, queries):
        # With l_max >= the leaf count the best-first probe runs to
        # pruning exhaustion, so both paths must produce the exact answer.
        l_max = single.num_leaves
        for query in queries:
            ref = single.knn(query, k=10)
            answer = sharded.knn_approx(query, k=10, l_max=l_max)
            np.testing.assert_array_equal(answer.distances, ref.distances)

    def test_small_l_max_is_at_least_as_good(self, single, sharded, queries):
        # N shards probe N * l_max leaves total: never a worse k-th best.
        query = queries[1]
        ref = single.knn_approx(query, k=5, l_max=2)
        answer = sharded.knn_approx(query, k=5, l_max=2)
        assert answer.distances[-1] <= ref.distances[-1] + 1e-6


class TestProcessWorkers:
    def test_process_build_matches_single_index(
        self, single, data, queries, tmp_path
    ):
        index = ShardedIndex.build(
            data,
            _config(num_shards=2, shard_workers=2),
            directory=tmp_path / "proc",
        )
        try:
            for query in queries:
                ref = single.knn(query, k=5)
                answer = index.knn(query, k=5)
                np.testing.assert_array_equal(answer.distances, ref.distances)
        finally:
            index.close()

    def test_worker_metrics_merge_home(self, data, tmp_path):
        index = ShardedIndex.build(
            data,
            _config(num_shards=2, shard_workers=2),
            directory=tmp_path / "metrics",
        )
        try:
            registry = MetricsRegistry()
            index.merge_worker_metrics(registry)
            summary = registry.summary()
            total = sum(
                summary["counters"][f"shard.{i}.build.num_series"]
                for i in range(2)
            )
            assert total == data.shape[0]
        finally:
            index.close()

    def test_query_pool_matches_thread_path(self, sharded, queries):
        pooled = ShardedIndex.open(sharded.directory, workers=2)
        try:
            for query in queries:
                ref = sharded.knn(query, k=10)
                answer = pooled.knn(query, k=10)
                np.testing.assert_array_equal(answer.distances, ref.distances)
                np.testing.assert_array_equal(answer.positions, ref.positions)
        finally:
            pooled.close()

    def test_query_pool_approximate(self, sharded, queries):
        pooled = ShardedIndex.open(sharded.directory, workers=2)
        try:
            ref = sharded.knn_approx(queries[0], k=3, l_max=4)
            answer = pooled.knn_approx(queries[0], k=3, l_max=4)
            np.testing.assert_array_equal(answer.distances, ref.distances)
        finally:
            pooled.close()


class TestLayout:
    def test_single_shard_delegates_to_plain_layout(self, data, tmp_path):
        plain_dir = tmp_path / "plain"
        delegated_dir = tmp_path / "delegated"
        plain = HerculesIndex.build(data, _config(), directory=plain_dir)
        plain.close()
        delegated = ShardedIndex.build(
            data, _config(num_shards=1), directory=delegated_dir
        )
        assert isinstance(delegated, HerculesIndex)
        delegated.close()
        assert not (delegated_dir / manifest_mod.SHARDS_FILENAME).exists()
        for name in ("lrd.bin", "lsd.bin", "htree.bin"):
            assert (
                (delegated_dir / name).read_bytes()
                == (plain_dir / name).read_bytes()
            ), f"{name} differs between --shards 1 and the classic build"

    def test_sharded_directory_shape(self, sharded):
        directory = sharded.directory
        assert (directory / manifest_mod.SHARDS_FILENAME).exists()
        assert not (directory / manifest_mod.MANIFEST_FILENAME).exists()
        for shard_id in range(sharded.num_shards):
            shard_dir = directory / manifest_mod.shard_dirname(shard_id)
            assert (shard_dir / manifest_mod.MANIFEST_FILENAME).exists()
            assert (shard_dir / "lrd.bin").exists()

    def test_open_index_dispatches_on_layout(self, sharded, single):
        via_sharded = open_index(sharded.directory)
        assert isinstance(via_sharded, ShardedIndex)
        via_sharded.close()
        via_plain = open_index(single.directory)
        assert isinstance(via_plain, HerculesIndex)
        via_plain.close()

    def test_rebuild_bumps_generation_and_prunes_shards(self, data, tmp_path):
        directory = tmp_path / "regen"
        first = ShardedIndex.build(
            data, _config(num_shards=4, shard_workers=0), directory=directory
        )
        assert first.generation == 1
        first.close()
        second = ShardedIndex.build(
            data, _config(num_shards=2, shard_workers=0), directory=directory
        )
        try:
            assert second.generation == 2
            assert not (directory / manifest_mod.shard_dirname(2)).exists()
            assert not (directory / manifest_mod.shard_dirname(3)).exists()
        finally:
            second.close()

    def test_rejects_more_shards_than_series(self, tmp_path):
        tiny = make_random_walks(3, 32, seed=1)
        with pytest.raises(ConfigError, match="shards"):
            ShardedIndex.build(
                tiny,
                _config(num_shards=4, shard_workers=0),
                directory=tmp_path / "tiny",
            )


class TestGlobalPositions:
    def test_answers_span_multiple_shards(self, sharded, data, queries):
        answer = sharded.knn(queries[0], k=100)
        assert (answer.positions >= 0).all()
        assert (answer.positions < data.shape[0]).all()
        # With k approaching half the dataset, every shard contributes.
        assert (answer.positions >= sharded.row_bases[-1]).any()
        assert (answer.positions < sharded.row_bases[1]).any()

    def test_get_series_rejects_out_of_range(self, sharded, data):
        with pytest.raises(ValueError, match="outside"):
            sharded.get_series(data.shape[0])
        with pytest.raises(ValueError, match="outside"):
            sharded.get_series(-1)

    def test_row_bases_are_contiguous(self, sharded, data):
        sizes = [shard.num_series for shard in sharded.shards]
        assert sum(sizes) == data.shape[0]
        expected = 0
        for base, size in zip(sharded.row_bases, sizes):
            assert base == expected
            expected += size


class TestObservabilityHooks:
    def test_per_shard_cache_metrics(self, sharded, queries):
        index = ShardedIndex.open(sharded.directory, cache_bytes=1 << 20)
        try:
            registry = MetricsRegistry()
            index.bind_metrics(registry)
            index.knn(queries[0], k=5)
            index.knn(queries[0], k=5)
            counters = registry.summary()["counters"]
            shard0 = [
                name
                for name in counters
                if name.startswith("cache.leaf.shard0.")
            ]
            assert shard0, f"no shard-0 cache counters in {sorted(counters)}"
            assert any(counters[name] > 0 for name in shard0)
        finally:
            index.close()

    def test_record_sharded_profile(self, sharded, queries):
        registry = MetricsRegistry()
        answer = sharded.knn(queries[0], k=3)
        record_sharded_profile(registry, answer, num_series=sharded.num_series)
        counters = registry.summary()["counters"]
        assert counters["query.count"] == 1
        assert counters["query.path.sharded"] == 1
        for shard_id in range(sharded.num_shards):
            assert counters[f"shard.{shard_id}.query.count"] == 1

    def test_merged_profile_aggregates_work(self, sharded, queries):
        answer = sharded.knn(queries[0], k=3)
        per_shard = [a.profile for _, a in answer.shard_answers]
        merged = answer.profile
        assert merged.distance_computations == sum(
            p.distance_computations for p in per_shard
        )
        assert merged.series_accessed == sum(
            p.series_accessed for p in per_shard
        )
        assert 0.0 <= merged.eapca_pruning <= 1.0


class TestLifecycle:
    def test_closed_index_refuses_queries(self, data, queries, tmp_path):
        index = ShardedIndex.build(
            data,
            _config(num_shards=2, shard_workers=0),
            directory=tmp_path / "closed",
        )
        index.close()
        index.close()  # idempotent
        with pytest.raises(IndexStateError, match="closed"):
            index.knn(queries[0], k=1)

    def test_context_manager_and_repr(self, data, tmp_path):
        with ShardedIndex.build(
            data,
            _config(num_shards=2, shard_workers=0),
            directory=tmp_path / "ctx",
        ) as index:
            assert "2 shards" in repr(index)
            assert index.num_series == data.shape[0]
