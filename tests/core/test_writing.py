"""Integration tests for index writing (Algorithms 6-9)."""

import numpy as np
import pytest

from repro.core.config import HerculesConfig
from repro.core.construction import build_tree
from repro.core.writing import (
    HTREE_FILENAME,
    LRD_FILENAME,
    LSD_FILENAME,
    write_index,
)
from repro.distance.lower_bounds import MU_MAX, MU_MIN, SD_MAX, SD_MIN
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile, SymbolFile
from repro.summarization.eapca import segment_stats
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace

from ..conftest import make_random_walks


def build_and_write(tmp_path, data, **config_kwargs):
    config = HerculesConfig(**config_kwargs)
    dataset = Dataset.from_array(data)
    spill = SeriesFile(tmp_path / "spill.bin", data.shape[1])
    ctx = build_tree(dataset, config, spill)
    sax_space = SaxSpace(config.sax_segments, config.sax_alphabet)
    result = write_index(ctx, tmp_path / "index", sax_space, settings={"v": 1})
    return ctx, result, sax_space


def subtree_series(ctx, node):
    """All raw series below a node, via the materialized LRDFile order."""
    lrd = SeriesFile(
        ctx_dir(ctx) / LRD_FILENAME, ctx.hbuffer.series_length, read_only=True
    )
    parts = [
        lrd.read_range(leaf.file_position, leaf.size)
        for leaf in node.iter_leaves_inorder()
        if leaf.size
    ]
    lrd.close()
    return np.concatenate(parts, axis=0)


def ctx_dir(ctx):
    return ctx._written_dir  # set by the helper below


@pytest.fixture
def written(tmp_path):
    data = make_random_walks(800, 64, seed=91)
    ctx, result, sax_space = build_and_write(
        tmp_path,
        data,
        leaf_capacity=60,
        num_build_threads=4,
        db_size=128,
        flush_threshold=2,
        num_write_threads=3,
        sax_segments=8,
    )
    ctx._written_dir = result.directory
    return data, ctx, result, sax_space


class TestMaterialization:
    def test_three_files_exist(self, written):
        _, ctx, result, _ = written
        for name in (LRD_FILENAME, LSD_FILENAME, HTREE_FILENAME):
            assert (result.directory / name).exists()

    def test_lrd_holds_every_series_in_leaf_inorder(self, written):
        data, ctx, result, _ = written
        lrd = SeriesFile(
            result.directory / LRD_FILENAME, data.shape[1], read_only=True
        )
        assert lrd.num_series == data.shape[0]
        # Leaf file positions tile [0, N) in inorder without gaps.
        expected = 0
        for leaf in ctx.root.iter_leaves_inorder():
            assert leaf.file_position == expected
            expected += leaf.size
        assert expected == data.shape[0]
        # Contents: multiset of rows matches the dataset.
        stored = lrd.read_range(0, lrd.num_series)
        np.testing.assert_array_equal(
            stored[np.lexsort(stored.T[::-1])], data[np.lexsort(data.T[::-1])]
        )
        lrd.close()

    def test_lsd_words_match_recomputed_sax(self, written):
        data, ctx, result, sax_space = written
        lrd = SeriesFile(
            result.directory / LRD_FILENAME, data.shape[1], read_only=True
        )
        lsd = SymbolFile(
            result.directory / LSD_FILENAME, sax_space.segments, read_only=True
        )
        stored = lrd.read_range(0, lrd.num_series)
        words = lsd.read_all()
        expected = sax_space.symbolize(paa(stored, sax_space.segments))
        np.testing.assert_array_equal(words, expected)
        lrd.close()
        lsd.close()


class TestSynopsisCompletion:
    def assert_internal_synopses_exact(self, data, ctx, result):
        """Every internal node's synopsis equals the exact box of its subtree."""
        lrd = SeriesFile(
            result.directory / LRD_FILENAME, data.shape[1], read_only=True
        )
        for node in ctx.root.iter_nodes_preorder():
            parts = [
                lrd.read_range(leaf.file_position, leaf.size)
                for leaf in node.iter_leaves_inorder()
                if leaf.size
            ]
            rows = np.concatenate(parts, axis=0)
            means, stds = segment_stats(rows, node.segmentation)
            np.testing.assert_allclose(
                node.synopsis[:, MU_MIN], means.min(axis=0), atol=1e-6
            )
            np.testing.assert_allclose(
                node.synopsis[:, MU_MAX], means.max(axis=0), atol=1e-6
            )
            np.testing.assert_allclose(
                node.synopsis[:, SD_MIN], stds.min(axis=0), atol=1e-6
            )
            np.testing.assert_allclose(
                node.synopsis[:, SD_MAX], stds.max(axis=0), atol=1e-6
            )
        lrd.close()

    def test_parallel_writing_completes_internal_synopses(self, written):
        data, ctx, result, _ = written
        self.assert_internal_synopses_exact(data, ctx, result)

    def test_sequential_writing_matches(self, tmp_path):
        data = make_random_walks(500, 32, seed=92)
        ctx, result, _ = build_and_write(
            tmp_path,
            data,
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            parallel_writing=False,
            sax_segments=8,
        )
        self.assert_internal_synopses_exact(data, ctx, result)

    def test_vsplit_heavy_tree_synopses_exact(self, tmp_path):
        """Small initial segmentation forces vertical splits."""
        data = make_random_walks(600, 64, seed=93)
        ctx, result, _ = build_and_write(
            tmp_path,
            data,
            leaf_capacity=30,
            initial_segments=1,
            num_build_threads=1,
            flush_threshold=1,
            sax_segments=8,
        )
        assert any(
            node.policy is not None and node.policy.vertical
            for node in ctx.root.iter_nodes_preorder()
            if not node.is_leaf
        ), "expected at least one vertical split with initial_segments=1"
        self.assert_internal_synopses_exact(data, ctx, result)


class TestWriteResult:
    def test_counts(self, written):
        data, ctx, result, _ = written
        assert result.num_series == data.shape[0]
        assert result.num_leaves == sum(
            1 for _ in ctx.root.iter_leaves_inorder()
        )
        assert result.series_length == data.shape[1]
