"""Bit-for-bit parity of grouped batch insertion vs the per-row path.

Grouped batch insertion (``batched_inserts=True``, the default) promises
a tree *identical* to the per-row reference path — not equivalent,
identical: same node ids, same segmentations and split policies, same
synopsis bytes, same per-leaf series in the same order.  These tests pin
that promise at leaf capacities small enough to force splits in the
middle of batches, across claim sizes (including pathological ones), and
through flush/spill cycles.

HBuffer slot *numbers* are allowed to differ (groups store contiguously,
rows store in arrival order); leaf contents via :func:`leaf_data` are
not.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HerculesConfig, HerculesIndex
from repro.core.construction import build_tree, leaf_data
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.summarization.eapca import segment_stats

from ..conftest import make_random_walks


def build(tmp_path, data, tag, **config_kwargs):
    config = HerculesConfig(**config_kwargs)
    spill = SeriesFile(tmp_path / f"spill-{tag}.bin", data.shape[1])
    ctx = build_tree(Dataset.from_array(data), config, spill)
    return ctx, spill


def tree_fingerprint(ctx, include_storage: bool = True):
    """Everything observable about a tree, as comparable plain data.

    ``include_storage=False`` drops spill extents and HBuffer bookkeeping
    (used when comparing builds whose flush points legitimately differ —
    the *series* of every leaf are still compared byte-for-byte).
    """
    nodes = []
    for node in ctx.root.iter_nodes_preorder():
        policy = node.policy
        entry = {
            "id": node.node_id,
            "leaf": node.is_leaf,
            "size": node.size,
            "ends": node.segmentation.ends,
            "synopsis": node.synopsis.tobytes(),
            "policy": None
            if policy is None
            else (
                policy.split_segment,
                policy.vertical,
                policy.use_std,
                policy.threshold,
                policy.route_start,
                policy.route_end,
                policy.child_segmentation.ends,
            ),
        }
        if node.is_leaf:
            entry["data"] = leaf_data(ctx, node).tobytes()
            if include_storage:
                entry["extents"] = [
                    (e.position, e.count) for e in node.spill_extents
                ]
        nodes.append(entry)
    return {"nodes": nodes, "splits": ctx.splits.load(),
            "next_id": ctx.node_ids.load()}


class TestSequentialParity:
    """Per-row vs batched on the single-thread path: full identity."""

    def test_batched_matches_per_row(self, tmp_path):
        data = make_random_walks(600, 32, seed=200)
        kwargs = dict(leaf_capacity=10, num_build_threads=1, flush_threshold=1)
        per_row, _ = build(
            tmp_path, data, "row", batched_inserts=False, **kwargs
        )
        batched, _ = build(
            tmp_path, data, "batch", batched_inserts=True, **kwargs
        )
        assert tree_fingerprint(batched) == tree_fingerprint(per_row)

    def test_claim_size_is_immaterial(self, tmp_path):
        # Any claim decomposition — row-at-a-time, a prime stride, whole
        # DBuffer batches — must produce the identical tree.  Capacity 10
        # with claims of 64 forces splits in the middle of every group.
        data = make_random_walks(500, 32, seed=201)
        kwargs = dict(leaf_capacity=10, num_build_threads=1, flush_threshold=1)
        reference, _ = build(
            tmp_path, data, "row", batched_inserts=False, **kwargs
        )
        expected = tree_fingerprint(reference)
        for claim in (1, 7, 64, None):
            ctx, _ = build(
                tmp_path, data, f"claim-{claim}",
                batched_inserts=True, claim_size=claim, **kwargs,
            )
            assert tree_fingerprint(ctx) == expected, f"claim_size={claim}"

    def test_parity_through_flush_and_spill_cycles(self, tmp_path):
        # A small HBuffer forces repeated flushes; split redistribution
        # then re-spills leaf data.  Flush points depend only on batch
        # boundaries, so even spill extents must line up exactly.
        data = make_random_walks(700, 32, seed=202)
        kwargs = dict(
            leaf_capacity=25,
            num_build_threads=1,
            flush_threshold=1,
            db_size=64,
            buffer_capacity=192,
        )
        per_row, _ = build(
            tmp_path, data, "row", batched_inserts=False, **kwargs
        )
        batched, _ = build(
            tmp_path, data, "batch", batched_inserts=True, **kwargs
        )
        assert per_row.flushes.load() > 0  # the scenario exercises flushes
        assert tree_fingerprint(batched) == tree_fingerprint(per_row)

    def test_parity_on_degenerate_data(self, tmp_path):
        # Identical series defeat every split statistic: leaves go over
        # capacity through degenerate splits, which the batched path must
        # emulate row by row (insert one, retry) to keep id parity.
        data = np.ones((120, 16), dtype=np.float32)
        kwargs = dict(leaf_capacity=8, num_build_threads=1, flush_threshold=1)
        per_row, _ = build(
            tmp_path, data, "row", batched_inserts=False, **kwargs
        )
        batched, _ = build(
            tmp_path, data, "batch", batched_inserts=True, **kwargs
        )
        assert tree_fingerprint(batched) == tree_fingerprint(per_row)


class TestParallelParity:
    def test_single_worker_build_matches_sequential(self, tmp_path):
        # Two build threads = one InsertWorker claiming ranges in order:
        # the arrival order is the dataset order, so the tree must be
        # bit-for-bit the sequential one.  Sized so no flush runs (flush
        # *timing* differs between the protocols; leaf bytes would still
        # match, ids and extents would not).
        data = make_random_walks(600, 32, seed=203)
        per_row, _ = build(
            tmp_path, data, "row",
            leaf_capacity=10, num_build_threads=1, flush_threshold=1,
            batched_inserts=False, buffer_capacity=600 + 64, db_size=64,
        )
        threaded, _ = build(
            tmp_path, data, "thread",
            leaf_capacity=10, num_build_threads=2, flush_threshold=1,
            batched_inserts=True, buffer_capacity=600 + 64, db_size=64,
        )
        assert tree_fingerprint(threaded) == tree_fingerprint(per_row)

    def test_multi_worker_build_same_leaves_any_order(self, tmp_path):
        # With racing workers the arrival order is nondeterministic, so
        # node ids may differ — but splits do not depend on insertion
        # order once every series arrived: the *set* of leaf contents
        # and the total shape statistics must match the sequential tree.
        data = make_random_walks(800, 32, seed=204)
        kwargs = dict(leaf_capacity=20, db_size=64, buffer_capacity=None)
        sequential, _ = build(
            tmp_path, data, "seq",
            num_build_threads=1, flush_threshold=1,
            batched_inserts=False, **kwargs,
        )
        threaded, _ = build(
            tmp_path, data, "thread",
            num_build_threads=4, flush_threshold=2,
            batched_inserts=True, claim_size=16, **kwargs,
        )
        total = sum(
            leaf.size for leaf in threaded.root.iter_leaves_inorder()
        )
        assert total == data.shape[0]
        stored = np.concatenate(
            [
                leaf_data(threaded, leaf)
                for leaf in threaded.root.iter_leaves_inorder()
            ]
        )
        reference = np.concatenate(
            [
                leaf_data(sequential, leaf)
                for leaf in sequential.root.iter_leaves_inorder()
            ]
        )
        np.testing.assert_array_equal(
            stored[np.lexsort(stored.T[::-1])],
            reference[np.lexsort(reference.T[::-1])],
        )


class TestQueryParity:
    def test_exact_answers_identical_across_build_modes(self, tmp_path):
        # Exact k-NN does not depend on tree shape at all: a per-row
        # sequential index and a batched multi-threaded index must return
        # the same distances — and the same *series* — for every query.
        # (Positions are LRDFile offsets, which do depend on the leaf
        # layout, so the answers are compared by content.)
        data = make_random_walks(600, 64, seed=205)
        queries = make_random_walks(10, 64, seed=206)
        ref = HerculesIndex.build(
            data,
            HerculesConfig(
                leaf_capacity=32, num_build_threads=1, flush_threshold=1,
                batched_inserts=False, num_query_threads=1,
            ),
            directory=tmp_path / "ref",
        )
        fast = HerculesIndex.build(
            data,
            HerculesConfig(
                leaf_capacity=32, num_build_threads=4, flush_threshold=2,
                batched_inserts=True, num_query_threads=1,
            ),
            directory=tmp_path / "fast",
        )
        try:
            for query in queries:
                a = ref.knn(query, k=5)
                b = fast.knn(query, k=5)
                np.testing.assert_array_equal(a.distances, b.distances)
                rows_a = np.stack(
                    [ref._lrd.read_series(int(p)) for p in a.positions]
                )
                rows_b = np.stack(
                    [fast._lrd.read_series(int(p)) for p in b.positions]
                )
                np.testing.assert_array_equal(rows_a, rows_b)
        finally:
            ref.close()
            fast.close()


class TestHBufferBoundary:
    def test_batch_exactly_filling_region_does_not_flush(self, tmp_path):
        # 96-slot region, 32-series batches: the third batch lands the
        # region at exactly full.  The free-slots check must admit it
        # (free == batch size) and flush only before the *fourth* batch.
        data = make_random_walks(200, 16, seed=207)
        for batched in (False, True):
            ctx, _ = build(
                tmp_path, data, f"boundary-{batched}",
                leaf_capacity=30, num_build_threads=1, flush_threshold=1,
                db_size=32, buffer_capacity=96, batched_inserts=batched,
            )
            # 200 series = 96 + 96 + 8: exactly two flushes, never one
            # triggered by the exactly-full boundary itself.
            assert ctx.flushes.load() == 2
            total = sum(
                leaf.size for leaf in ctx.root.iter_leaves_inorder()
            )
            assert total == data.shape[0]


# Building per example is expensive; keep the example count modest.
_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(
    count=st.integers(80, 300),
    leaf_capacity=st.integers(5, 40),
    claim=st.sampled_from([1, 13, 64, None]),
    seed=st.integers(0, 10_000),
)
def test_leaf_synopses_bound_their_rows(
    tmp_path_factory, count, leaf_capacity, claim, seed
):
    """Every leaf's synopsis is a bounding box of its stored rows."""
    from repro.distance.lower_bounds import MU_MAX, MU_MIN, SD_MAX, SD_MIN

    data = make_random_walks(count, 32, seed=seed)
    tmp = tmp_path_factory.mktemp("parity-prop")
    ctx, _ = build(
        tmp, data, "prop",
        leaf_capacity=leaf_capacity, num_build_threads=1,
        flush_threshold=1, batched_inserts=True, claim_size=claim,
    )
    for leaf in ctx.root.iter_leaves_inorder():
        rows = leaf_data(ctx, leaf)
        assert rows.shape[0] == leaf.size
        means, stds = segment_stats(rows, leaf.segmentation)
        syn = leaf.synopsis
        assert np.all(syn[:, MU_MIN] <= means.min(axis=0) + 1e-9)
        assert np.all(syn[:, MU_MAX] >= means.max(axis=0) - 1e-9)
        assert np.all(syn[:, SD_MIN] <= stds.min(axis=0) + 1e-9)
        assert np.all(syn[:, SD_MAX] >= stds.max(axis=0) - 1e-9)
