"""Unit tests for the in-RAM signature pre-filter tier (prefilter.py)."""

import numpy as np
import pytest

from repro.core.prefilter import (
    SIGNATURES_FILENAME,
    SignatureArray,
    _HEADER,
    _MAGIC,
    pack_signatures,
    reduce_symbols,
    unpack_signatures,
)
from repro.errors import StorageError
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace

from ..conftest import make_random_walks

_SEGMENTS = 8
_LENGTH = 64


@pytest.fixture(scope="module")
def space() -> SaxSpace:
    return SaxSpace(segments=_SEGMENTS)


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return make_random_walks(300, _LENGTH, seed=91)


@pytest.fixture(scope="module")
def symbols(space, data) -> np.ndarray:
    return space.symbolize(paa(data, _SEGMENTS))


@pytest.fixture(scope="module")
def query(space) -> np.ndarray:
    return make_random_walks(1, _LENGTH, seed=92)[0]


class TestReduceSymbols:
    def test_full_width_is_identity(self, space, symbols):
        np.testing.assert_array_equal(
            reduce_symbols(symbols, space, 8), symbols
        )

    def test_keeps_top_bits(self, space):
        sym = np.array([[0, 127, 128, 255]], dtype=np.uint8)
        np.testing.assert_array_equal(
            reduce_symbols(sym, space, 1), [[0, 0, 1, 1]]
        )
        np.testing.assert_array_equal(
            reduce_symbols(sym, space, 2), [[0, 1, 2, 3]]
        )

    @pytest.mark.parametrize("bits", [0, 9, -1])
    def test_rejects_out_of_range_bits(self, space, symbols, bits):
        with pytest.raises(ValueError, match="bits"):
            reduce_symbols(symbols, space, bits)


class TestPackUnpack:
    @pytest.mark.parametrize("bits", [1, 3, 4, 5, 8])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        reduced = rng.integers(
            0, 1 << bits, size=(37, 11), dtype=np.uint8
        )
        packed = pack_signatures(reduced, bits)
        assert packed.dtype == np.uint8
        assert packed.shape == (37, (11 * bits + 7) // 8)
        np.testing.assert_array_equal(
            unpack_signatures(packed, 11, bits), reduced
        )

    def test_rows_are_byte_aligned(self):
        reduced = np.zeros((4, 3), dtype=np.uint8)
        packed = pack_signatures(reduced, 3)
        # 9 bits -> 2 bytes per row, independently addressable.
        assert packed.shape == (4, 2)


class TestSignatureArray:
    def test_rejects_wrong_shape(self, space):
        with pytest.raises(ValueError, match="reduced-symbol matrix"):
            SignatureArray(np.zeros((5, 3), dtype=np.uint8), space, 4)
        with pytest.raises(ValueError, match="reduced-symbol matrix"):
            SignatureArray(np.zeros(5, dtype=np.uint8), space, 4)

    def test_from_full_symbols(self, space, symbols):
        sig = SignatureArray.from_full_symbols(symbols, space, 4)
        assert sig.num_series == symbols.shape[0]
        np.testing.assert_array_equal(
            sig.reduced, reduce_symbols(symbols, space, 4)
        )
        assert sig.memory_bytes == sig.reduced.nbytes

    def test_query_paa_shape_validated(self, space, symbols):
        sig = SignatureArray.from_full_symbols(symbols, space, 4)
        with pytest.raises(ValueError, match="query PAA"):
            sig.lower_bounds(np.zeros(_SEGMENTS + 1), _LENGTH)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, space, symbols):
        sig = SignatureArray.from_full_symbols(symbols, space, 5)
        path = tmp_path / SIGNATURES_FILENAME
        sig.save(path)
        loaded = SignatureArray.load(path, space)
        assert loaded.bits == 5
        assert loaded.num_series == sig.num_series
        np.testing.assert_array_equal(loaded.reduced, sig.reduced)

    def _saved(self, tmp_path, space, symbols, bits=4):
        sig = SignatureArray.from_full_symbols(symbols, space, bits)
        path = tmp_path / SIGNATURES_FILENAME
        sig.save(path)
        return path

    def test_missing_file(self, tmp_path, space):
        with pytest.raises(StorageError, match="cannot read"):
            SignatureArray.load(tmp_path / "nope.bin", space)

    def test_truncated_header(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        path.write_bytes(path.read_bytes()[: _HEADER.size - 3])
        with pytest.raises(StorageError, match="truncated signature header"):
            SignatureArray.load(path, space)

    def test_bad_magic(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="bad magic"):
            SignatureArray.load(path, space)

    def test_unsupported_version(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        raw = bytearray(path.read_bytes())
        raw[4] = 99
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="version"):
            SignatureArray.load(path, space)

    def test_space_mismatch(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        with pytest.raises(StorageError, match="segment"):
            SignatureArray.load(path, SaxSpace(segments=_SEGMENTS * 2))

    def test_truncated_payload(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(StorageError, match="payload"):
            SignatureArray.load(path, space)

    def test_errors_name_the_file(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match=SIGNATURES_FILENAME):
            SignatureArray.load(path, space)

    def test_header_matches_documented_layout(self, tmp_path, space, symbols):
        path = self._saved(tmp_path, space, symbols, bits=4)
        magic, version, bits, segments, alphabet, count = _HEADER.unpack(
            path.read_bytes()[: _HEADER.size]
        )
        assert magic == _MAGIC
        assert (version, bits) == (1, 4)
        assert (segments, alphabet) == (_SEGMENTS, space.alphabet_size)
        assert count == symbols.shape[0]


class TestLowerBounds:
    def _true_distances(self, data, query):
        diff = data.astype(np.float64) - query.astype(np.float64)
        return np.sqrt((diff * diff).sum(axis=1))

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_bounds_below_true_distance(self, space, data, symbols, query, bits):
        sig = SignatureArray.from_full_symbols(symbols, space, bits)
        bounds = sig.lower_bounds(paa(query, _SEGMENTS), _LENGTH)
        assert (bounds <= self._true_distances(data, query) + 1e-9).all()

    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_reduced_bounds_below_full_resolution(
        self, space, symbols, query, bits
    ):
        q_paa = paa(query, _SEGMENTS)
        sig = SignatureArray.from_full_symbols(symbols, space, bits)
        full = space.mindist(q_paa, symbols, _LENGTH)
        assert (sig.lower_bounds(q_paa, _LENGTH) <= full + 1e-9).all()

    def test_full_width_matches_sax_mindist(self, space, symbols, query):
        q_paa = paa(query, _SEGMENTS)
        sig = SignatureArray.from_full_symbols(symbols, space, 8)
        np.testing.assert_allclose(
            sig.lower_bounds(q_paa, _LENGTH),
            space.mindist(q_paa, symbols, _LENGTH),
            atol=1e-9,
        )


class TestScreen:
    @pytest.fixture(scope="class")
    def sig(self, space, symbols):
        return SignatureArray.from_full_symbols(symbols, space, 4)

    def test_infinite_bsf_keeps_everything(self, sig, query):
        mask = sig.screen(paa(query, _SEGMENTS), np.inf, _LENGTH)
        assert mask.all()

    def test_zero_bsf_prunes_everything(self, sig, query):
        mask = sig.screen(paa(query, _SEGMENTS), 0.0, _LENGTH)
        assert not mask.any()

    def test_never_prunes_a_beating_series(self, sig, data, query):
        diff = data.astype(np.float64) - query.astype(np.float64)
        true = np.sqrt((diff * diff).sum(axis=1))
        bsf = float(np.median(true))
        mask = sig.screen(paa(query, _SEGMENTS), bsf * bsf, _LENGTH)
        # Soundness: any series strictly inside the BSF must survive.
        assert mask[true < bsf].all()

    def test_hamming_prescreen_is_exact(self, sig, data):
        for seed in range(5):
            query = make_random_walks(1, _LENGTH, seed=1000 + seed)[0]
            q_paa = paa(query, _SEGMENTS)
            for bsf_sq in (0.5, 2.0, 25.0):
                np.testing.assert_array_equal(
                    sig.screen(q_paa, bsf_sq, _LENGTH, hamming=True),
                    sig.screen(q_paa, bsf_sq, _LENGTH, hamming=False),
                )

    def test_prune_factor_only_tightens(self, sig, query):
        q_paa = paa(query, _SEGMENTS)
        plain = sig.screen(q_paa, 4.0, _LENGTH, prune_factor=1.0)
        eager = sig.screen(q_paa, 4.0, _LENGTH, prune_factor=1.3)
        # epsilon-scaled screening may only remove survivors.
        assert not (eager & ~plain).any()

    def test_survivors_match_bound_cutoff(self, sig, query):
        q_paa = paa(query, _SEGMENTS)
        bsf = 1.7
        mask = sig.screen(q_paa, bsf * bsf, _LENGTH)
        bounds = sig.lower_bounds(q_paa, _LENGTH)
        # The squared-space screen is the linear-space comparison
        # bounds < bsf (modulo the one rounding ulp of the sqrt).
        assert (bounds[mask] < bsf + 1e-9).all()
        assert (bounds[~mask] >= bsf - 1e-9).all()
