"""Crash matrix: a build crashed at ANY storage operation must leave a
directory that either opens as a fully correct index or raises a clean
StorageError — never silently wrong answers, never hung threads.
"""

import threading

import numpy as np
import pytest

from repro.core import HerculesConfig, HerculesIndex
from repro.errors import StorageError
from repro.storage import faults

from ..conftest import make_random_walks

SERIES = 80
LENGTH = 24
QUERIES = 3


@pytest.fixture(scope="module")
def data():
    return make_random_walks(SERIES, LENGTH, seed=77)


@pytest.fixture(scope="module")
def config():
    return HerculesConfig(
        leaf_capacity=16,
        num_build_threads=1,
        flush_threshold=1,
        num_write_threads=1,
        parallel_writing=False,
    )


@pytest.fixture(scope="module")
def reference(data, config, tmp_path_factory):
    """Uncrashed build: the answers every recovered index must reproduce."""
    directory = tmp_path_factory.mktemp("crash-ref") / "index"
    index = HerculesIndex.build(data, config, directory=directory)
    queries = data[:QUERIES] + 0.01
    answers = [index.knn(q, k=3) for q in queries]
    index.close()
    return queries, answers


@pytest.fixture(scope="module")
def op_counts(data, config, tmp_path_factory):
    """Operation counts of a clean build — they define the crash matrix."""
    directory = tmp_path_factory.mktemp("crash-count") / "index"
    with faults.inject([]) as counter:
        HerculesIndex.build(data, config, directory=directory).close()
    return dict(counter.counts)


def _assert_recovers(directory, reference):
    """The post-crash contract: correct answers or a clean StorageError."""
    queries, ref_answers = reference
    try:
        index = HerculesIndex.open(directory, verify="full")
    except StorageError:
        return "rejected"
    try:
        for query, ref in zip(queries, ref_answers):
            answer = index.knn(query, k=3)
            np.testing.assert_allclose(
                answer.distances, ref.distances, rtol=1e-6
            )
            np.testing.assert_array_equal(answer.positions, ref.positions)
    finally:
        index.close()
    return "recovered"


def _run_crashed_build(data, config, directory, plan):
    threads_before = threading.active_count()
    with faults.inject(plan):
        with pytest.raises(faults.InjectedFault):
            HerculesIndex.build(data, config, directory=directory)
    # No writer thread may outlive the crashed build.
    for _ in range(100):
        if threading.active_count() <= threads_before:
            break
        threading.Event().wait(0.05)
    assert threading.active_count() <= threads_before


def test_matrix_covers_every_write(op_counts):
    assert op_counts["write"] >= 10  # the matrix below is not vacuous
    assert op_counts["flush"] >= 1


def test_crash_at_every_write(data, config, reference, op_counts, tmp_path):
    outcomes = {"recovered": 0, "rejected": 0}
    for k in range(1, op_counts["write"] + 1):
        directory = tmp_path / f"crash-w{k}"
        _run_crashed_build(
            data, config, directory, faults.FaultPlan(op="write", at=k)
        )
        outcomes[_assert_recovers(directory, reference)] += 1
    # A crash before the manifest commit must never look healthy.
    assert outcomes["rejected"] == op_counts["write"]


def test_torn_write_at_every_write(data, config, reference, op_counts, tmp_path):
    for k in range(1, op_counts["write"] + 1):
        directory = tmp_path / f"torn-w{k}"
        _run_crashed_build(
            data,
            config,
            directory,
            faults.FaultPlan(op="write", at=k, mode="torn", torn_fraction=0.5),
        )
        _assert_recovers(directory, reference)


def test_crash_at_every_flush(data, config, reference, op_counts, tmp_path):
    for k in range(1, op_counts["flush"] + 1):
        directory = tmp_path / f"crash-f{k}"
        _run_crashed_build(
            data, config, directory, faults.FaultPlan(op="flush", at=k)
        )
        _assert_recovers(directory, reference)


def test_crash_over_previous_generation_keeps_or_rejects(
    data, config, reference, tmp_path
):
    """Rebuilding over a committed index and crashing mid-way must leave
    either the old generation (still correct) or a cleanly rejected mix."""
    directory = tmp_path / "regen"
    HerculesIndex.build(data, config, directory=directory).close()
    assert _assert_recovers(directory, reference) == "recovered"
    # Crash early: staging writes die before any artifact is republished,
    # so the previous generation must still be served.
    _run_crashed_build(
        data, config, directory, faults.FaultPlan(op="write", at=2)
    )
    assert _assert_recovers(directory, reference) == "recovered"


def test_parallel_writing_crash_does_not_hang(data, tmp_path):
    """A crash inside the parallel write phase aborts all workers."""
    config = HerculesConfig(
        leaf_capacity=16,
        num_build_threads=2,
        flush_threshold=1,
        num_write_threads=3,
        parallel_writing=True,
    )
    directory = tmp_path / "parallel-crash"
    _run_crashed_build(
        data, config, directory, faults.FaultPlan(op="write", at=5)
    )
    with pytest.raises(StorageError):
        HerculesIndex.open(directory, verify="full")
