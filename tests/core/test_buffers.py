"""Unit tests for HBuffer and the DBuffer."""

import numpy as np
import pytest

from repro.core.buffers import DoubleBuffer, HBuffer
from repro.errors import ConfigError


class TestHBuffer:
    def test_regions_partition_capacity(self):
        buf = HBuffer(capacity=10, series_length=4, num_workers=3)
        sizes = [buf.region_capacity(w) for w in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_store_and_get_rows(self):
        buf = HBuffer(capacity=8, series_length=3, num_workers=2)
        s0 = buf.store(0, np.array([1, 2, 3], dtype=np.float32))
        s1 = buf.store(1, np.array([4, 5, 6], dtype=np.float32))
        s2 = buf.store(0, np.array([7, 8, 9], dtype=np.float32))
        rows = buf.get_rows([s0, s1, s2])
        np.testing.assert_array_equal(rows, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])

    def test_slots_are_globally_unique_across_workers(self):
        buf = HBuffer(capacity=6, series_length=2, num_workers=2)
        slots = [buf.store(w, np.zeros(2, dtype=np.float32)) for w in (0, 0, 1, 1)]
        assert len(set(slots)) == 4

    def test_free_slots_and_overflow(self):
        buf = HBuffer(capacity=4, series_length=2, num_workers=2)
        assert buf.free_slots(0) == 2
        buf.store(0, np.zeros(2, dtype=np.float32))
        buf.store(0, np.zeros(2, dtype=np.float32))
        assert buf.free_slots(0) == 0
        with pytest.raises(ConfigError):
            buf.store(0, np.zeros(2, dtype=np.float32))

    def test_reset_regions(self):
        buf = HBuffer(capacity=4, series_length=2, num_workers=2)
        buf.store(0, np.ones(2, dtype=np.float32))
        assert buf.used_slots == 1
        buf.reset_regions()
        assert buf.used_slots == 0
        assert buf.free_slots(0) == 2

    def test_rejects_capacity_below_worker_count(self):
        with pytest.raises(ConfigError):
            HBuffer(capacity=1, series_length=2, num_workers=2)

    def test_store_batch_is_contiguous_and_matches_store(self):
        buf = HBuffer(capacity=8, series_length=3, num_workers=2)
        rows = np.arange(9, dtype=np.float32).reshape(3, 3)
        start = buf.store_batch(0, rows)
        assert start == 0
        np.testing.assert_array_equal(
            buf.get_rows(range(start, start + 3)), rows
        )
        assert buf.free_slots(0) == 1
        # A following single store lands right after the batch.
        slot = buf.store(0, np.full(3, 9.0, dtype=np.float32))
        assert slot == start + 3

    def test_store_batch_exactly_filling_region(self):
        buf = HBuffer(capacity=4, series_length=2, num_workers=2)
        rows = np.ones((2, 2), dtype=np.float32)
        buf.store_batch(0, rows)  # region size is exactly 2
        assert buf.free_slots(0) == 0

    def test_store_batch_overflow_rejected_atomically(self):
        buf = HBuffer(capacity=4, series_length=2, num_workers=2)
        buf.store(0, np.zeros(2, dtype=np.float32))
        with pytest.raises(ConfigError):
            buf.store_batch(0, np.ones((2, 2), dtype=np.float32))
        # Nothing was written: the region still has its one free slot.
        assert buf.free_slots(0) == 1

    def test_get_rows_into_preallocated_output(self):
        buf = HBuffer(capacity=6, series_length=2, num_workers=1)
        buf.store_batch(0, np.arange(8, dtype=np.float32).reshape(4, 2))
        out = np.empty((2, 2), dtype=np.float32)
        returned = buf.get_rows([3, 1], out=out)
        assert returned is out
        np.testing.assert_array_equal(out, [[6, 7], [2, 3]])


class TestDoubleBuffer:
    def test_fill_resets_counter(self):
        dbuf = DoubleBuffer(max_size=4, series_length=2)
        half = dbuf[0]
        half.counter.fetch_add(3)
        half.fill(np.ones((2, 2), dtype=np.float32))
        assert half.size == 2
        assert half.counter.load() == 0
        np.testing.assert_array_equal(half.data[:2], np.ones((2, 2)))

    def test_two_independent_halves(self):
        dbuf = DoubleBuffer(max_size=4, series_length=2)
        dbuf[0].fill(np.zeros((1, 2), dtype=np.float32))
        dbuf[1].fill(np.ones((3, 2), dtype=np.float32))
        assert dbuf[0].size == 1
        assert dbuf[1].size == 3
        assert not dbuf[0].finished.get()
