"""Tests for ε-approximate and approximate-only query answering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HerculesConfig, HerculesIndex
from repro.errors import ConfigError

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(1200, 64, seed=140)


@pytest.fixture(scope="module")
def index(corpus, tmp_path_factory):
    config = HerculesConfig(
        leaf_capacity=50,
        num_build_threads=2,
        db_size=256,
        flush_threshold=1,
        num_query_threads=1,
        l_max=3,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        corpus, config, directory=tmp_path_factory.mktemp("approx")
    )
    yield idx
    idx.close()


def brute_force(corpus, query, k):
    d = np.sqrt(
        ((corpus.astype(np.float64) - query.astype(np.float64)) ** 2).sum(axis=1)
    )
    return np.sort(d)[:k]


class TestEpsilonApproximate:
    def test_epsilon_zero_is_exact(self, index, corpus):
        query = make_random_walks(1, 64, seed=141)[0]
        answer = index.knn(query, k=5)
        np.testing.assert_allclose(
            answer.distances, brute_force(corpus, query, 5), atol=1e-6
        )

    @pytest.mark.parametrize("epsilon", [0.05, 0.2, 1.0])
    def test_guarantee_holds(self, index, corpus, epsilon):
        config = index.config.with_options(epsilon=epsilon)
        queries = make_random_walks(8, 64, seed=142)
        for query in queries:
            answer = index.knn(query, k=5, config=config)
            exact = brute_force(corpus, query, 5)
            # The reported k-th distance is within (1+ε) of the true k-th.
            assert answer.distances[-1] <= (1.0 + epsilon) * exact[-1] + 1e-6
            # Every reported distance is a genuine distance to some series.
            for dist, pos in zip(answer.distances, answer.positions):
                series = index.get_series(int(pos))
                recomputed = np.sqrt(
                    ((series.astype(np.float64) - query.astype(np.float64)) ** 2).sum()
                )
                assert recomputed == pytest.approx(dist, abs=1e-6)

    def test_larger_epsilon_prunes_more(self, index, corpus):
        """ε trades accuracy for work: data accessed must not increase."""
        query = make_random_walks(1, 64, seed=143)[0]
        tight = index.knn(query, k=5).profile.series_accessed
        loose = index.knn(
            query, k=5, config=index.config.with_options(epsilon=2.0)
        ).profile.series_accessed
        assert loose <= tight

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            HerculesConfig(epsilon=-0.5)


class TestApproximateOnly:
    def test_returns_k_answers_quickly(self, index, corpus):
        query = make_random_walks(1, 64, seed=144)[0]
        answer = index.knn_approx(query, k=5)
        assert answer.k == 5
        assert answer.profile.path == "approximate"
        assert answer.profile.approx_leaves <= index.config.l_max
        # Answers are genuine distances (not necessarily the smallest).
        exact = brute_force(corpus, query, 5)
        assert answer.distances[0] >= exact[0] - 1e-9

    def test_recall_improves_with_l_max(self, index, corpus):
        queries = make_random_walks(10, 64, seed=145)

        def recall(l_max):
            hits = 0
            for query in queries:
                approx = index.knn_approx(query, k=1, l_max=l_max)
                exact = brute_force(corpus, query, 1)
                if np.isclose(approx.distances[0], exact[0], atol=1e-6):
                    hits += 1
            return hits / len(queries)

        assert recall(index.num_leaves) >= recall(1)
        assert recall(index.num_leaves) == 1.0  # unlimited: exact first phase

    def test_self_query_is_found_approximately(self, index, corpus):
        """The query's own leaf is visited first, so recall@1 for dataset
        members is perfect even with l_max=1."""
        answer = index.knn_approx(corpus[5], k=1, l_max=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-5)


class TestEpsilonProperty:
    """Property-based ε-guarantee over random queries and ε values."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), epsilon=st.floats(0.0, 2.0))
    def test_kth_distance_within_factor(self, index, corpus, seed, epsilon):
        query = make_random_walks(1, 64, seed=seed)[0]
        config = index.config.with_options(epsilon=float(epsilon))
        answer = index.knn(query, k=3, config=config)
        exact = brute_force(corpus, query, 3)
        assert answer.distances[-1] <= (1.0 + epsilon) * exact[-1] + 1e-6
