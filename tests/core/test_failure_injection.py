"""Failure injection: errors must propagate, never deadlock or corrupt.

The construction and writing phases coordinate many threads through
barriers and events; a worker dying silently would hang everyone else.
These tests inject faults into each phase and assert that the error
surfaces at the build call site and that no thread is left behind.
"""

from __future__ import annotations

import threading

import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core import construction, writing
from repro.errors import StorageError
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile

from ..conftest import make_random_walks


def _active_worker_threads() -> int:
    return sum(
        1
        for t in threading.enumerate()
        if t.name.startswith(("hercules-insert", "hercules-write"))
    )


class TestConstructionFailures:
    @pytest.mark.parametrize("batched", [False, True])
    def test_insert_error_propagates_from_parallel_build(
        self, tmp_path, monkeypatch, batched
    ):
        data = make_random_walks(300, 32, seed=160)
        boom_after = {"count": 0}
        name = "insert_batch" if batched else "insert_series"
        original = getattr(construction, name)
        # Fail partway through: after ~150 series on the per-row path,
        # on the third claimed group on the batched path.
        trip = 3 if batched else 150

        def flaky(ctx, worker, payload):
            boom_after["count"] += 1
            if boom_after["count"] == trip:
                raise RuntimeError("injected insert failure")
            original(ctx, worker, payload)

        monkeypatch.setattr(construction, name, flaky)
        config = HerculesConfig(
            leaf_capacity=30,
            num_build_threads=3,
            db_size=64,
            flush_threshold=1,
            batched_inserts=batched,
            claim_size=16 if batched else None,
        )
        spill = SeriesFile(tmp_path / "spill.bin", 32)
        with pytest.raises(RuntimeError, match="injected insert failure"):
            construction.build_tree(Dataset.from_array(data), config, spill)
        spill.close()
        assert _active_worker_threads() == 0  # no thread left behind

    def test_spill_error_propagates_from_sequential_build(
        self, tmp_path, monkeypatch
    ):
        data = make_random_walks(200, 32, seed=161)
        config = HerculesConfig(
            leaf_capacity=30,
            num_build_threads=1,
            flush_threshold=1,
            buffer_capacity=64,
            db_size=32,
        )
        spill = SeriesFile(tmp_path / "spill.bin", 32)

        def broken_append(batch):
            raise StorageError("injected spill failure")

        monkeypatch.setattr(spill, "append_batch", broken_append)
        with pytest.raises(StorageError, match="injected spill failure"):
            construction.build_tree(Dataset.from_array(data), config, spill)
        spill.close()


class TestWritingFailures:
    def test_process_leaf_error_propagates_and_releases_threads(
        self, tmp_path, monkeypatch
    ):
        data = make_random_walks(400, 32, seed=162)
        calls = {"count": 0}
        original = writing.process_leaf

        def flaky(ctx, leaf, sax_space):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("injected leaf failure")
            original(ctx, leaf, sax_space)

        monkeypatch.setattr(writing, "process_leaf", flaky)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=2,
            db_size=128,
            flush_threshold=1,
            num_write_threads=3,
        )
        with pytest.raises(RuntimeError, match="injected leaf failure"):
            HerculesIndex.build(data, config, directory=tmp_path / "idx")
        assert _active_worker_threads() == 0

    def test_sequential_writing_error_propagates(self, tmp_path, monkeypatch):
        data = make_random_walks(200, 32, seed=163)

        def broken(ctx, leaf, sax_space):
            raise RuntimeError("injected sequential failure")

        monkeypatch.setattr(writing, "process_leaf", broken)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            parallel_writing=False,
        )
        with pytest.raises(RuntimeError, match="injected sequential failure"):
            HerculesIndex.build(data, config, directory=tmp_path / "idx")


class TestCorruptArtifacts:
    @pytest.fixture
    def built(self, tmp_path):
        data = make_random_walks(300, 32, seed=164)
        config = HerculesConfig(
            leaf_capacity=50, num_build_threads=1, flush_threshold=1
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "idx")
        index.close()
        return tmp_path / "idx"

    def test_truncated_lrd_rejected(self, built):
        lrd = built / "lrd.bin"
        blob = lrd.read_bytes()
        lrd.write_bytes(blob[:-7])  # no longer record-aligned
        with pytest.raises(StorageError):
            HerculesIndex.open(built)

    def test_missing_lsd_rejected(self, built):
        (built / "lsd.bin").unlink()
        with pytest.raises(StorageError):
            HerculesIndex.open(built)

    def test_corrupt_htree_rejected(self, built):
        path = built / "htree.bin"
        blob = bytearray(path.read_bytes())
        blob[0:8] = b"GARBAGE!"
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError):
            HerculesIndex.open(built)

    def test_lost_series_detected_at_build(self, tmp_path, monkeypatch):
        """The facade cross-checks written counts against the dataset."""
        from repro.core import index as index_module

        data = make_random_walks(100, 32, seed=165)
        original = index_module.write_index

        def lossy(ctx, directory, sax_space, settings, stats=None):
            result = original(ctx, directory, sax_space, settings, stats)
            result.num_series -= 1  # simulate silent loss
            return result

        monkeypatch.setattr(index_module, "write_index", lossy)
        config = HerculesConfig(
            leaf_capacity=50, num_build_threads=1, flush_threshold=1
        )
        from repro.errors import IndexStateError

        with pytest.raises(IndexStateError, match="lost during construction"):
            HerculesIndex.build(data, config, directory=tmp_path / "idx")
