"""Unit tests for split-policy selection."""

import numpy as np
import pytest

from repro.core.split import LeafStats, box_diameter, choose_split
from repro.summarization.eapca import Segmentation, segment_stats

from ..conftest import make_random_walks


class TestLeafStats:
    def test_range_stats_match_numpy(self):
        data = make_random_walks(10, 32, seed=70)
        stats = LeafStats(data)
        means, stds = stats.range_stats(5, 20)
        ref = data[:, 5:20].astype(np.float64)
        np.testing.assert_allclose(means, ref.mean(axis=1), atol=1e-9)
        np.testing.assert_allclose(stds, ref.std(axis=1), atol=1e-7)

    def test_segmentation_stats_match_segment_stats(self):
        data = make_random_walks(8, 32, seed=71)
        seg = Segmentation([10, 32])
        stats = LeafStats(data)
        means, stds = stats.segmentation_stats(seg)
        ref_means, ref_stds = segment_stats(data, seg)
        np.testing.assert_allclose(means, ref_means, atol=1e-9)
        np.testing.assert_allclose(stds, ref_stds, atol=1e-9)

    def test_rejects_invalid_range(self):
        stats = LeafStats(np.zeros((2, 8)))
        with pytest.raises(ValueError):
            stats.range_stats(4, 4)


class TestBoxDiameter:
    def test_zero_for_identical_series(self):
        means = np.full((5, 2), 1.0)
        stds = np.full((5, 2), 0.3)
        assert box_diameter(means, stds, np.array([4.0, 4.0])) == 0.0

    def test_weighted_by_segment_length(self):
        means = np.array([[0.0, 0.0], [1.0, 1.0]])
        stds = np.zeros((2, 2))
        lengths = np.array([2.0, 6.0])
        assert box_diameter(means, stds, lengths) == pytest.approx(8.0)


class TestChooseSplit:
    def test_splits_bimodal_data_on_the_separating_mean(self):
        rng = np.random.default_rng(72)
        low = rng.normal(-2.0, 0.1, size=(20, 16))
        high = rng.normal(2.0, 0.1, size=(20, 16))
        data = np.concatenate([low, high]).astype(np.float32)
        seg = Segmentation([8, 16])
        decision = choose_split(seg, data)
        assert decision is not None
        # The mask must separate the two populations exactly.
        left_ids = set(np.nonzero(decision.left_mask)[0])
        assert left_ids in ({*range(20)}, {*range(20, 40)})
        assert not decision.policy.use_std

    def test_splits_on_std_when_means_are_equal(self):
        rng = np.random.default_rng(73)
        calm = rng.normal(0.0, 0.05, size=(15, 16))
        wild = rng.normal(0.0, 3.0, size=(15, 16))
        data = np.concatenate([calm, wild]).astype(np.float32)
        decision = choose_split(Segmentation([16]), data)
        assert decision is not None
        assert decision.policy.use_std
        left_ids = set(np.nonzero(decision.left_mask)[0])
        # Most of each population lands on its own side (std estimates
        # fluctuate, so allow one straggler).
        calm_left = len(left_ids & set(range(15)))
        assert calm_left >= 14 or calm_left <= 1

    def test_children_are_nonempty(self):
        data = make_random_walks(40, 32, seed=74)
        decision = choose_split(Segmentation.uniform(32, 4), data)
        assert decision is not None
        n_left = int(decision.left_mask.sum())
        assert 0 < n_left < 40

    def test_returns_none_for_identical_series(self):
        data = np.tile(np.arange(16, dtype=np.float32), (10, 1))
        assert choose_split(Segmentation([8, 16]), data) is None

    def test_vertical_split_has_child_segmentation_with_extra_segment(self):
        # Construct data whose halves of segment 0 behave oppositely, so a
        # V-split is strictly better than any H-split.
        rng = np.random.default_rng(75)
        n = 40
        data = np.zeros((n, 8), dtype=np.float32)
        signs = rng.choice([-1.0, 1.0], size=n)
        data[:, :4] = signs[:, None] * 2.0
        data[:, 4:] = -signs[:, None] * 2.0  # whole-segment mean cancels
        data += rng.normal(0, 0.01, size=data.shape).astype(np.float32)
        decision = choose_split(Segmentation([8]), data)
        assert decision is not None
        assert decision.policy.vertical
        assert decision.policy.child_segmentation.num_segments == 2

    def test_split_reduces_weighted_child_diameter(self):
        data = make_random_walks(60, 64, seed=76)
        seg = Segmentation.uniform(64, 4)
        decision = choose_split(seg, data)
        assert decision is not None
        stats = LeafStats(data)
        means, stds = stats.segmentation_stats(
            decision.policy.child_segmentation
        )
        lengths = decision.policy.child_segmentation.lengths
        parent_d = box_diameter(means, stds, lengths)
        mask = decision.left_mask
        d_left = box_diameter(means[mask], stds[mask], lengths)
        d_right = box_diameter(means[~mask], stds[~mask], lengths)
        n_left = mask.sum()
        weighted = (n_left * d_left + (60 - n_left) * d_right) / 60
        assert weighted < parent_d

    def test_route_matches_mask(self):
        """The chosen policy routes each series to the side its mask says."""
        from repro.summarization.eapca import SeriesSketch

        data = make_random_walks(30, 32, seed=77)
        decision = choose_split(Segmentation.uniform(32, 2), data)
        assert decision is not None
        for i in range(30):
            went_left = decision.policy.route_left(SeriesSketch(data[i]))
            assert went_left == bool(decision.left_mask[i])
