"""Unit tests for HerculesConfig validation."""

import pytest

from repro.core.config import HerculesConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = HerculesConfig()
        assert config.leaf_capacity == 100
        assert config.eapca_th == 0.25
        assert config.sax_th == 0.50
        assert config.l_max == 80

    @pytest.mark.parametrize(
        "field, value",
        [
            ("leaf_capacity", 1),
            ("initial_segments", 0),
            ("sax_segments", 0),
            ("sax_alphabet", 1),
            ("sax_alphabet", 300),
            ("num_build_threads", 0),
            ("db_size", 0),
            ("buffer_capacity", 0),
            ("num_write_threads", 0),
            ("l_max", 0),
            ("eapca_th", -0.1),
            ("eapca_th", 1.5),
            ("sax_th", 2.0),
            ("num_query_threads", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            HerculesConfig(**{field: value})

    def test_flush_threshold_bounded_by_workers(self):
        # 4 build threads -> 3 insert workers.
        HerculesConfig(num_build_threads=4, flush_threshold=3)
        with pytest.raises(ConfigError):
            HerculesConfig(num_build_threads=4, flush_threshold=4)

    def test_num_insert_workers(self):
        assert HerculesConfig(num_build_threads=4).num_insert_workers == 3
        assert HerculesConfig(num_build_threads=1, flush_threshold=1).num_insert_workers == 1

    def test_with_options_returns_modified_copy(self):
        base = HerculesConfig()
        variant = base.with_options(use_sax=False, num_query_threads=1)
        assert not variant.use_sax
        assert variant.num_query_threads == 1
        assert base.use_sax  # original untouched

    def test_with_options_validates(self):
        with pytest.raises(ConfigError):
            HerculesConfig().with_options(l_max=-1)
