"""Unit tests for tree nodes, synopses, and routing."""

import numpy as np
import pytest

from repro.core.node import (
    Node,
    SplitPolicy,
    empty_synopsis,
    segment_correspondence,
    synopsis_from_stats,
)
from repro.distance.lower_bounds import MU_MAX, MU_MIN, SD_MAX, SD_MIN
from repro.summarization.eapca import Segmentation, SeriesSketch, segment_stats

from ..conftest import make_random_walks


class TestSynopsis:
    def test_empty_synopsis_absorbs_first_update(self):
        node = Node(0, Segmentation([4, 8]))
        node.update_synopsis(np.array([1.0, 2.0]), np.array([0.5, 0.7]))
        np.testing.assert_allclose(node.synopsis[:, MU_MIN], [1.0, 2.0])
        np.testing.assert_allclose(node.synopsis[:, MU_MAX], [1.0, 2.0])
        np.testing.assert_allclose(node.synopsis[:, SD_MIN], [0.5, 0.7])
        np.testing.assert_allclose(node.synopsis[:, SD_MAX], [0.5, 0.7])

    def test_update_widens_box(self):
        node = Node(0, Segmentation([8]))
        node.update_synopsis(np.array([1.0]), np.array([0.5]))
        node.update_synopsis(np.array([-1.0]), np.array([0.9]))
        assert node.synopsis[0, MU_MIN] == -1.0
        assert node.synopsis[0, MU_MAX] == 1.0
        assert node.synopsis[0, SD_MIN] == 0.5
        assert node.synopsis[0, SD_MAX] == 0.9

    def test_synopsis_from_stats_matches_incremental(self):
        seg = Segmentation([16, 32])
        data = make_random_walks(30, 32, seed=60)
        means, stds = segment_stats(data, seg)
        batch = synopsis_from_stats(means, stds)
        node = Node(0, seg)
        for i in range(30):
            node.update_synopsis(means[i], stds[i])
        np.testing.assert_allclose(node.synopsis, batch)

    def test_merge_synopsis_rows_uses_row_mapping(self):
        parent = Node(0, Segmentation([4, 8, 12]))
        child_syn = empty_synopsis(3)
        child_syn[:, MU_MIN] = [-1.0, -2.0, -3.0]
        child_syn[:, MU_MAX] = [1.0, 2.0, 3.0]
        child_syn[:, SD_MIN] = [0.1, 0.2, 0.3]
        child_syn[:, SD_MAX] = [0.4, 0.5, 0.6]
        parent.merge_synopsis_rows(
            np.array([0, 2]), child_syn, np.array([1, 2])
        )
        assert parent.synopsis[0, MU_MIN] == -2.0
        assert parent.synopsis[2, MU_MAX] == 3.0
        assert np.isinf(parent.synopsis[1, MU_MIN])  # untouched row

    def test_merge_segment_interval(self):
        node = Node(0, Segmentation([8]))
        node.merge_segment_interval(0, -1.0, 1.0, 0.2, 0.8)
        node.merge_segment_interval(0, -0.5, 2.0, 0.1, 0.5)
        row = node.synopsis[0]
        assert row[MU_MIN] == -1.0 and row[MU_MAX] == 2.0
        assert row[SD_MIN] == 0.1 and row[SD_MAX] == 0.8


class TestRouting:
    def _make_internal(self, use_std=False, vertical=False):
        seg = Segmentation([4, 8])
        node = Node(0, seg)
        child_seg = seg.split_vertically(0) if vertical else seg
        node.left = Node(1, child_seg, parent=node)
        node.right = Node(2, child_seg, parent=node)
        node.policy = SplitPolicy(
            split_segment=0,
            vertical=vertical,
            use_std=use_std,
            threshold=0.0,
            route_start=0,
            route_end=4 if not vertical else 2,
            child_segmentation=child_seg,
        )
        node.is_leaf = False
        return node

    def test_route_on_mean(self):
        node = self._make_internal()
        low = SeriesSketch(np.array([-1.0] * 4 + [0.0] * 4, dtype=np.float32))
        high = SeriesSketch(np.array([1.0] * 4 + [0.0] * 4, dtype=np.float32))
        assert node.route(low) is node.left
        assert node.route(high) is node.right

    def test_route_on_std(self):
        import dataclasses

        node = self._make_internal(use_std=True)
        node.policy = dataclasses.replace(node.policy, threshold=0.5)
        flat = SeriesSketch(np.zeros(8, dtype=np.float32))
        wavy = SeriesSketch(
            np.array([3.0, -3.0, 3.0, -3.0, 0, 0, 0, 0], dtype=np.float32)
        )
        assert node.route(flat) is node.left
        assert node.route(wavy) is node.right

    def test_route_raises_on_leaf(self):
        leaf = Node(0, Segmentation([8]))
        with pytest.raises(ValueError):
            leaf.route(SeriesSketch(np.zeros(8, dtype=np.float32)))

    def test_route_left_batch_matches_scalar(self):
        node = self._make_internal()
        means = np.array([-0.5, 0.5, 0.0])
        stds = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(
            node.policy.route_left_batch(means, stds), [True, False, False]
        )


class TestTraversal:
    def _small_tree(self):
        # root -> (A, B); B -> (C, D). Leaves inorder: A, C, D.
        seg = Segmentation([8])
        root = Node(0, seg)
        a, b = Node(1, seg, root), Node(2, seg, root)
        root.left, root.right, root.is_leaf = a, b, False
        c, d = Node(3, seg, b), Node(4, seg, b)
        b.left, b.right, b.is_leaf = c, d, False
        return root, a, b, c, d

    def test_iter_leaves_inorder(self):
        root, a, b, c, d = self._small_tree()
        assert [n.node_id for n in root.iter_leaves_inorder()] == [1, 3, 4]
        assert root.num_leaves == 3

    def test_iter_nodes_preorder(self):
        root, a, b, c, d = self._small_tree()
        assert [n.node_id for n in root.iter_nodes_preorder()] == [0, 1, 2, 3, 4]


class TestSegmentCorrespondence:
    def test_horizontal_identity(self):
        seg = Segmentation([4, 8, 12])
        node = Node(0, seg)
        node.policy = SplitPolicy(1, False, False, 0.0, 4, 8, seg)
        node.is_leaf = False
        child_rows, parent_rows = segment_correspondence(node)
        np.testing.assert_array_equal(child_rows, [0, 1, 2])
        np.testing.assert_array_equal(parent_rows, [0, 1, 2])

    def test_vertical_skips_split_segment(self):
        seg = Segmentation([4, 8, 12])
        child_seg = seg.split_vertically(1)  # ends (4, 6, 8, 12)
        node = Node(0, seg)
        node.policy = SplitPolicy(1, True, False, 0.0, 4, 6, child_seg)
        node.is_leaf = False
        child_rows, parent_rows = segment_correspondence(node)
        # Child segments 1 and 2 are halves of parent segment 1: excluded.
        np.testing.assert_array_equal(child_rows, [0, 3])
        np.testing.assert_array_equal(parent_rows, [0, 2])

    def test_requires_internal_node(self):
        with pytest.raises(ValueError):
            segment_correspondence(Node(0, Segmentation([8])))
