"""Focused tests of the flushing protocol (Algorithms 3-4).

The protocol's observable contract: data survives arbitrary buffer
pressure, flushes happen when (and only when) regions fill, HBuffer
regions reset after each flush, and leaves accumulate spill extents that
splits and the writing phase can read back.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HerculesConfig
from repro.core.construction import (
    build_tree,
    leaf_data,
    materialize_flush,
    new_build_context,
)
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile

from ..conftest import make_random_walks


def build_ctx(tmp_path, data, **config_kwargs):
    config = HerculesConfig(**config_kwargs)
    spill = SeriesFile(tmp_path / "spill.bin", data.shape[1])
    ctx = new_build_context(Dataset.from_array(data), config, spill)
    return ctx, spill


class TestMaterializeFlush:
    def test_moves_memory_series_to_spill(self, tmp_path):
        data = make_random_walks(50, 16, seed=180)
        ctx, spill = build_ctx(
            tmp_path, data, leaf_capacity=100, num_build_threads=1,
            flush_threshold=1,
        )
        from repro.core.construction import insert_series

        for row in data:
            insert_series(ctx, 0, row)
        assert ctx.hbuffer.used_slots == 50
        materialize_flush(ctx)
        assert ctx.hbuffer.used_slots == 0
        root = ctx.root
        assert root.sbuffer == []
        assert sum(e.count for e in root.spill_extents) == 50
        np.testing.assert_array_equal(
            np.sort(leaf_data(ctx, root), axis=0),
            np.sort(data, axis=0),
        )
        spill.close()

    def test_flush_is_idempotent_on_empty_buffers(self, tmp_path):
        data = make_random_walks(10, 16, seed=181)
        ctx, spill = build_ctx(
            tmp_path, data, leaf_capacity=100, num_build_threads=1,
            flush_threshold=1,
        )
        materialize_flush(ctx)
        assert ctx.flushes.load() == 1
        assert spill.num_series == 0
        spill.close()


class TestFlushUnderPressure:
    @pytest.mark.parametrize("threads", [1, 3])
    def test_flush_count_grows_with_pressure(self, tmp_path, threads):
        data = make_random_walks(600, 16, seed=182)

        def flushes(buffer_capacity):
            config = dict(
                leaf_capacity=50,
                num_build_threads=threads,
                db_size=32,
                buffer_capacity=buffer_capacity,
                flush_threshold=1,
            )
            ctx, spill = build_ctx(tmp_path / f"{threads}-{buffer_capacity}",
                                   data, **config)
            build_tree(Dataset.from_array(data), ctx.config, spill, context=ctx)
            spill.close()
            return ctx.flushes.load()

        tight = flushes(128)
        loose = flushes(600)
        assert tight > loose
        assert tight >= 3

    def test_split_reads_back_spilled_series(self, tmp_path):
        """Splits after a flush must merge spill extents with memory."""
        data = make_random_walks(300, 16, seed=183)
        config = dict(
            leaf_capacity=120,
            num_build_threads=1,
            db_size=32,
            buffer_capacity=64,
            flush_threshold=1,
        )
        ctx, spill = build_ctx(tmp_path, data, **config)
        build_tree(Dataset.from_array(data), ctx.config, spill, context=ctx)
        # With capacity 64 and leaf threshold 120, the first split can
        # only have happened after at least one flush.
        assert ctx.flushes.load() >= 1
        assert ctx.splits.load() >= 1
        total = sum(leaf.size for leaf in ctx.root.iter_leaves_inorder())
        assert total == 300
        # Children carry fresh spill extents written by the split.
        spilled = [
            leaf
            for leaf in ctx.root.iter_leaves_inorder()
            if leaf.spill_extents
        ]
        assert spilled
        spill.close()

    def test_spill_file_contains_dead_extents_after_splits(self, tmp_path):
        """The append-only spill file grows past the live data (documented
        behaviour: old extents become dead space on split)."""
        data = make_random_walks(400, 16, seed=184)
        config = dict(
            leaf_capacity=60,
            num_build_threads=1,
            db_size=32,
            buffer_capacity=64,
            flush_threshold=1,
        )
        ctx, spill = build_ctx(tmp_path, data, **config)
        build_tree(Dataset.from_array(data), ctx.config, spill, context=ctx)
        live = sum(
            e.count
            for leaf in ctx.root.iter_leaves_inorder()
            for e in leaf.spill_extents
        )
        assert spill.num_series >= live
        spill.close()


class TestEndToEndWithPressure:
    def test_full_index_from_heavily_flushed_build(self, tmp_path):
        """Build with severe pressure, then query: answers stay exact."""
        from repro import HerculesIndex

        data = make_random_walks(500, 32, seed=185)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=3,
            db_size=32,
            buffer_capacity=80,
            flush_threshold=1,
            num_query_threads=2,
            l_max=3,
            sax_segments=8,
        )
        index = HerculesIndex.build(data, config, directory=tmp_path / "idx")
        assert index.build_report.flushes >= 3
        query = make_random_walks(1, 32, seed=186)[0]
        answer = index.knn(query, k=5)
        d = np.sqrt(
            ((data.astype(np.float64) - query.astype(np.float64)) ** 2).sum(1)
        )
        np.testing.assert_allclose(answer.distances, np.sort(d)[:5], atol=1e-5)
        index.close()
