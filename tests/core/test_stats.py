"""Unit tests for tree statistics."""

import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core.stats import tree_statistics

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def index(tmp_path_factory):
    data = make_random_walks(600, 32, seed=150)
    config = HerculesConfig(
        leaf_capacity=40,
        num_build_threads=1,
        flush_threshold=1,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        data, config, directory=tmp_path_factory.mktemp("stats")
    )
    yield idx
    idx.close()


class TestTreeStatistics:
    def test_counts_are_consistent(self, index):
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        assert stats.num_leaves == index.num_leaves
        assert stats.num_internal == stats.num_leaves - 1  # full binary tree
        assert stats.num_nodes == 2 * stats.num_leaves - 1
        assert stats.num_series == index.num_series

    def test_leaf_sizes_respect_capacity(self, index):
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        assert 0 < stats.min_leaf_size <= stats.mean_leaf_size
        assert stats.mean_leaf_size <= stats.max_leaf_size
        assert stats.max_leaf_size <= index.config.leaf_capacity
        assert 0.0 < stats.fill_factor <= 1.0

    def test_split_counts_sum_to_internal_nodes(self, index):
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        assert stats.horizontal_splits + stats.vertical_splits == stats.num_internal
        assert stats.mean_routed_splits + stats.std_routed_splits == stats.num_internal

    def test_depths_and_segments(self, index):
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        assert stats.max_depth >= stats.mean_leaf_depth > 0
        assert stats.min_segments >= 1
        assert stats.max_segments >= stats.min_segments
        # Vertical splits can only add segments beyond the initial count.
        assert stats.min_segments >= index.config.initial_segments

    def test_single_leaf_tree(self):
        from repro.core.node import Node
        from repro.summarization.eapca import Segmentation

        leaf = Node(0, Segmentation([8]))
        leaf.size = 3
        stats = tree_statistics(leaf)
        assert stats.num_nodes == 1
        assert stats.num_leaves == 1
        assert stats.max_depth == 0
        assert stats.fill_factor is None

    def test_format_is_readable(self, index):
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        text = stats.format()
        assert "leaves" in text
        assert "fill factor" in text
        assert "vertical" in text
