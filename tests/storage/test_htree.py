"""Unit tests for HTree serialization."""

import numpy as np
import pytest

from repro.core.node import Node, SplitPolicy
from repro.errors import StorageError
from repro.storage.htree import load_tree, save_tree
from repro.summarization.eapca import Segmentation


def make_tree():
    """root (H-split) -> (leaf A, internal B (V-split) -> (leaf C, leaf D))."""
    seg = Segmentation([8, 16])
    root = Node(0, seg)
    root.size = 30
    root.synopsis[:] = np.arange(8, dtype=np.float64).reshape(2, 4)

    a = Node(1, seg, root)
    a.size = 10
    a.file_position = 0
    a.synopsis[:] = 1.5

    b = Node(2, seg, root)
    b.size = 20
    b.synopsis[:] = -2.0
    child_seg = seg.split_vertically(0)
    b.policy = SplitPolicy(0, True, True, 0.75, 0, 4, child_seg)

    c = Node(3, child_seg, b)
    c.size = 12
    c.file_position = 10
    d = Node(4, child_seg, b)
    d.size = 8
    d.file_position = 22
    b.left, b.right, b.is_leaf = c, d, False

    root.policy = SplitPolicy(1, False, False, -0.25, 8, 16, seg)
    root.left, root.right, root.is_leaf = a, b, False
    return root


class TestRoundTrip:
    def test_structure_preserved(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {"num_series": 30})
        loaded, settings = load_tree(tmp_path / "t.bin")
        assert settings == {"num_series": 30}
        assert not loaded.is_leaf
        assert loaded.size == 30
        assert loaded.left.is_leaf and loaded.left.file_position == 0
        assert not loaded.right.is_leaf
        assert loaded.right.left.file_position == 10
        assert loaded.right.right.file_position == 22

    def test_synopses_and_segmentations_preserved(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {})
        loaded, _ = load_tree(tmp_path / "t.bin")
        np.testing.assert_array_equal(loaded.synopsis, root.synopsis)
        assert loaded.segmentation == root.segmentation
        assert loaded.right.left.segmentation == Segmentation([4, 8, 16])

    def test_policies_preserved(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {})
        loaded, _ = load_tree(tmp_path / "t.bin")
        assert loaded.policy.split_segment == 1
        assert not loaded.policy.vertical
        assert loaded.policy.threshold == -0.25
        b = loaded.right
        assert b.policy.vertical and b.policy.use_std
        assert b.policy.threshold == 0.75
        assert b.policy.route_start == 0 and b.policy.route_end == 4
        assert b.policy.child_segmentation == Segmentation([4, 8, 16])

    def test_parent_links_rebuilt(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {})
        loaded, _ = load_tree(tmp_path / "t.bin")
        assert loaded.parent is None
        assert loaded.left.parent is loaded
        assert loaded.right.right.parent is loaded.right

    def test_save_overwrites_previous_tree(self, tmp_path):
        """Re-saving to the same path replaces the file (regression: the
        append-oriented BinaryFile used to leave both trees behind)."""
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {"generation": 1})
        save_tree(tmp_path / "t.bin", root, {"generation": 2})
        loaded, settings = load_tree(tmp_path / "t.bin")
        assert settings == {"generation": 2}
        assert loaded.size == root.size

    def test_single_leaf_tree(self, tmp_path):
        leaf = Node(0, Segmentation([4]))
        leaf.size = 5
        leaf.file_position = 0
        save_tree(tmp_path / "t.bin", leaf, {"x": [1, 2]})
        loaded, settings = load_tree(tmp_path / "t.bin")
        assert loaded.is_leaf and loaded.size == 5
        assert settings == {"x": [1, 2]}


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTATREE" + b"\x00" * 32)
        with pytest.raises(StorageError):
            load_tree(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"HE")
        with pytest.raises(StorageError):
            load_tree(path)

    def test_truncated_nodes(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {})
        blob = (tmp_path / "t.bin").read_bytes()
        (tmp_path / "cut.bin").write_bytes(blob[:-10])
        with pytest.raises(StorageError):
            load_tree(tmp_path / "cut.bin")

    def test_trailing_garbage(self, tmp_path):
        root = make_tree()
        save_tree(tmp_path / "t.bin", root, {})
        blob = (tmp_path / "t.bin").read_bytes()
        (tmp_path / "fat.bin").write_bytes(blob + b"xx")
        with pytest.raises(StorageError):
            load_tree(tmp_path / "fat.bin")

    def test_internal_without_policy_rejected_at_save(self, tmp_path):
        seg = Segmentation([8])
        root = Node(0, seg)
        root.left = Node(1, seg, root)
        root.right = Node(2, seg, root)
        root.is_leaf = False  # no policy set
        with pytest.raises(StorageError):
            save_tree(tmp_path / "t.bin", root, {})
