"""Unit tests for the I/O accounting layer."""

import threading

from repro.storage.iostats import IOSnapshot, IOStats


class TestIOStats:
    def test_counters_accumulate(self):
        stats = IOStats()
        stats.record_read(100, sequential=True)
        stats.record_read(50, sequential=False)
        stats.record_write(30)
        snap = stats.snapshot()
        assert snap.read_calls == 2
        assert snap.sequential_reads == 1
        assert snap.random_seeks == 1
        assert snap.bytes_read == 150
        assert snap.write_calls == 1
        assert snap.bytes_written == 30

    def test_reset(self):
        stats = IOStats()
        stats.record_read(10, sequential=True)
        stats.reset()
        assert stats.snapshot() == IOSnapshot()

    def test_snapshot_is_immutable_copy(self):
        stats = IOStats()
        first = stats.snapshot()
        stats.record_read(10, sequential=True)
        assert first.read_calls == 0
        assert stats.snapshot().read_calls == 1

    def test_concurrent_recording(self):
        stats = IOStats()

        def hammer():
            for _ in range(1000):
                stats.record_read(4, sequential=True)
                stats.record_write(2)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        assert snap.read_calls == 6000
        assert snap.bytes_read == 24000
        assert snap.bytes_written == 12000


class TestIOSnapshotArithmetic:
    def test_difference(self):
        before = IOSnapshot(read_calls=2, bytes_read=100, random_seeks=1)
        after = IOSnapshot(
            read_calls=5, bytes_read=450, random_seeks=2, sequential_reads=2
        )
        delta = after - before
        assert delta.read_calls == 3
        assert delta.bytes_read == 350
        assert delta.random_seeks == 1
        assert delta.sequential_reads == 2

    def test_zero_delta(self):
        snap = IOSnapshot(read_calls=7, bytes_read=10)
        assert snap - snap == IOSnapshot()
