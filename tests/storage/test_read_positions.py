"""Property tests for coalesced position reads (SeriesFile + Dataset)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.storage.iostats import IOStats

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def on_disk(tmp_path_factory):
    data = make_random_walks(100, 8, seed=250)
    path = tmp_path_factory.mktemp("rp") / "data.bin"
    Dataset.write(path, data).close()
    return path, data


class TestSeriesFileReadPositions:
    def test_matches_per_position_reads(self, on_disk):
        path, data = on_disk
        with SeriesFile(path, 8, read_only=True) as f:
            positions = np.array([3, 4, 5, 9, 20, 21, 50])
            rows = f.read_positions(positions)
            np.testing.assert_array_equal(rows, data[positions])

    def test_coalesces_runs_into_single_reads(self, on_disk):
        path, _ = on_disk
        stats = IOStats()
        with SeriesFile(path, 8, stats=stats, read_only=True) as f:
            f.read_positions(np.array([10, 11, 12, 40, 41, 90]))
        assert stats.snapshot().read_calls == 3  # three runs

    def test_empty_positions(self, on_disk):
        path, _ = on_disk
        with SeriesFile(path, 8, read_only=True) as f:
            rows = f.read_positions(np.array([], dtype=np.int64))
            assert rows.shape == (0, 8)


class TestDatasetReadPositions:
    def test_matches_fancy_indexing(self, on_disk):
        path, data = on_disk
        with Dataset.open(path, 8) as ds:
            positions = np.array([0, 1, 7, 8, 9, 99])
            np.testing.assert_array_equal(
                ds.read_positions(positions), data[positions]
            )

    def test_in_memory_dataset(self, on_disk):
        _, data = on_disk
        ds = Dataset.from_array(data)
        positions = np.array([5, 6, 7])
        np.testing.assert_array_equal(ds.read_positions(positions), data[5:8])


@settings(max_examples=40, deadline=None)
@given(
    positions=st.lists(st.integers(0, 99), min_size=0, max_size=30, unique=True)
)
def test_read_positions_property(on_disk, positions):
    """Any sorted unique position list reads exactly those rows in order."""
    path, data = on_disk
    sorted_positions = np.array(sorted(positions), dtype=np.int64)
    with Dataset.open(path, 8) as ds:
        rows = ds.read_positions(sorted_positions)
    np.testing.assert_array_equal(rows, data[sorted_positions])
