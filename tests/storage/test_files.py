"""Unit tests for counted binary/series/symbol files."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.files import BinaryFile, SeriesFile, SymbolFile
from repro.storage.iostats import IOStats


class TestBinaryFile:
    def test_append_then_read_roundtrip(self, tmp_path):
        with BinaryFile(tmp_path / "blob.bin") as f:
            off1 = f.append(b"hello")
            off2 = f.append(b"world")
            assert off1 == 0 and off2 == 5
            assert f.read(0, 5) == b"hello"
            assert f.read(5, 5) == b"world"

    def test_sequential_vs_random_classification(self, tmp_path):
        stats = IOStats()
        with BinaryFile(tmp_path / "blob.bin", stats=stats) as f:
            f.append(b"0123456789")
            f.read(0, 4)   # first read after a write -> random (seek to 0)
            f.read(4, 4)   # continues -> sequential
            f.read(0, 2)   # rewind -> random
        snap = stats.snapshot()
        assert snap.read_calls == 3
        assert snap.sequential_reads == 1
        assert snap.random_seeks == 2
        assert snap.bytes_read == 10

    def test_short_read_raises(self, tmp_path):
        with BinaryFile(tmp_path / "blob.bin") as f:
            f.append(b"abc")
            with pytest.raises(StorageError):
                f.read(0, 10)

    def test_read_only_rejects_writes_and_missing_files(self, tmp_path):
        path = tmp_path / "ro.bin"
        with pytest.raises(StorageError):
            BinaryFile(path, read_only=True)
        path.write_bytes(b"data")
        with BinaryFile(path, read_only=True) as f:
            with pytest.raises(StorageError):
                f.append(b"x")

    def test_write_at_patches_in_place(self, tmp_path):
        with BinaryFile(tmp_path / "blob.bin") as f:
            f.append(b"xxxxx")
            f.write_at(1, b"abc")
            assert f.read(0, 5) == b"xabcx"

    def test_read_after_append_is_random(self, tmp_path):
        """Writes move the file offset, so the next read cannot be a
        sequential continuation — regression for the stale ``_next_offset``
        misclassification after ``append``."""
        stats = IOStats()
        with BinaryFile(tmp_path / "blob.bin", stats=stats) as f:
            f.append(b"0123456789")
            f.read(0, 4)      # offset 0 right after an append -> random
            f.read(4, 4)      # true continuation -> sequential
            f.append(b"ab")
            f.read(8, 2)      # would continue read@4, but the append moved
            #                   the cursor to EOF -> random
        snap = stats.snapshot()
        assert snap.read_calls == 3
        assert snap.random_seeks == 2
        assert snap.sequential_reads == 1

    def test_read_after_write_at_is_random(self, tmp_path):
        stats = IOStats()
        with BinaryFile(tmp_path / "blob.bin", stats=stats) as f:
            f.append(b"0123456789")
            f.read(0, 4)
            f.write_at(0, b"zz")
            f.read(4, 4)      # continuation of read@0, but write_at seeked
        snap = stats.snapshot()
        assert snap.random_seeks == 2
        assert snap.sequential_reads == 0

    def test_sync_makes_bytes_visible_on_disk(self, tmp_path):
        path = tmp_path / "blob.bin"
        with BinaryFile(path) as f:
            f.append(b"durable")
            f.sync()
            assert path.read_bytes() == b"durable"


class TestSeriesFile:
    def test_append_batch_and_read_range(self, tmp_path):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        with SeriesFile(tmp_path / "s.bin", series_length=4) as f:
            pos = f.append_batch(data)
            assert pos == 0
            assert f.num_series == 3
            np.testing.assert_array_equal(f.read_range(1, 2), data[1:])
            np.testing.assert_array_equal(f.read_series(0), data[0])

    def test_positions_accumulate_across_appends(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=2) as f:
            assert f.append_batch(np.zeros((2, 2), dtype=np.float32)) == 0
            assert f.append_batch(np.ones((3, 2), dtype=np.float32)) == 2
            assert f.num_series == 5

    def test_single_series_append(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=3) as f:
            f.append_batch(np.array([1.0, 2.0, 3.0], dtype=np.float32))
            np.testing.assert_array_equal(f.read_series(0), [1.0, 2.0, 3.0])

    def test_rejects_wrong_length(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=4) as f:
            with pytest.raises(StorageError):
                f.append_batch(np.zeros((1, 5), dtype=np.float32))

    def test_rejects_out_of_bounds_read(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=4) as f:
            f.append_batch(np.zeros((2, 4), dtype=np.float32))
            with pytest.raises(StorageError):
                f.read_range(1, 2)

    def test_rejects_misaligned_existing_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 10)  # not a multiple of 16
        with pytest.raises(StorageError):
            SeriesFile(path, series_length=4)

    def test_read_positions_rejects_unsorted(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=2) as f:
            f.append_batch(np.zeros((5, 2), dtype=np.float32))
            with pytest.raises(ValueError):
                f.read_positions(np.array([3, 1, 4]))

    def test_read_positions_rejects_duplicates(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=2) as f:
            f.append_batch(np.zeros((5, 2), dtype=np.float32))
            with pytest.raises(ValueError):
                f.read_positions(np.array([1, 2, 2, 3]))

    def test_read_positions_empty_is_fine(self, tmp_path):
        with SeriesFile(tmp_path / "s.bin", series_length=2) as f:
            f.append_batch(np.zeros((5, 2), dtype=np.float32))
            rows = f.read_positions(np.array([], dtype=np.int64))
            assert rows.shape == (0, 2)


class TestSymbolFile:
    def test_roundtrip_and_read_all(self, tmp_path):
        words = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        with SymbolFile(tmp_path / "w.bin", segments=3) as f:
            assert f.append_batch(words) == 0
            assert f.num_words == 2
            np.testing.assert_array_equal(f.read_all(), words)

    def test_rejects_wrong_width(self, tmp_path):
        with SymbolFile(tmp_path / "w.bin", segments=3) as f:
            with pytest.raises(StorageError):
                f.append_batch(np.zeros((1, 4), dtype=np.uint8))
