"""Unit tests for MANIFEST.json: integrity, artifact checks, publish."""

import json
import os

import pytest

from repro.errors import ChecksumError, ManifestError, StorageError
from repro.storage import manifest as manifest_mod


def _make_manifest(directory):
    (directory / "lrd.bin").write_bytes(b"\x00" * 64)
    (directory / "lsd.bin").write_bytes(b"\x01" * 16)
    return manifest_mod.Manifest(
        num_series=4,
        series_length=4,
        num_leaves=2,
        config_digest=manifest_mod.config_digest({"leaf_capacity": 2}),
        artifacts={
            "lrd.bin": manifest_mod.record_artifact(directory / "lrd.bin", 1),
            "lsd.bin": manifest_mod.record_artifact(directory / "lsd.bin", 1),
        },
    )


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        manifest_mod.save_manifest(tmp_path, manifest)
        loaded = manifest_mod.load_manifest(tmp_path)
        assert loaded == manifest
        # No staging residue after the atomic publish.
        assert not manifest_mod.staging_path(
            tmp_path / manifest_mod.MANIFEST_FILENAME
        ).exists()

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            manifest_mod.load_manifest(tmp_path)

    def test_config_digest_is_stable_and_order_insensitive(self):
        a = manifest_mod.config_digest({"x": 1, "y": 2})
        b = manifest_mod.config_digest({"y": 2, "x": 1})
        assert a == b
        assert a != manifest_mod.config_digest({"x": 1, "y": 3})


class TestManifestIntegrity:
    def test_every_flipped_byte_is_detected(self, tmp_path):
        """Any single corrupted byte in MANIFEST.json must raise."""
        manifest_mod.save_manifest(tmp_path, _make_manifest(tmp_path))
        path = tmp_path / manifest_mod.MANIFEST_FILENAME
        pristine = path.read_bytes()
        for i in range(len(pristine)):
            mutated = bytearray(pristine)
            mutated[i] ^= 0xFF
            path.write_bytes(bytes(mutated))
            with pytest.raises(ManifestError):
                manifest_mod.load_manifest(tmp_path)
        path.write_bytes(pristine)
        manifest_mod.load_manifest(tmp_path)  # pristine still loads

    def test_missing_checksum_field_raises(self, tmp_path):
        manifest_mod.save_manifest(tmp_path, _make_manifest(tmp_path))
        path = tmp_path / manifest_mod.MANIFEST_FILENAME
        doc = json.loads(path.read_text())
        del doc["manifest_crc32"]
        path.write_text(json.dumps(doc))
        with pytest.raises(ManifestError):
            manifest_mod.load_manifest(tmp_path)

    def test_unsupported_version_raises(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        manifest.version = manifest_mod.MANIFEST_VERSION + 1
        manifest_mod.save_manifest(tmp_path, manifest)
        with pytest.raises(ManifestError):
            manifest_mod.load_manifest(tmp_path)


class TestArtifactChecks:
    def test_healthy_artifacts_pass_full(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        manifest_mod.verify_directory(tmp_path, manifest, level="full")

    def test_missing_artifact(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        (tmp_path / "lsd.bin").unlink()
        with pytest.raises(StorageError, match="lsd.bin"):
            manifest_mod.verify_directory(tmp_path, manifest, level="quick")

    def test_truncation_caught_at_quick_level(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        (tmp_path / "lrd.bin").write_bytes(b"\x00" * 32)
        with pytest.raises(ChecksumError, match="lrd.bin"):
            manifest_mod.verify_directory(tmp_path, manifest, level="quick")

    def test_flip_caught_only_at_full_level(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        blob = bytearray((tmp_path / "lrd.bin").read_bytes())
        blob[10] ^= 0xFF
        (tmp_path / "lrd.bin").write_bytes(bytes(blob))
        manifest_mod.verify_directory(tmp_path, manifest, level="quick")
        with pytest.raises(ChecksumError, match="lrd.bin"):
            manifest_mod.verify_directory(tmp_path, manifest, level="full")

    def test_wrong_format_version(self, tmp_path):
        manifest = _make_manifest(tmp_path)
        with pytest.raises(StorageError, match="format version"):
            manifest_mod.check_artifact(
                tmp_path, manifest.artifacts["lrd.bin"],
                level="quick", expected_version=99,
            )


class TestPublish:
    def test_publish_replaces_atomically(self, tmp_path):
        final = tmp_path / "artifact.bin"
        final.write_bytes(b"old generation")
        staged = manifest_mod.staging_path(final)
        staged.write_bytes(b"new generation")
        manifest_mod.publish(staged, final)
        assert final.read_bytes() == b"new generation"
        assert not staged.exists()

    def test_clear_staging_removes_leftovers(self, tmp_path):
        for name in ("lrd.bin", "lsd.bin"):
            manifest_mod.staging_path(tmp_path / name).write_bytes(b"junk")
        manifest_mod.clear_staging(tmp_path, ["lrd.bin", "lsd.bin"])
        assert os.listdir(tmp_path) == []

    def test_stream_crc32_matches_zlib(self, tmp_path):
        import zlib

        blob = os.urandom(3 * 1024 * 1024 + 17)
        path = tmp_path / "big.bin"
        path.write_bytes(blob)
        assert manifest_mod.stream_crc32(path, chunk_size=1 << 16) == zlib.crc32(blob)
