"""Unit tests for the storage fault-injection harness."""

import os
import time

import pytest

from repro.storage import faults
from repro.storage.files import BinaryFile
from repro.storage.iostats import IOStats


class TestFaultPlanValidation:
    def test_rejects_unknown_op_and_mode(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(op="fsyncish")
        with pytest.raises(ValueError):
            faults.FaultPlan(mode="explode")

    def test_rejects_torn_read(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(op="read", mode="torn")

    def test_rejects_bad_trigger_and_fraction(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(at=0)
        with pytest.raises(ValueError):
            faults.FaultPlan(mode="torn", torn_fraction=1.0)


class TestInjectorCounting:
    def test_counts_all_operations(self, tmp_path):
        with faults.inject([]) as injector:
            with BinaryFile(tmp_path / "b.bin") as f:
                f.append(b"abcdef")
                f.read(0, 3)
                f.read(3, 3)
                f.flush()
        assert injector.counts == {"read": 2, "write": 1, "flush": 1}

    def test_nested_install_rejected(self):
        with faults.inject([]):
            with pytest.raises(RuntimeError):
                with faults.inject([]):
                    pass

    def test_injector_cleared_after_block(self):
        with faults.inject([]):
            assert faults.active_injector() is not None
        assert faults.active_injector() is None


class TestCrashFaults:
    def test_crash_write_persists_nothing(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"keep")
            with faults.inject(faults.FaultPlan(op="write", at=1)):
                with pytest.raises(faults.CrashFault):
                    f.append(b"lost")
            f.flush()
        assert (tmp_path / "b.bin").read_bytes() == b"keep"

    def test_torn_write_persists_prefix(self, tmp_path):
        plan = faults.FaultPlan(op="write", at=1, mode="torn", torn_fraction=0.5)
        with BinaryFile(tmp_path / "b.bin") as f:
            with faults.inject(plan):
                with pytest.raises(faults.CrashFault):
                    f.append(b"abcdefgh")
        assert (tmp_path / "b.bin").read_bytes() == b"abcd"

    def test_crash_flush(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"x")
            with faults.inject(faults.FaultPlan(op="flush", at=1)):
                with pytest.raises(faults.CrashFault):
                    f.flush()

    def test_crash_read_is_not_retried(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"abc")
            f.flush()
            with faults.inject(
                faults.FaultPlan(op="read", at=1, mode="crash")
            ) as injector:
                with pytest.raises(faults.CrashFault):
                    f.read(0, 3)
            assert injector.counts["read"] == 1  # one attempt, no retries


class TestTransientFaults:
    def test_read_retries_until_success(self, tmp_path):
        stats = IOStats()
        with BinaryFile(tmp_path / "b.bin", stats=stats) as f:
            f.append(b"hello")
            f.flush()
            plan = faults.FaultPlan(op="read", at=1, mode="transient", failures=2)
            with faults.inject(plan) as injector:
                assert f.read(0, 5) == b"hello"
            assert injector.counts["read"] == 3  # 2 failures + 1 success
        assert stats.snapshot().read_calls == 1  # only the success is recorded

    def test_read_gives_up_after_bounded_retries(self, tmp_path):
        from repro.storage.files import READ_RETRIES

        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"hello")
            f.flush()
            plan = faults.FaultPlan(
                op="read", at=1, mode="transient", failures=READ_RETRIES + 5
            )
            with faults.inject(plan) as injector:
                with pytest.raises(faults.TransientFault):
                    f.read(0, 5)
            assert injector.counts["read"] == READ_RETRIES


class TestKillAndStallModes:
    def test_kill_degrades_to_crash_outside_workers(self, tmp_path):
        # Un-armed kill plans (the default) must never take down the
        # process they fire in — they land as a plain CrashFault.
        plan = faults.FaultPlan(op="write", at=1, mode="kill")
        with BinaryFile(tmp_path / "b.bin") as f:
            with faults.inject(plan):
                with pytest.raises(faults.CrashFault, match="only armed"):
                    f.append(b"x")

    def test_stall_sleeps_then_proceeds(self, tmp_path):
        plan = faults.FaultPlan(op="read", at=1, mode="stall", stall_seconds=0.2)
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"hello")
            f.flush()
            with faults.inject(plan):
                started = time.monotonic()
                assert f.read(0, 5) == b"hello"
                assert time.monotonic() - started >= 0.2

    def test_rejects_negative_stall(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(mode="stall", stall_seconds=-0.1)


class TestFence:
    def test_fence_makes_a_fault_fire_exactly_once(self, tmp_path):
        fence = tmp_path / "fence"
        plan = faults.FaultPlan(op="write", at=1, mode="crash", fence=str(fence))
        with BinaryFile(tmp_path / "b.bin") as f:
            with faults.inject(plan):
                with pytest.raises(faults.CrashFault):
                    f.append(b"first")
        assert fence.exists()
        # A fresh injector with the *same* fence sees the claimed latch
        # and lets the retried operation through — the recovery path.
        retry_plan = faults.FaultPlan(
            op="write", at=1, mode="crash", fence=str(fence)
        )
        with BinaryFile(tmp_path / "b.bin") as f:
            with faults.inject(retry_plan):
                f.append(b"second")
            f.flush()
        assert (tmp_path / "b.bin").read_bytes() == b"second"

    def test_claim_fence_is_exclusive(self, tmp_path):
        fence = str(tmp_path / "fence")
        first = faults.FaultPlan(fence=fence)
        second = faults.FaultPlan(fence=fence)
        assert first.claim_fence()
        assert not second.claim_fence()
        assert not first.claim_fence()

    def test_plans_without_fence_always_fire(self):
        assert faults.FaultPlan().claim_fence()


class TestPlanShipping:
    def test_to_dict_from_dict_roundtrip(self):
        plan = faults.FaultPlan(
            op="read", at=3, mode="transient", failures=4,
            stall_seconds=0.0, fence="/tmp/f",
        )
        restored = faults.FaultPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()
        assert "_remaining" not in plan.to_dict()

    def test_env_channel_targets_shards_and_star(self, monkeypatch):
        plans = {
            0: faults.FaultPlan(op="write", at=1),
            2: [faults.FaultPlan(op="read", at=2, mode="transient")],
            "*": faults.FaultPlan(op="flush", at=1),
        }
        monkeypatch.setenv(faults.PLANS_ENV, faults.encode_plans(plans))
        for_shard_0 = faults.plans_for_shards([0])
        # Stable key-sorted order: "*" < "0".
        assert [(p.op, p.at) for p in for_shard_0] == [
            ("flush", 1),
            ("write", 1),
        ]
        assert len(faults.plans_for_shards([1])) == 1  # "*" only
        assert len(faults.plans_for_shards([0, 2])) == 3

    def test_plans_for_shards_without_env_is_empty(self, monkeypatch):
        monkeypatch.delenv(faults.PLANS_ENV, raising=False)
        assert faults.plans_for_shards([0, 1]) == []

    def test_ship_plans_restores_environment(self, monkeypatch):
        monkeypatch.delenv(faults.PLANS_ENV, raising=False)
        with faults.ship_plans({0: faults.FaultPlan()}):
            assert faults.PLANS_ENV in os.environ
        assert faults.PLANS_ENV not in os.environ
        monkeypatch.setenv(faults.PLANS_ENV, "sentinel")
        with faults.ship_plans({0: faults.FaultPlan()}):
            assert os.environ[faults.PLANS_ENV] != "sentinel"
        assert os.environ[faults.PLANS_ENV] == "sentinel"


class TestWorkerInjection:
    def test_noop_without_shipped_plans(self, monkeypatch):
        monkeypatch.delenv(faults.PLANS_ENV, raising=False)
        with faults.worker_injection([0]) as injector:
            assert injector is None
        assert faults.active_injector() is None

    def test_installs_kill_armed_injector_for_targeted_shards(
        self, monkeypatch
    ):
        monkeypatch.setenv(
            faults.PLANS_ENV,
            faults.encode_plans({3: faults.FaultPlan(op="read", at=9)}),
        )
        with faults.worker_injection([3]) as injector:
            assert injector is not None
            assert injector.allow_kill
            assert faults.active_injector() is injector
        assert faults.active_injector() is None
        with faults.worker_injection([4]) as injector:
            assert injector is None
