"""Unit tests for the storage fault-injection harness."""

import pytest

from repro.storage import faults
from repro.storage.files import BinaryFile
from repro.storage.iostats import IOStats


class TestFaultPlanValidation:
    def test_rejects_unknown_op_and_mode(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(op="fsyncish")
        with pytest.raises(ValueError):
            faults.FaultPlan(mode="explode")

    def test_rejects_torn_read(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(op="read", mode="torn")

    def test_rejects_bad_trigger_and_fraction(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(at=0)
        with pytest.raises(ValueError):
            faults.FaultPlan(mode="torn", torn_fraction=1.0)


class TestInjectorCounting:
    def test_counts_all_operations(self, tmp_path):
        with faults.inject([]) as injector:
            with BinaryFile(tmp_path / "b.bin") as f:
                f.append(b"abcdef")
                f.read(0, 3)
                f.read(3, 3)
                f.flush()
        assert injector.counts == {"read": 2, "write": 1, "flush": 1}

    def test_nested_install_rejected(self):
        with faults.inject([]):
            with pytest.raises(RuntimeError):
                with faults.inject([]):
                    pass

    def test_injector_cleared_after_block(self):
        with faults.inject([]):
            assert faults.active_injector() is not None
        assert faults.active_injector() is None


class TestCrashFaults:
    def test_crash_write_persists_nothing(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"keep")
            with faults.inject(faults.FaultPlan(op="write", at=1)):
                with pytest.raises(faults.CrashFault):
                    f.append(b"lost")
            f.flush()
        assert (tmp_path / "b.bin").read_bytes() == b"keep"

    def test_torn_write_persists_prefix(self, tmp_path):
        plan = faults.FaultPlan(op="write", at=1, mode="torn", torn_fraction=0.5)
        with BinaryFile(tmp_path / "b.bin") as f:
            with faults.inject(plan):
                with pytest.raises(faults.CrashFault):
                    f.append(b"abcdefgh")
        assert (tmp_path / "b.bin").read_bytes() == b"abcd"

    def test_crash_flush(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"x")
            with faults.inject(faults.FaultPlan(op="flush", at=1)):
                with pytest.raises(faults.CrashFault):
                    f.flush()

    def test_crash_read_is_not_retried(self, tmp_path):
        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"abc")
            f.flush()
            with faults.inject(
                faults.FaultPlan(op="read", at=1, mode="crash")
            ) as injector:
                with pytest.raises(faults.CrashFault):
                    f.read(0, 3)
            assert injector.counts["read"] == 1  # one attempt, no retries


class TestTransientFaults:
    def test_read_retries_until_success(self, tmp_path):
        stats = IOStats()
        with BinaryFile(tmp_path / "b.bin", stats=stats) as f:
            f.append(b"hello")
            f.flush()
            plan = faults.FaultPlan(op="read", at=1, mode="transient", failures=2)
            with faults.inject(plan) as injector:
                assert f.read(0, 5) == b"hello"
            assert injector.counts["read"] == 3  # 2 failures + 1 success
        assert stats.snapshot().read_calls == 1  # only the success is recorded

    def test_read_gives_up_after_bounded_retries(self, tmp_path):
        from repro.storage.files import READ_RETRIES

        with BinaryFile(tmp_path / "b.bin") as f:
            f.append(b"hello")
            f.flush()
            plan = faults.FaultPlan(
                op="read", at=1, mode="transient", failures=READ_RETRIES + 5
            )
            with faults.inject(plan) as injector:
                with pytest.raises(faults.TransientFault):
                    f.read(0, 5)
            assert injector.counts["read"] == READ_RETRIES
