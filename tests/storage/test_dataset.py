"""Unit tests for the Dataset abstraction."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.dataset import Dataset
from repro.storage.iostats import IOStats

from ..conftest import make_random_walks


class TestInMemoryDataset:
    def test_shape_accessors(self, small_dataset):
        ds = Dataset.from_array(small_dataset)
        assert ds.num_series == 200
        assert ds.series_length == 64
        assert not ds.on_disk
        assert ds.total_bytes == 200 * 64 * 4

    def test_read_batch_and_series(self, small_dataset):
        ds = Dataset.from_array(small_dataset)
        np.testing.assert_array_equal(ds.read_batch(10, 5), small_dataset[10:15])
        np.testing.assert_array_equal(ds.read_series(3), small_dataset[3])

    def test_iter_batches_covers_everything(self, small_dataset):
        ds = Dataset.from_array(small_dataset)
        seen = []
        for start, batch in ds.iter_batches(64):
            assert batch.shape[0] in (64, 8)
            seen.append((start, batch))
        total = sum(b.shape[0] for _, b in seen)
        assert total == 200
        np.testing.assert_array_equal(seen[0][1], small_dataset[:64])

    def test_out_of_bounds_read(self, small_dataset):
        ds = Dataset.from_array(small_dataset)
        with pytest.raises(StorageError):
            ds.read_batch(199, 2)

    def test_rejects_both_or_neither_source(self, small_dataset):
        with pytest.raises(ValueError):
            Dataset()


class TestOnDiskDataset:
    def test_write_then_open_roundtrip(self, tmp_path, small_dataset):
        ds = Dataset.write(tmp_path / "data.bin", small_dataset)
        assert ds.on_disk
        assert ds.num_series == 200
        np.testing.assert_array_equal(ds.load_all(), small_dataset)
        ds.close()

    def test_reads_are_accounted(self, tmp_path):
        data = make_random_walks(50, 32, seed=50)
        Dataset.write(tmp_path / "data.bin", data).close()
        stats = IOStats()
        with Dataset.open(tmp_path / "data.bin", 32, stats=stats) as ds:
            ds.read_batch(0, 10)
            ds.read_batch(10, 10)  # sequential continuation
            ds.read_batch(0, 5)    # rewind: random
        snap = stats.snapshot()
        assert snap.read_calls == 3
        assert snap.sequential_reads == 2
        assert snap.random_seeks == 1
        assert snap.bytes_read == (10 + 10 + 5) * 32 * 4

    def test_iter_batches_is_sequential_io(self, tmp_path):
        data = make_random_walks(64, 16, seed=51)
        Dataset.write(tmp_path / "data.bin", data).close()
        stats = IOStats()
        with Dataset.open(tmp_path / "data.bin", 16, stats=stats) as ds:
            for _ in ds.iter_batches(16):
                pass
        snap = stats.snapshot()
        assert snap.random_seeks == 0
        assert snap.sequential_reads == 4
