"""Unit tests for the byte-budgeted leaf-block LRU cache."""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.storage.cache import CacheSnapshot, LeafCache
from repro.storage.files import SeriesFile
from repro.storage.iostats import IOStats


def _block(value: float, floats: int = 8) -> np.ndarray:
    return np.full(floats, value, dtype=np.float64)


class TestLeafCache:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            LeafCache(0)
        with pytest.raises(ValueError):
            LeafCache(-1)

    def test_get_put_roundtrip_counts_hits_and_misses(self):
        cache = LeafCache(1 << 16)
        assert cache.get((0, 4)) is None
        assert cache.put((0, 4), _block(1.0))
        np.testing.assert_array_equal(cache.get((0, 4)), _block(1.0))
        snap = cache.snapshot()
        assert snap.hits == 1
        assert snap.misses == 1
        assert snap.entries == 1
        assert snap.hit_rate == 0.5

    def test_cached_blocks_are_read_only(self):
        cache = LeafCache(1 << 16)
        cache.put((0, 4), np.zeros(4))
        block = cache.get((0, 4))
        with pytest.raises(ValueError):
            block[0] = 1.0

    def test_respects_byte_budget_with_lru_eviction(self):
        one_block = _block(0.0).nbytes
        cache = LeafCache(3 * one_block)
        for i in range(5):
            cache.put((i, 1), _block(float(i)))
            assert cache.current_bytes <= cache.budget_bytes
        # Oldest two evicted, newest three resident.
        assert cache.get((0, 1)) is None
        assert cache.get((1, 1)) is None
        for i in (2, 3, 4):
            assert cache.get((i, 1)) is not None
        assert cache.snapshot().evictions == 2

    def test_get_refreshes_recency(self):
        one_block = _block(0.0).nbytes
        cache = LeafCache(2 * one_block)
        cache.put((0, 1), _block(0.0))
        cache.put((1, 1), _block(1.0))
        cache.get((0, 1))  # (0, 1) is now the most recent
        cache.put((2, 1), _block(2.0))
        assert cache.get((1, 1)) is None  # LRU victim
        assert cache.get((0, 1)) is not None

    def test_oversized_block_is_not_admitted(self):
        cache = LeafCache(16)
        assert not cache.put((0, 8), _block(1.0))  # 64 bytes > 16
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_clear_drops_everything_but_keeps_counters(self):
        cache = LeafCache(1 << 16)
        cache.put((0, 1), _block(1.0))
        cache.get((0, 1))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.snapshot().hits == 1

    def test_snapshot_delta_mirrors_iosnapshot(self):
        cache = LeafCache(1 << 16)
        cache.put((0, 1), _block(1.0))
        cache.get((0, 1))
        before = cache.snapshot()
        cache.get((0, 1))
        cache.get((9, 9))
        delta = cache.snapshot() - before
        assert delta == CacheSnapshot(
            hits=1, misses=1, evictions=0, current_bytes=_block(1.0).nbytes,
            entries=1,
        )
        assert delta.lookups == 2

    def test_bind_registry_mirrors_counters(self):
        registry = MetricsRegistry()
        cache = LeafCache(1 << 16)
        cache.bind_registry(registry)
        cache.get((0, 1))
        cache.put((0, 1), _block(1.0))
        cache.get((0, 1))
        summary = registry.summary()
        assert summary["counters"]["cache.leaf.hits"] == 1
        assert summary["counters"]["cache.leaf.misses"] == 1
        assert summary["gauges"]["cache.leaf.bytes"] == _block(1.0).nbytes

    def test_budget_respected_under_concurrency(self):
        one_block = _block(0.0).nbytes
        cache = LeafCache(4 * one_block)
        barrier = threading.Barrier(8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(200):
                key = (int(rng.integers(0, 32)), 1)
                if cache.get(key) is None:
                    cache.put(key, _block(float(key[0])))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.current_bytes <= cache.budget_bytes
        assert len(cache) <= 4
        # Every resident block still holds the value its key promises.
        for i in range(32):
            block = cache.get((i, 1))
            if block is not None:
                np.testing.assert_array_equal(block, _block(float(i)))


class TestSeriesFileCache:
    def _make_file(self, tmp_path, cache=None, stats=None, name="series.bin"):
        f = SeriesFile(tmp_path / name, 4, stats=stats, cache=cache)
        f.append_batch(np.arange(32, dtype=np.float32).reshape(8, 4))
        return f

    def test_warm_reads_bypass_file_io(self, tmp_path):
        stats = IOStats()
        cache = LeafCache(1 << 20)
        with self._make_file(tmp_path, cache=cache, stats=stats) as f:
            first = f.read_range(2, 3)
            before = stats.snapshot()
            second = f.read_range(2, 3)
            delta = stats.snapshot() - before
        assert delta.read_calls == 0
        assert delta.bytes_read == 0
        np.testing.assert_array_equal(first, second)
        assert cache.snapshot().hits == 1

    def test_uncached_behaviour_identical(self, tmp_path):
        cache = LeafCache(1 << 20)
        with self._make_file(tmp_path, cache=cache) as cached, self._make_file(
            tmp_path, cache=None, name="plain.bin"
        ) as plain:
            for position, count in ((0, 8), (2, 3), (2, 3), (7, 1)):
                np.testing.assert_array_equal(
                    cached.read_range(position, count),
                    plain.read_range(position, count),
                )

    def test_append_invalidates_cache(self, tmp_path):
        cache = LeafCache(1 << 20)
        with self._make_file(tmp_path, cache=cache) as f:
            f.read_range(0, 8)
            assert len(cache) == 1
            f.append_batch(np.zeros((2, 4), dtype=np.float32))
            assert len(cache) == 0
            # A block spanning the old EOF now sees the appended rows.
            grown = f.read_range(6, 4)
            np.testing.assert_array_equal(grown[2:], np.zeros((2, 4)))

    def test_out_of_range_still_raises_with_cache(self, tmp_path):
        from repro.errors import StorageError

        cache = LeafCache(1 << 20)
        with self._make_file(tmp_path, cache=cache) as f:
            with pytest.raises(StorageError):
                f.read_range(6, 10)
