"""Fuzz tests: the HTree loader must reject garbage, never crash oddly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.htree import MAGIC, load_tree, save_tree


@settings(max_examples=60, deadline=None)
@given(blob=st.binary(min_size=0, max_size=400))
def test_random_bytes_never_crash(tmp_path_factory, blob):
    """Arbitrary bytes: StorageError or nothing, never another exception."""
    path = tmp_path_factory.mktemp("fuzz") / "t.bin"
    path.write_bytes(blob)
    try:
        load_tree(path)
    except StorageError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(
    cut=st.integers(1, 200),
    flip_at=st.integers(0, 199),
    flip_to=st.integers(0, 255),
)
def test_mutated_valid_tree_never_crashes(tmp_path_factory, cut, flip_at, flip_to):
    """Truncations and byte flips of a real file: StorageError or a loaded
    (possibly semantically different) tree — never an uncontrolled error."""
    from repro.core.node import Node
    from repro.summarization.eapca import Segmentation

    tmp = tmp_path_factory.mktemp("fuzz2")
    leaf = Node(0, Segmentation([4, 8]))
    leaf.size = 3
    leaf.file_position = 0
    save_tree(tmp / "ok.bin", leaf, {"n": 3})
    blob = bytearray((tmp / "ok.bin").read_bytes())

    mutated = bytearray(blob[: max(len(blob) - cut, 12)])
    if flip_at < len(mutated):
        mutated[flip_at] = flip_to
    (tmp / "bad.bin").write_bytes(bytes(mutated))
    try:
        load_tree(tmp / "bad.bin")
    except StorageError:
        pass


# ---------------------------------------------------------------------------
# Byte-level corruption sweep over the data artifacts (not just htree.bin):
# verify="full" must catch every flip via the manifest checksums, while
# verify="off" preserves the old permissive behaviour.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def built_index(tmp_path_factory):
    from repro.core import HerculesConfig, HerculesIndex

    from ..conftest import make_random_walks

    directory = tmp_path_factory.mktemp("corrupt") / "index"
    data = make_random_walks(60, 16, seed=13)
    config = HerculesConfig(
        leaf_capacity=12, num_build_threads=1, flush_threshold=1
    )
    HerculesIndex.build(data, config, directory=directory).close()
    return directory


@settings(max_examples=25, deadline=None)
@given(
    artifact=st.sampled_from(["lrd.bin", "lsd.bin"]),
    offset=st.integers(0, 10_000),
    flip=st.integers(1, 255),
)
def test_data_artifact_flip_sweep(built_index, tmp_path_factory, artifact, offset, flip):
    """A flipped byte anywhere in LRD/LSD raises ChecksumError at full
    verification, while verify="off" still opens the file silently."""
    import shutil

    from repro.core import HerculesIndex
    from repro.errors import ChecksumError

    copy = tmp_path_factory.mktemp("flip") / "index"
    shutil.copytree(built_index, copy)
    path = copy / artifact
    blob = bytearray(path.read_bytes())
    blob[offset % len(blob)] ^= flip
    path.write_bytes(bytes(blob))

    with pytest.raises(ChecksumError):
        HerculesIndex.open(copy, verify="full")
    HerculesIndex.open(copy, verify="off").close()  # old permissive path


@settings(max_examples=15, deadline=None)
@given(artifact=st.sampled_from(["lrd.bin", "lsd.bin"]), cut=st.integers(1, 500))
def test_data_artifact_truncation_sweep(built_index, tmp_path_factory, artifact, cut):
    """Truncation is caught by full verification via the manifest size;
    verify="off" behaves as before: StorageError on misalignment, or a
    silent open when the truncation happens to stay record-aligned."""
    import shutil

    from repro.core import HerculesIndex
    from repro.errors import ChecksumError, StorageError

    copy = tmp_path_factory.mktemp("cut") / "index"
    shutil.copytree(built_index, copy)
    path = copy / artifact
    blob = path.read_bytes()
    path.write_bytes(blob[: max(len(blob) - cut, 1)])

    with pytest.raises(ChecksumError):
        HerculesIndex.open(copy, verify="full")
    try:
        HerculesIndex.open(copy, verify="off").close()
    except StorageError:
        pass


def test_valid_magic_with_huge_settings_length(tmp_path):
    """A header claiming more settings bytes than exist must not hang."""
    import struct

    path = tmp_path / "t.bin"
    path.write_bytes(struct.pack("<8sII", MAGIC, 1, 10_000_000) + b"{}")
    with pytest.raises(StorageError):
        load_tree(path)
