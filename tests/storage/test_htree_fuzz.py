"""Fuzz tests: the HTree loader must reject garbage, never crash oddly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.htree import MAGIC, load_tree, save_tree


@settings(max_examples=60, deadline=None)
@given(blob=st.binary(min_size=0, max_size=400))
def test_random_bytes_never_crash(tmp_path_factory, blob):
    """Arbitrary bytes: StorageError or nothing, never another exception."""
    path = tmp_path_factory.mktemp("fuzz") / "t.bin"
    path.write_bytes(blob)
    try:
        load_tree(path)
    except StorageError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(
    cut=st.integers(1, 200),
    flip_at=st.integers(0, 199),
    flip_to=st.integers(0, 255),
)
def test_mutated_valid_tree_never_crashes(tmp_path_factory, cut, flip_at, flip_to):
    """Truncations and byte flips of a real file: StorageError or a loaded
    (possibly semantically different) tree — never an uncontrolled error."""
    from repro.core.node import Node
    from repro.summarization.eapca import Segmentation

    tmp = tmp_path_factory.mktemp("fuzz2")
    leaf = Node(0, Segmentation([4, 8]))
    leaf.size = 3
    leaf.file_position = 0
    save_tree(tmp / "ok.bin", leaf, {"n": 3})
    blob = bytearray((tmp / "ok.bin").read_bytes())

    mutated = bytearray(blob[: max(len(blob) - cut, 12)])
    if flip_at < len(mutated):
        mutated[flip_at] = flip_to
    (tmp / "bad.bin").write_bytes(bytes(mutated))
    try:
        load_tree(tmp / "bad.bin")
    except StorageError:
        pass


def test_valid_magic_with_huge_settings_length(tmp_path):
    """A header claiming more settings bytes than exist must not hang."""
    import struct

    path = tmp_path / "t.bin"
    path.write_bytes(struct.pack("<8sII", MAGIC, 1, 10_000_000) + b"{}")
    with pytest.raises(StorageError):
        load_tree(path)
