"""Unit and property tests for DTW, envelopes, and LB_Keogh."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.dtw import (
    dtw_distance,
    dtw_distance_batch,
    dtw_envelope,
    lb_keogh,
    resolve_window,
)
from repro.distance.euclidean import euclidean

from ..conftest import make_random_walks


def dtw_reference(a, b, window):
    """Unvectorized banded DTW (squared costs), for cross-checking."""
    n = len(a)
    inf = np.inf
    dp = np.full((n + 1, n + 1), inf)
    dp[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - window)
        hi = min(n, i + window)
        for j in range(lo, hi + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            dp[i, j] = cost + min(dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
    return float(np.sqrt(dp[n, n]))


class TestResolveWindow:
    def test_none_defaults_to_ten_percent(self):
        assert resolve_window(100, None) == 10

    def test_fraction_and_points(self):
        assert resolve_window(64, 0.25) == 16
        assert resolve_window(64, 5) == 5
        assert resolve_window(64, 0) == 0

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_window(10, -1)
        with pytest.raises(ValueError):
            resolve_window(10, 1.5)


class TestEnvelope:
    def test_envelope_bounds_the_series(self):
        series = make_random_walks(1, 64, seed=1)[0]
        lower, upper = dtw_envelope(series, 5)
        assert np.all(lower <= series.astype(np.float64) + 1e-9)
        assert np.all(upper >= series.astype(np.float64) - 1e-9)

    def test_zero_window_is_identity(self):
        series = make_random_walks(1, 32, seed=2)[0]
        lower, upper = dtw_envelope(series, 0)
        np.testing.assert_allclose(lower, series, atol=1e-7)
        np.testing.assert_allclose(upper, series, atol=1e-7)

    def test_known_envelope(self):
        series = np.array([0.0, 1.0, 0.0, -1.0, 0.0])
        lower, upper = dtw_envelope(series, 1)
        np.testing.assert_allclose(upper, [1, 1, 1, 0, 0])
        np.testing.assert_allclose(lower, [0, 0, -1, -1, -1])


class TestDtwDistance:
    def test_identity_is_zero(self):
        series = make_random_walks(1, 48, seed=3)[0]
        assert dtw_distance(series, series, 5) == pytest.approx(0.0, abs=1e-9)

    def test_matches_reference_dp(self):
        a = make_random_walks(1, 24, seed=4)[0].astype(np.float64)
        b = make_random_walks(1, 24, seed=5)[0].astype(np.float64)
        for window in (1, 3, 8, 24):
            assert dtw_distance(a, b, window) == pytest.approx(
                dtw_reference(a, b, window), rel=1e-9
            )

    def test_zero_window_equals_euclidean(self):
        a = make_random_walks(1, 32, seed=6)[0]
        b = make_random_walks(1, 32, seed=7)[0]
        assert dtw_distance(a, b, 0) == pytest.approx(euclidean(a, b), rel=1e-6)

    def test_wider_window_never_increases_distance(self):
        a = make_random_walks(1, 32, seed=8)[0]
        b = make_random_walks(1, 32, seed=9)[0]
        distances = [dtw_distance(a, b, w) for w in (0, 2, 4, 8, 16, 32)]
        assert all(d1 >= d2 - 1e-9 for d1, d2 in zip(distances, distances[1:]))

    def test_shifted_series_have_small_dtw(self):
        base = make_random_walks(1, 64, seed=10)[0].astype(np.float64)
        shifted = np.roll(base, 3)
        assert dtw_distance(base, shifted, 8) < euclidean(base, shifted)


class TestBatchDtw:
    def test_matches_pairwise(self):
        query = make_random_walks(1, 32, seed=11)[0]
        cands = make_random_walks(12, 32, seed=12)
        batch = dtw_distance_batch(query, cands, 4)
        for i in range(12):
            assert batch[i] == pytest.approx(
                dtw_distance(query, cands[i], 4), rel=1e-9
            )

    def test_cutoff_abandons_only_above(self):
        query = make_random_walks(1, 32, seed=13)[0]
        cands = make_random_walks(30, 32, seed=14)
        full = dtw_distance_batch(query, cands, 4)
        cutoff = float(np.median(full))
        abandoned = dtw_distance_batch(query, cands, 4, cutoff=cutoff)
        surviving = np.isfinite(abandoned)
        np.testing.assert_allclose(abandoned[surviving], full[surviving], rtol=1e-9)
        assert np.all(full[~surviving] > cutoff - 1e-9)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            dtw_distance_batch(np.zeros(8), np.zeros((2, 9)), 2)


class TestLbKeogh:
    def test_lower_bounds_dtw(self):
        query = make_random_walks(1, 48, seed=15)[0]
        cands = make_random_walks(25, 48, seed=16)
        window = 5
        lower, upper = dtw_envelope(query, window)
        bounds = lb_keogh(lower, upper, cands)
        true = dtw_distance_batch(query, cands, window)
        assert np.all(bounds <= true + 1e-9)

    def test_zero_for_series_inside_envelope(self):
        query = make_random_walks(1, 32, seed=17)[0]
        lower, upper = dtw_envelope(query, 4)
        inside = ((lower + upper) / 2.0).astype(np.float32)
        assert lb_keogh(lower, upper, inside) == pytest.approx(0.0)

    def test_scalar_candidate(self):
        query = make_random_walks(1, 16, seed=18)[0]
        lower, upper = dtw_envelope(query, 2)
        other = make_random_walks(1, 16, seed=19)[0]
        assert isinstance(lb_keogh(lower, upper, other), float)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(0, 16))
def test_lb_keogh_validity_property(seed, window):
    """LB_Keogh never exceeds banded DTW for matching windows."""
    query = make_random_walks(1, 24, seed=seed)[0]
    cand = make_random_walks(1, 24, seed=seed + 1)[0]
    lower, upper = dtw_envelope(query, window)
    bound = lb_keogh(lower, upper, cand)
    assert bound <= dtw_distance(query, cand, window) + 1e-7


class TestDtwScan:
    def test_exact_against_brute_force(self):
        from repro.baselines.dtw_scan import DtwScan

        data = make_random_walks(150, 32, seed=20)
        queries = make_random_walks(3, 32, seed=21)
        scan = DtwScan(data, window=4, chunk_size=64)
        for q in queries:
            answer = scan.knn(q, k=3)
            brute = np.sort(
                [dtw_distance(q, s, 4) for s in data]
            )[:3]
            np.testing.assert_allclose(answer.distances, brute, rtol=1e-7)

    def test_filter_prunes_with_tight_bsf(self):
        from repro.baselines.dtw_scan import DtwScan

        data = make_random_walks(200, 32, seed=22)
        scan = DtwScan(data, window=4, chunk_size=64)
        answer = scan.knn(data[0], k=1)  # self-query: bsf = 0 after chunk 1
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-7)
        assert answer.profile.sax_pruning > 0.5  # most candidates filtered
