"""Unit tests for Euclidean distance kernels."""

import numpy as np
import pytest

from repro.distance.euclidean import (
    batch_squared_euclidean,
    early_abandon_squared,
    euclidean,
    knn_from_distances,
    squared_euclidean,
)

from ..conftest import make_random_walks


class TestScalarKernels:
    def test_squared_euclidean_known_value(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([1.0, 2.0, 2.0])
        assert squared_euclidean(a, b) == 9.0
        assert euclidean(a, b) == 3.0

    def test_symmetry_and_identity(self):
        a = make_random_walks(1, 32, seed=1)[0]
        b = make_random_walks(1, 32, seed=2)[0]
        assert squared_euclidean(a, b) == pytest.approx(squared_euclidean(b, a))
        assert squared_euclidean(a, a) == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            squared_euclidean(np.zeros(3), np.zeros(4))


class TestBatchKernel:
    def test_matches_scalar_loop(self, small_dataset):
        query = small_dataset[0]
        batch = batch_squared_euclidean(query, small_dataset)
        for i in range(10):
            assert batch[i] == pytest.approx(
                squared_euclidean(query, small_dataset[i])
            )

    def test_accepts_single_candidate(self):
        q = np.array([1.0, 2.0])
        assert batch_squared_euclidean(q, np.array([3.0, 4.0])).shape == (1,)

    def test_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            batch_squared_euclidean(np.zeros(3), np.zeros((2, 4)))


class TestEarlyAbandon:
    def test_matches_batch_when_cutoff_infinite(self, small_dataset):
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        abandoned, compared = early_abandon_squared(query, small_dataset, np.inf)
        np.testing.assert_allclose(abandoned, full, rtol=1e-10)
        assert compared == small_dataset.size

    def test_abandoned_rows_truly_exceed_cutoff(self, small_dataset):
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        cutoff = float(np.median(full))
        result, compared = early_abandon_squared(query, small_dataset, cutoff)
        surviving = np.isfinite(result)
        np.testing.assert_allclose(result[surviving], full[surviving], rtol=1e-10)
        assert np.all(full[~surviving] > cutoff)
        assert compared < small_dataset.size  # abandoning saved work

    def test_tight_cutoff_prunes_everything_but_self(self, small_dataset):
        query = small_dataset[3]
        result, _ = early_abandon_squared(query, small_dataset, 1e-12)
        assert np.isfinite(result[3])
        assert result[3] == pytest.approx(0.0, abs=1e-12)

    def test_block_size_does_not_change_results(self, small_dataset):
        query = small_dataset[0]
        cutoff = 50.0
        r1, _ = early_abandon_squared(query, small_dataset, cutoff, block=8)
        r2, _ = early_abandon_squared(query, small_dataset, cutoff, block=64)
        finite1 = np.isfinite(r1)
        finite2 = np.isfinite(r2)
        np.testing.assert_array_equal(finite1, finite2)
        np.testing.assert_allclose(r1[finite1], r2[finite2], rtol=1e-10)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            early_abandon_squared(np.zeros(4), np.zeros((1, 4)), 1.0, block=0)


class TestEarlyAbandonEdges:
    """Edge cases of the blocked kernel the squared pipeline leans on."""

    def test_empty_candidate_matrix(self):
        distances, compared = early_abandon_squared(
            np.zeros(8), np.empty((0, 8)), 1.0
        )
        assert distances.shape == (0,)
        assert compared == 0

    def test_single_row_one_dimensional(self):
        q = np.array([1.0, 2.0, 3.0])
        distances, compared = early_abandon_squared(
            q, np.array([2.0, 2.0, 3.0]), np.inf
        )
        assert distances.shape == (1,)
        assert distances[0] == pytest.approx(1.0)
        assert compared == 3

    def test_block_larger_than_length(self, small_dataset):
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        distances, compared = early_abandon_squared(
            query, small_dataset, np.inf, block=10_000
        )
        np.testing.assert_array_equal(distances, full)
        assert compared == small_dataset.size

    def test_nan_cutoff_behaves_like_infinite(self, small_dataset):
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        distances, compared = early_abandon_squared(
            query, small_dataset, float("nan")
        )
        np.testing.assert_array_equal(distances, full)
        assert compared == small_dataset.size

    def test_survivors_agree_with_batch_exactly(self, small_dataset):
        # Bit-for-bit, not approximately: the squared pipeline depends
        # on surviving rows matching the unblocked kernel so answers are
        # identical whichever code path computed them.
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        cutoff = float(np.quantile(full, 0.4))
        for block in (1, 7, 32, 200):
            distances, _ = early_abandon_squared(
                query, small_dataset, cutoff, block=block
            )
            alive = np.isfinite(distances)
            np.testing.assert_array_equal(distances[alive], full[alive])

    def test_compared_counts_bounded_by_total(self, small_dataset):
        query = small_dataset[0]
        full = batch_squared_euclidean(query, small_dataset)
        cutoff = float(np.quantile(full, 0.1))
        _, compared = early_abandon_squared(query, small_dataset, cutoff)
        assert 0 < compared < small_dataset.size


class TestKnnSelection:
    def test_returns_sorted_smallest(self):
        dist = np.array([5.0, 1.0, 3.0, 0.5, 4.0])
        idx, values = knn_from_distances(dist, 3)
        assert list(idx) == [3, 1, 2]
        np.testing.assert_allclose(values, [0.5, 1.0, 3.0])

    def test_k_larger_than_input(self):
        idx, values = knn_from_distances(np.array([2.0, 1.0]), 5)
        assert list(idx) == [1, 0]

    def test_k_zero(self):
        idx, values = knn_from_distances(np.array([1.0]), 0)
        assert idx.shape == (0,)
        assert values.shape == (0,)

    def test_handles_infinities(self):
        dist = np.array([np.inf, 2.0, np.inf, 1.0])
        idx, values = knn_from_distances(dist, 2)
        assert list(idx) == [3, 1]
