"""Unit and property tests for lower-bounding distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.euclidean import euclidean
from repro.distance.lower_bounds import (
    MU_MAX,
    MU_MIN,
    SD_MAX,
    SD_MIN,
    lb_eapca,
    lb_eapca_batch,
    lb_paa,
    series_synopsis,
    va_cell_bounds,
)
from repro.summarization.dft import dft_features
from repro.summarization.eapca import Segmentation, segment_stats
from repro.summarization.paa import paa

from ..conftest import make_random_walks


def build_synopsis(data: np.ndarray, seg: Segmentation) -> np.ndarray:
    """Min/max synopsis over a set of series (what a tree node stores)."""
    means, stds = segment_stats(data, seg)
    syn = np.empty((seg.num_segments, 4))
    syn[:, MU_MIN] = means.min(axis=0)
    syn[:, MU_MAX] = means.max(axis=0)
    syn[:, SD_MIN] = stds.min(axis=0)
    syn[:, SD_MAX] = stds.max(axis=0)
    return syn


class TestLbEapca:
    def test_lower_bounds_all_series_under_node(self):
        data = make_random_walks(60, 96, seed=31)
        query = make_random_walks(1, 96, seed=32)[0]
        for ends in ([48, 96], [10, 30, 96], [96], [5, 6, 60, 96]):
            seg = Segmentation(ends)
            syn = build_synopsis(data, seg)
            q_means, q_stds = segment_stats(query.reshape(1, -1), seg)
            bound = lb_eapca(q_means[0], q_stds[0], syn, seg.lengths)
            true = min(euclidean(query, s) for s in data)
            assert bound <= true + 1e-9

    def test_zero_when_query_inside_box(self):
        data = make_random_walks(10, 64, seed=33)
        seg = Segmentation([32, 64])
        syn = build_synopsis(data, seg)
        q_means, q_stds = segment_stats(data[:1], seg)
        assert lb_eapca(q_means[0], q_stds[0], syn, seg.lengths) == 0.0

    def test_per_series_bound_via_degenerate_synopsis(self):
        data = make_random_walks(20, 64, seed=34)
        query = make_random_walks(1, 64, seed=35)[0]
        seg = Segmentation([16, 40, 64])
        d_means, d_stds = segment_stats(data, seg)
        q_means, q_stds = segment_stats(query.reshape(1, -1), seg)
        for i in range(data.shape[0]):
            syn = series_synopsis(d_means[i], d_stds[i])
            bound = lb_eapca(q_means[0], q_stds[0], syn, seg.lengths)
            assert bound <= euclidean(query, data[i]) + 1e-9

    def test_batch_matches_loop(self):
        data = make_random_walks(30, 64, seed=36)
        query = make_random_walks(1, 64, seed=37)[0]
        seg = Segmentation([20, 64])
        q_means, q_stds = segment_stats(query.reshape(1, -1), seg)
        synopses = np.stack(
            [build_synopsis(data[i : i + 10], seg) for i in range(0, 30, 10)]
        )
        batch = lb_eapca_batch(q_means[0], q_stds[0], synopses, seg.lengths)
        for i in range(3):
            single = lb_eapca(q_means[0], q_stds[0], synopses[i], seg.lengths)
            assert batch[i] == pytest.approx(single)

    def test_finer_segmentation_tightens_the_bound(self):
        data = make_random_walks(40, 64, seed=38)
        query = make_random_walks(1, 64, seed=39)[0]
        coarse = Segmentation([64])
        fine = Segmentation([16, 32, 48, 64])
        for seg_pair in ((coarse, fine),):
            bounds = []
            for seg in seg_pair:
                syn = build_synopsis(data, seg)
                q_m, q_s = segment_stats(query.reshape(1, -1), seg)
                bounds.append(lb_eapca(q_m[0], q_s[0], syn, seg.lengths))
            # Not a theorem for min/max boxes in general, but holds for the
            # single-series case; for node boxes we only check validity.
            assert all(b >= 0 for b in bounds)


class TestLbPaa:
    def test_lower_bounds_euclidean(self):
        data = make_random_walks(25, 64, seed=41)
        query = make_random_walks(1, 64, seed=42)[0]
        bounds = lb_paa(paa(query, 8), paa(data, 8), 64)
        for i in range(data.shape[0]):
            assert bounds[i] <= euclidean(query, data[i]) + 1e-9

    def test_single_candidate_returns_scalar(self):
        q = np.zeros(4)
        assert isinstance(lb_paa(q, np.ones(4), 16), float)


class TestVaCellBounds:
    def test_bounds_sandwich_feature_distance(self):
        rng = np.random.default_rng(43)
        d = 8
        q = rng.standard_normal(d)
        centers = rng.standard_normal((20, d))
        half = 0.3
        lo, hi = centers - half, centers + half
        lower, upper = va_cell_bounds(q, lo, hi)
        for i in range(20):
            true = float(np.linalg.norm(q - centers[i]))
            assert lower[i] <= true + 1e-9
            assert upper[i] >= true - 1e-9

    def test_lower_bound_via_dft_features_bounds_euclidean(self):
        data = make_random_walks(30, 64, seed=44)
        query = make_random_walks(1, 64, seed=45)[0]
        feats = dft_features(data, 12)
        q_feat = dft_features(query, 12)
        pad = 0.05
        lower, _ = va_cell_bounds(q_feat, feats - pad, feats + pad)
        for i in range(30):
            assert lower[i] <= euclidean(query, data[i]) + 1e-9

    def test_scalar_path(self):
        lower, upper = va_cell_bounds(np.zeros(2), np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert lower == pytest.approx(np.sqrt(2.0))
        assert upper == pytest.approx(np.sqrt(8.0))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), segments=st.integers(1, 8))
def test_lb_eapca_validity_property(seed, segments):
    """LB_EAPCA never exceeds the true distance to any series in the node."""
    data = make_random_walks(12, 32, seed=seed)
    query = make_random_walks(1, 32, seed=seed + 1)[0]
    seg = Segmentation.uniform(32, segments)
    syn = build_synopsis(data, seg)
    q_means, q_stds = segment_stats(query.reshape(1, -1), seg)
    bound = lb_eapca(q_means[0], q_stds[0], syn, seg.lengths)
    true = min(euclidean(query, s) for s in data)
    assert bound <= true + 1e-7
