"""Tests for the design-choice ablation helpers."""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.eval.ablation import (
    build_with_per_leaf_buffers,
    threshold_sensitivity,
)

from ..conftest import make_random_walks


class TestPerLeafBufferBuild:
    def test_builds_a_complete_tree(self):
        data = make_random_walks(400, 32, seed=170)
        config = HerculesConfig(
            leaf_capacity=40, num_build_threads=1, flush_threshold=1
        )
        report = build_with_per_leaf_buffers(data, config)
        assert report.num_leaves > 1
        assert report.seconds > 0

    def test_counts_allocations_and_copies(self):
        data = make_random_walks(500, 32, seed=171)
        config = HerculesConfig(
            leaf_capacity=25, num_build_threads=1, flush_threshold=1
        )
        report = build_with_per_leaf_buffers(data, config)
        # Every split allocates two child buffers and copies the parent's
        # series; with ~20 leaves that is dozens of allocations and at
        # least one copy of most series.
        assert report.allocations >= 2 * (report.num_leaves - 1)
        assert report.copies >= data.shape[0]

    def test_degenerate_data_stays_single_leaf(self):
        data = np.tile(make_random_walks(1, 16, seed=172), (60, 1))
        config = HerculesConfig(
            leaf_capacity=20, num_build_threads=1, flush_threshold=1
        )
        report = build_with_per_leaf_buffers(data, config)
        assert report.num_leaves == 1
        assert report.copies == 0


class TestThresholdSensitivity:
    @pytest.fixture(scope="class")
    def index(self, tmp_path_factory):
        data = make_random_walks(600, 32, seed=173)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            num_query_threads=1,
            l_max=2,
            sax_segments=8,
        )
        idx = HerculesIndex.build(
            data, config, directory=tmp_path_factory.mktemp("sens")
        )
        yield idx
        idx.close()

    def test_produces_full_grid(self, index):
        queries = make_random_walks(3, 32, seed=174)
        records = threshold_sensitivity(
            index,
            {"w": queries},
            eapca_values=(0.0, 0.5),
            sax_values=(0.0, 0.9),
        )
        assert len(records) == 4
        combos = {(r["eapca_th"], r["sax_th"]) for r in records}
        assert combos == {(0.0, 0.0), (0.0, 0.9), (0.5, 0.0), (0.5, 0.9)}

    def test_thresholds_change_paths_not_answers(self, index):
        query = make_random_walks(1, 32, seed=175)[0]
        answers = []
        for eapca_th in (0.0, 0.9):
            config = index.config.with_options(eapca_th=eapca_th)
            answers.append(index.knn(query, k=3, config=config))
        np.testing.assert_allclose(
            answers[0].distances, answers[1].distances, atol=1e-9
        )

    def test_zero_thresholds_disable_skip_sequential(self, index):
        queries = make_random_walks(3, 32, seed=176)
        records = threshold_sensitivity(
            index, {"w": queries}, eapca_values=(0.0,), sax_values=(0.0,)
        )
        for record in records:
            assert "eapca-skipseq" not in record["paths"]
            assert "sax-skipseq" not in record["paths"]
