"""Unit tests for table formatting."""

from repro.eval.report import format_cell, format_table, print_table


class TestFormatCell:
    def test_integers_and_strings_pass_through(self):
        assert format_cell(42) == "42"
        assert format_cell("Hercules") == "Hercules"

    def test_float_formats(self):
        assert format_cell(0.0) == "0"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.00123) == "0.00123"

    def test_negative_values(self):
        assert format_cell(-12345.6) == "-12,346"
        assert format_cell(-0.5) == "-0.5"


class TestFormatTable:
    def test_columns_align(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        # All rows share one width per column.
        positions = [line.index("2") if "2" in line else None for line in lines]
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_header_rule_matches_width(self):
        table = format_table(["col"], [["wide-value"]])
        header, rule, row = table.splitlines()
        assert len(rule.strip()) == len("wide-value")

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table
        assert len(table.splitlines()) == 2

    def test_print_table(self, capsys):
        print_table("Title", ["h"], [[1]])
        out = capsys.readouterr().out
        assert "Title" in out
        assert "h" in out
