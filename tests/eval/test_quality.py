"""Tests for approximate-search quality measures."""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.core.query import QueryAnswer
from repro.eval.quality import (
    ApproximationQuality,
    QualitySummary,
    answer_quality,
    evaluate_approximate,
)

from ..conftest import make_random_walks


def make_answer(distances, positions):
    return QueryAnswer(
        np.asarray(distances, dtype=np.float64),
        np.asarray(positions, dtype=np.int64),
    )


class TestAnswerQuality:
    def test_identical_answers_are_perfect(self):
        exact = make_answer([1.0, 2.0, 3.0], [10, 20, 30])
        quality = answer_quality(exact, exact)
        assert quality.recall == 1.0
        assert quality.approximation_error == 1.0
        assert quality.average_precision == 1.0

    def test_partial_overlap(self):
        exact = make_answer([1.0, 2.0], [10, 20])
        approx = make_answer([1.0, 5.0], [10, 99])
        quality = answer_quality(approx, exact)
        assert quality.recall == 0.5
        assert quality.approximation_error == pytest.approx(2.5)
        assert quality.average_precision == pytest.approx(1.0)  # hit at rank 1

    def test_total_miss(self):
        exact = make_answer([1.0], [10])
        approx = make_answer([4.0], [99])
        quality = answer_quality(approx, exact)
        assert quality.recall == 0.0
        assert quality.average_precision == 0.0

    def test_zero_exact_distance(self):
        exact = make_answer([0.0], [10])
        same = make_answer([0.0], [10])
        far = make_answer([1.0], [99])
        assert answer_quality(same, exact).approximation_error == 1.0
        assert answer_quality(far, exact).approximation_error == np.inf

    def test_order_sensitivity_of_map(self):
        exact = make_answer([1.0, 2.0], [10, 20])
        good_order = make_answer([1.0, 2.0], [10, 20])
        bad_order = make_answer([1.5, 2.0], [99, 20])
        assert (
            answer_quality(good_order, exact).average_precision
            > answer_quality(bad_order, exact).average_precision
        )


class TestQualitySummary:
    def test_aggregation(self):
        qualities = [
            ApproximationQuality(1.0, 1.0, 1.0),
            ApproximationQuality(0.5, 1.5, 0.5),
        ]
        summary = QualitySummary.from_qualities(qualities)
        assert summary.mean_recall == 0.75
        assert summary.worst_approximation_error == 1.5
        assert summary.count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QualitySummary.from_qualities([])


class TestEvaluateApproximate:
    @pytest.fixture(scope="class")
    def index(self, tmp_path_factory):
        data = make_random_walks(800, 32, seed=220)
        config = HerculesConfig(
            leaf_capacity=40,
            num_build_threads=1,
            flush_threshold=1,
            num_query_threads=1,
            l_max=2,
            sax_segments=8,
        )
        idx = HerculesIndex.build(
            data, config, directory=tmp_path_factory.mktemp("quality")
        )
        yield idx
        idx.close()

    def test_lmax_mode_quality_improves_with_budget(self, index):
        queries = make_random_walks(8, 32, seed=221)
        small = evaluate_approximate(index, queries, k=5, l_max=1)
        large = evaluate_approximate(index, queries, k=5, l_max=index.num_leaves)
        assert large.mean_recall >= small.mean_recall
        assert large.mean_recall == 1.0

    def test_epsilon_mode_respects_guarantee(self, index):
        queries = make_random_walks(8, 32, seed=222)
        summary = evaluate_approximate(index, queries, k=5, epsilon=0.25)
        assert summary.worst_approximation_error <= 1.25 + 1e-9

    def test_requires_exactly_one_mode(self, index):
        queries = make_random_walks(2, 32, seed=223)
        with pytest.raises(ValueError):
            evaluate_approximate(index, queries, k=1)
        with pytest.raises(ValueError):
            evaluate_approximate(index, queries, k=1, l_max=2, epsilon=0.1)
