"""Unit tests for the method registry's scaled defaults."""

import pytest

from repro.eval.methods import (
    ALL_METHODS,
    DEFAULT_LEAF,
    DEFAULT_PARIS_LEAF,
    build_method,
    hercules_config,
    scaled_l_max,
)

from ..conftest import make_random_walks


class TestScaledDefaults:
    def test_method_list_matches_the_paper(self):
        assert ALL_METHODS == (
            "Hercules",
            "DSTree*",
            "ParIS+",
            "VA+file",
            "PSCAN",
            "SerialScan",
        )

    def test_leaf_ratio_mirrors_paper(self):
        """Paper: Hercules/DSTree share 100K leaves, ParIS+ uses 2K."""
        assert DEFAULT_LEAF > DEFAULT_PARIS_LEAF
        assert DEFAULT_LEAF / DEFAULT_PARIS_LEAF >= 5

    def test_hercules_config_scales_db_size_to_dataset(self):
        small = hercules_config(100)
        large = hercules_config(100_000)
        assert small.db_size <= large.db_size
        assert small.db_size >= 1

    def test_hercules_config_keeps_paper_thresholds(self):
        config = hercules_config(10_000)
        assert config.eapca_th == 0.25
        assert config.sax_th == 0.50

    def test_hercules_config_accepts_overrides(self):
        config = hercules_config(5_000, use_sax=False, l_max=99)
        assert not config.use_sax
        assert config.l_max == 99

    def test_scaled_l_max_tracks_four_percent_of_leaves(self):
        # Paper: 80 of ~2000 leaves at 100M/100K.
        assert scaled_l_max(2_000_000, 1_000) == 80
        assert scaled_l_max(50, 100) == 2  # floor of 2

    def test_builtmethod_knn_delegates(self):
        data = make_random_walks(150, 16, seed=300)
        built = build_method("SerialScan", data)
        answer = built.knn(data[0], k=1)
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-6)
        built.close()
