"""Tests for the self-verification helpers and CLI command."""

import numpy as np
import pytest

from repro import HerculesConfig, HerculesIndex
from repro.baselines import SerialScan
from repro.eval.verify import verify_epsilon, verify_exactness

from ..conftest import make_random_walks


@pytest.fixture(scope="module")
def corpus():
    return make_random_walks(400, 32, seed=310)


@pytest.fixture(scope="module")
def index(corpus, tmp_path_factory):
    config = HerculesConfig(
        leaf_capacity=40,
        num_build_threads=1,
        flush_threshold=1,
        num_query_threads=1,
        l_max=2,
        sax_segments=8,
    )
    idx = HerculesIndex.build(
        corpus, config, directory=tmp_path_factory.mktemp("verify")
    )
    yield idx
    idx.close()


class TestVerifyExactness:
    def test_correct_method_passes(self, index, corpus):
        queries = make_random_walks(5, 32, seed=311)
        report = verify_exactness(index, corpus, queries, k=5)
        assert report.passed
        assert report.queries_checked == 5
        assert "PASS" in report.format()

    def test_broken_method_fails(self, corpus):
        class Liar:
            name = "Liar"

            def __init__(self, inner):
                self.inner = inner

            def knn(self, query, k):
                answer = self.inner.knn(query, k=k)
                answer.distances[-1] *= 2.0  # corrupt the kth answer
                return answer

        scan = SerialScan(corpus)
        queries = make_random_walks(3, 32, seed=312)
        report = verify_exactness(Liar(scan), corpus, queries, k=3)
        assert not report.passed
        assert len(report.failures) == 3
        assert "FAIL" in report.format()

    def test_wrong_answer_count_detected(self, corpus):
        class Shortchanger:
            name = "Short"

            def knn(self, query, k):
                from repro.core.query import QueryAnswer

                return QueryAnswer(
                    np.zeros(1), np.zeros(1, dtype=np.int64)
                )

        queries = make_random_walks(2, 32, seed=313)
        report = verify_exactness(Shortchanger(), corpus, queries, k=5)
        assert not report.passed


class TestVerifyEpsilon:
    def test_guarantee_verified(self, index, corpus):
        queries = make_random_walks(5, 32, seed=314)
        for epsilon in (0.0, 0.25, 1.0):
            report = verify_epsilon(index, corpus, queries, epsilon, k=3)
            assert report.passed, report.format()


class TestVerifyCli:
    def test_verify_command_passes(self, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.dataset import Dataset

        data = make_random_walks(250, 16, seed=315)
        Dataset.write(tmp_path / "d.bin", data).close()
        code = main(
            [
                "verify",
                "--dataset",
                str(tmp_path / "d.bin"),
                "--length",
                "16",
                "--k",
                "3",
                "--num-queries",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("PASS") >= 6  # six methods + epsilon checks
        assert "FAIL" not in out
