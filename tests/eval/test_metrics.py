"""Unit tests for workload measurement and extrapolation."""

import pytest

from repro.core.query import QueryProfile
from repro.eval.metrics import WorkloadResult, extrapolate_10k, run_workload
from repro.storage.iostats import IOSnapshot

from ..conftest import make_random_walks


class TestExtrapolation:
    def test_paper_procedure_trims_five_each_side(self):
        times = [1.0] * 90 + [100.0] * 5 + [0.0] * 5  # outliers on both ends
        assert extrapolate_10k(times) == pytest.approx(10_000.0)

    def test_small_samples_shrink_the_trim(self):
        assert extrapolate_10k([2.0, 4.0, 6.0]) == pytest.approx(4.0 * 10_000)
        assert extrapolate_10k([3.0]) == pytest.approx(30_000.0)

    def test_empty(self):
        assert extrapolate_10k([]) == 0.0


class TestWorkloadResult:
    def _result_with(self, times, accessed, num_series=100):
        result = WorkloadResult(
            method="m", workload="w", k=1, num_series=num_series, build_seconds=2.0
        )
        for t, a in zip(times, accessed):
            profile = QueryProfile(time_total=t, series_accessed=a)
            result.profiles.append(profile)
        return result

    def test_aggregates(self):
        result = self._result_with([0.1, 0.3], [10, 30])
        assert result.avg_query_seconds == pytest.approx(0.2)
        assert result.total_query_seconds == pytest.approx(0.4)
        assert result.avg_data_accessed == pytest.approx(0.2)
        assert result.combined_seconds() == pytest.approx(2.4)

    def test_combined_with_extrapolation(self):
        result = self._result_with([0.001] * 10, [0] * 10)
        assert result.combined_seconds(10_000) == pytest.approx(2.0 + 10.0)

    def test_modeled_io(self):
        result = self._result_with([0.1], [5])
        result.profiles[0].io = IOSnapshot(
            read_calls=3, random_seeks=2, sequential_reads=1, bytes_read=1_290_000
        )
        # 2 seeks * 5 ms + 1.29 MB / 1.29 GB/s = 10 ms + 1 ms.
        assert result.avg_modeled_io_seconds == pytest.approx(0.011)
        assert result.avg_modeled_query_seconds == pytest.approx(0.111)

    def test_modeled_io_byte_scale(self):
        """byte_scale multiplies only the bandwidth term, not seeks."""
        result = self._result_with([0.1], [5])
        result.profiles[0].io = IOSnapshot(
            read_calls=3, random_seeks=2, sequential_reads=1, bytes_read=1_290_000
        )
        # 10 ms seeks + 1 ms * 1000 bytes-scale = 1.01 s.
        assert result.modeled_io_at_scale(1000.0) == pytest.approx(1.01)
        assert result.modeled_io_at_scale(1.0) == pytest.approx(
            result.avg_modeled_io_seconds
        )

    def test_modeled_io_custom_hardware(self):
        profile = QueryProfile()
        profile.io = IOSnapshot(random_seeks=4, bytes_read=2_000)
        assert profile.modeled_io_seconds(
            seek_seconds=0.001, bandwidth_bytes=1_000.0
        ) == pytest.approx(0.004 + 2.0)

    def test_modeled_io_zero_without_snapshot(self):
        assert QueryProfile().modeled_io_seconds() == 0.0

    def test_empty_profile_list(self):
        result = self._result_with([], [])
        assert result.avg_query_seconds == 0.0
        assert result.avg_data_accessed == 0.0

    def test_abandoned_fraction_and_cache_hit_rate(self):
        result = self._result_with([0.1, 0.1, 0.1], [10, 10, 10])
        # No point counts recorded yet -> neutral values.
        assert result.avg_abandoned_fraction == 0.0
        assert result.avg_cache_hit_rate is None
        result.profiles[0].points_compared = 60
        result.profiles[0].points_total = 100
        result.profiles[1].points_compared = 100
        result.profiles[1].points_total = 100
        result.profiles[0].cache_hits = 9
        result.profiles[0].cache_misses = 1
        # Mean over the two profiles with counts: (0.4 + 0.0) / 2.
        assert result.avg_abandoned_fraction == pytest.approx(0.2)
        # Only the one profile that touched the cache participates.
        assert result.avg_cache_hit_rate == pytest.approx(0.9)
        summary = result.summary()
        assert summary["avg_abandoned_fraction"] == pytest.approx(0.2)
        assert summary["avg_cache_hit_rate"] == pytest.approx(0.9)


class TestRunWorkload:
    def test_collects_profiles_and_io(self, tmp_path):
        from repro.baselines import SerialScan
        from repro.storage.dataset import Dataset

        data = make_random_walks(100, 16, seed=30)
        dataset = Dataset.write(tmp_path / "d.bin", data)
        scan = SerialScan(dataset, chunk_size=32)
        queries = make_random_walks(4, 16, seed=31)
        result = run_workload(scan, queries, k=2, workload="test")
        assert result.query_count == 4
        assert result.method == "Serial scan"
        for profile in result.profiles:
            assert profile.io is not None
            assert profile.io.bytes_read == 100 * 16 * 4  # full scan
        assert result.avg_data_accessed == 1.0
        dataset.close()

    def test_in_memory_method_has_no_io_snapshot(self):
        from repro.baselines import SerialScan

        data = make_random_walks(50, 16, seed=32)
        scan = SerialScan(data)
        result = run_workload(scan, data[:2], k=1)
        assert all(p.io is None for p in result.profiles)
        assert result.avg_modeled_io_seconds == 0.0


class TestWorkloadSummaryDict:
    def test_summary_is_json_ready(self):
        import json

        result = WorkloadResult(
            method="m", workload="w", k=3, num_series=100, build_seconds=2.0
        )
        result.profiles.append(
            QueryProfile(time_total=0.5, series_accessed=20,
                         distance_computations=40)
        )
        summary = result.summary()
        assert summary["method"] == "m"
        assert summary["k"] == 3
        assert summary["query_count"] == 1
        assert summary["avg_query_seconds"] == pytest.approx(0.5)
        assert summary["avg_data_accessed"] == pytest.approx(0.2)
        assert summary["avg_distance_computations"] == pytest.approx(40.0)
        json.dumps(summary)  # must round-trip without custom encoders


class TestRunWorkloadRegistry:
    def test_registry_receives_each_query(self):
        from repro.baselines import SerialScan
        from repro.obs import MetricsRegistry

        data = make_random_walks(60, 16, seed=33)
        scan = SerialScan(data)
        registry = MetricsRegistry()
        result = run_workload(scan, data[:3], k=1, registry=registry)
        assert result.query_count == 3
        summary = registry.summary()
        assert summary["counters"]["query.count"] == 3
        assert summary["counters"]["query.path.serial-scan"] == 3
        assert summary["histograms"]["query.seconds"]["count"] == 3

    def test_harness_does_not_clobber_method_filled_io(self, tmp_path):
        from repro.baselines import SerialScan
        from repro.storage.dataset import Dataset

        data = make_random_walks(40, 16, seed=34)
        with Dataset.write(tmp_path / "d.bin", data) as dataset:
            scan = SerialScan(dataset, chunk_size=16)
            result = run_workload(scan, data[:2], k=1)
        # SerialScan.knn fills profile.io itself (via timed_profile); the
        # harness fallback must keep that exact per-query delta.
        for profile in result.profiles:
            assert profile.io is not None
            assert profile.io.bytes_read == 40 * 16 * 4


class TestRunWorkloadBatched:
    def test_batched_matches_serial_and_records_stats(self, tmp_path):
        from repro.core import HerculesConfig, HerculesIndex
        from repro.obs import MetricsRegistry

        data = make_random_walks(300, 32, seed=35)
        index = HerculesIndex.build(
            data,
            HerculesConfig(
                leaf_capacity=16, num_build_threads=1, flush_threshold=1
            ),
            directory=tmp_path / "idx",
        )
        try:
            queries = data[:12] + 0.01
            serial = run_workload(index, queries, k=3)
            registry = MetricsRegistry()
            batched = run_workload(
                index, queries, k=3, registry=registry, batched=True
            )
            assert batched.query_count == serial.query_count == 12
            # Work counters land per query either way.
            summary = registry.summary()
            assert summary["counters"]["query.count"] == 12
            # The batch engine reports its sharing stats once per batch.
            assert summary["counters"]["query.batch.count"] == 1
            assert summary["counters"]["query.batch.queries"] == 12
            assert summary["counters"]["query.batch.unique_leaf_reads"] > 0
            assert (
                summary["counters"]["query.batch.leaf_uses"]
                >= summary["counters"]["query.batch.unique_leaf_reads"]
            )
        finally:
            index.close()

    def test_batched_method_without_stats_is_tolerated(self):
        from repro.obs import MetricsRegistry

        class ListBatch:
            name = "list-batch"
            num_series = 10

            def knn_batch(self, queries, k=1):
                from repro.core.query import QueryAnswer, QueryProfile
                import numpy as np

                return [
                    QueryAnswer(
                        np.zeros(k), np.zeros(k, dtype=np.int64), QueryProfile()
                    )
                    for _ in range(queries.shape[0])
                ]

        registry = MetricsRegistry()
        data = make_random_walks(4, 16, seed=36)
        result = run_workload(
            ListBatch(), data, k=1, registry=registry, batched=True
        )
        assert result.query_count == 4
        assert "query.batch.count" not in registry.summary()["counters"]
