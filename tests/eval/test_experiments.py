"""Integration tests for the experiment harnesses (tiny scales)."""

import numpy as np
import pytest

from repro.eval.experiments import (
    difficulty_experiment,
    figure6_dataset_size,
    figure7_large_datasets,
    figure8_series_length,
    figure11_knn_k,
    figure12_ablation_indexing,
    figure12_ablation_query,
)
from repro.eval.methods import ALL_METHODS, build_method, build_methods, scaled_l_max
from repro.eval.report import format_table

from ..conftest import make_random_walks


class TestMethodRegistry:
    def test_build_all_methods_and_query(self, tmp_path):
        data = make_random_walks(400, 32, seed=40)
        query = make_random_walks(1, 32, seed=41)[0]
        methods = build_methods(
            data, names=ALL_METHODS, directory=tmp_path, leaf_capacity=50
        )
        reference = None
        for name, built in methods.items():
            answer = built.knn(query, k=3)
            if reference is None:
                reference = answer.distances
            np.testing.assert_allclose(
                answer.distances, reference, atol=1e-6, err_msg=name
            )
            built.close()

    def test_unknown_method(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_method("FLANN", make_random_walks(10, 16))

    def test_scaled_l_max(self):
        assert scaled_l_max(100_000, 100) == 40  # 4% of 1000 leaves
        assert scaled_l_max(100, 100) == 2  # floor


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 12345.0]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "---" in lines[1]
        assert "12,345" in lines[3]


class TestExperimentsSmoke:
    """Each harness runs end-to-end at tiny scale and returns sane rows."""

    def test_figure6(self):
        result = figure6_dataset_size(
            sizes=(300,), num_queries=3, verbose=False
        )
        assert len(result.rows) == 4  # 4 index methods
        for row in result.rows:
            assert row[2] > 0  # build time
            assert row[4] >= row[2]  # combined >= build

    def test_figure7(self):
        result = figure7_large_datasets(
            sizes=(400,), num_queries=3, verbose=False
        )
        methods = {row[1] for row in result.rows}
        assert "PSCAN" in methods
        pscan_row = next(r for r in result.rows if r[1] == "PSCAN")
        assert pscan_row[4] == pytest.approx(1.0)  # scans access everything

    def test_figure8(self):
        result = figure8_series_length(
            lengths=(32, 64), size=300, num_queries=3, verbose=False
        )
        lengths = {row[0] for row in result.rows}
        assert lengths == {32, 64}

    def test_difficulty(self):
        result = difficulty_experiment(
            datasets=("SALD",),
            size=400,
            num_queries=4,
            workloads=("1%", "ood"),
            verbose=False,
        )
        assert {row[1] for row in result.rows} == {"1%", "ood"}
        scan_rows = [r for r in result.rows if r[2] == "SerialScan"]
        assert all(r[7] == pytest.approx(1.0) for r in scan_rows)
        # Harder workload accesses at least as much data for Hercules.
        hercules = {
            row[1]: row[7] for row in result.rows if row[2] == "Hercules"
        }
        assert hercules["ood"] >= hercules["1%"] * 0.5

    def test_figure11(self):
        result = figure11_knn_k(
            ks=(1, 5), size=400, num_queries=3, verbose=False
        )
        hercules = {row[0]: row[4] for row in result.rows if row[1] == "Hercules"}
        assert hercules[5] >= hercules[1]  # more neighbors, more data

    def test_figure12_indexing(self):
        result = figure12_ablation_indexing(size=400, verbose=False)
        variants = {row[0] for row in result.rows}
        assert variants == {"DSTree*", "DSTree*P", "NoWPara", "Hercules"}
        for row in result.rows:
            assert row[3] > 0

    def test_figure12_query(self):
        result = figure12_ablation_query(
            size=400, num_queries=4, workloads=("1%", "ood"), verbose=False
        )
        variants = {row[1] for row in result.rows}
        assert variants == {"Hercules", "NoSAX", "NoPara", "NoThresh"}


class TestExperimentResultToJson:
    def test_tuple_keys_and_workloads_collapse(self):
        import json

        from repro.core.query import QueryProfile
        from repro.eval.experiments import ExperimentResult
        from repro.eval.metrics import WorkloadResult

        wl = WorkloadResult(
            method="Hercules", workload="5%", k=1, num_series=50,
            build_seconds=1.0,
        )
        wl.profiles.append(QueryProfile(time_total=0.1, series_accessed=5))
        result = ExperimentResult(
            figure="figX", headers=["a", "b"], rows=[[1, "x"]],
        )
        result.raw[(1000, "Hercules")] = wl
        result.raw["scalar"] = 2.5
        payload = result.to_json()
        assert payload["figure"] == "figX"
        assert payload["rows"] == [[1, "x"]]
        assert payload["raw"]["1000/Hercules"]["avg_query_seconds"] == 0.1
        assert payload["raw"]["scalar"] == 2.5
        json.dumps(payload)
