"""Counters, gauges, histograms, and the QueryProfile/IOSnapshot bridges."""

import threading

import numpy as np
import pytest

from repro.core.query import QueryProfile
from repro.obs import MetricsRegistry, record_profile
from repro.storage.iostats import IOStats


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.add(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter

    def test_gauge_is_last_value_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["min"] == 1.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["max"] == 100.0

    def test_empty_histogram_summary_is_zeroes(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary == {
            "count": 0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "max": 0.0,
        }

    def test_histogram_under_concurrent_updates(self):
        registry = MetricsRegistry()
        per_thread = 500
        num_threads = 8

        def hammer(base):
            hist = registry.histogram("shared")
            for i in range(per_thread):
                hist.observe(base + i)
            registry.counter("done").inc()

        threads = [
            threading.Thread(target=hammer, args=(t * per_thread,))
            for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = registry.histogram("shared").summary()
        total = per_thread * num_threads
        assert summary["count"] == total
        assert summary["min"] == 0.0
        assert summary["max"] == float(total - 1)
        assert summary["mean"] == pytest.approx((total - 1) / 2)
        assert registry.counter("done").value == num_threads

    def test_registry_summary_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        summary = registry.summary()
        assert summary["counters"] == {"c": 2}
        assert summary["gauges"] == {"g": 1.5}
        assert summary["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.summary() == {
            "counters": {}, "gauges": {}, "histograms": {},
            "windowed_counters": {}, "windowed_histograms": {},
        }


class TestHistogramDeterminism:
    """Regression: summaries must be deterministic and the sorted-view
    cache must never serve stale percentiles after a write."""

    def test_percentile_from_sorted_matches_numpy_default(self):
        from repro.obs import percentile_from_sorted

        rng = np.random.default_rng(13)
        values = np.sort(rng.normal(size=997))
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile_from_sorted(values, q) == pytest.approx(
                np.percentile(values, q), rel=1e-12
            )
        assert percentile_from_sorted([], 50.0) == 0.0
        assert percentile_from_sorted([7.0], 95.0) == 7.0

    def test_summary_is_independent_of_observation_order(self):
        rng = np.random.default_rng(29)
        values = rng.normal(size=200)
        forward = MetricsRegistry().histogram("f")
        shuffled = MetricsRegistry().histogram("s")
        for v in values:
            forward.observe(float(v))
        permuted = values.copy()
        rng.shuffle(permuted)
        for v in permuted:
            shuffled.observe(float(v))
        assert forward.summary() == shuffled.summary()

    def test_repeated_summaries_are_identical(self):
        hist = MetricsRegistry().histogram("h")
        for v in (3.0, 1.0, 2.0):
            hist.observe(v)
        assert hist.summary() == hist.summary()

    def test_observe_invalidates_the_sorted_cache(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(10.0)
        assert hist.summary()["p95"] == 10.0  # populates the cache
        hist.observe(20.0)  # a stale cache would keep reporting 10.0
        summary = hist.summary()
        assert summary["max"] == 20.0
        assert summary["p95"] == pytest.approx(19.5)
        assert summary["count"] == 2

    def test_extend_invalidates_the_sorted_cache(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        assert hist.summary()["max"] == 1.0
        hist.extend([5.0, 3.0])
        summary = hist.summary()
        assert summary["max"] == 5.0
        assert summary["count"] == 3

    def test_empty_extend_keeps_the_cache(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        hist.summary()
        hist.extend([])
        assert hist.summary()["count"] == 1

    def test_cache_is_reused_between_reads(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(50):
            hist.observe(float(v))
        first = hist._sorted_snapshot()
        second = hist._sorted_snapshot()
        assert first is second, "unchanged distribution must not re-sort"
        hist.observe(50.0)
        assert hist._sorted_snapshot() is not first


class TestRecordProfile:
    def _profile(self):
        profile = QueryProfile()
        profile.path = "full-four-phase"
        profile.time_total = 0.25
        profile.time_approx = 0.05
        profile.time_candidates = 0.1
        profile.time_refine = 0.1
        profile.eapca_pruning = 0.8
        profile.sax_pruning = 0.5
        profile.distance_computations = 40
        profile.series_accessed = 30
        profile.candidate_leaves = 4
        profile.candidate_series = 60
        return profile

    def test_counters_histograms_and_paths(self):
        registry = MetricsRegistry()
        record_profile(registry, self._profile(), num_series=100)
        record_profile(registry, self._profile(), num_series=100)
        summary = registry.summary()
        counters = summary["counters"]
        assert counters["query.count"] == 2
        assert counters["query.distance_computations"] == 80
        assert counters["query.series_accessed"] == 60
        assert counters["query.path.full-four-phase"] == 2
        hist = summary["histograms"]
        assert hist["query.seconds"]["count"] == 2
        assert hist["query.seconds"]["mean"] == pytest.approx(0.25)
        assert hist["query.eapca_pruning"]["max"] == pytest.approx(0.8)
        assert hist["query.data_accessed_fraction"]["mean"] == pytest.approx(0.3)

    def test_io_record_feeds_io_counters(self):
        stats = IOStats()
        stats.record_read(4096, sequential=False)
        stats.record_read(4096, sequential=True)
        profile = self._profile()
        profile.io = stats.snapshot()
        registry = MetricsRegistry()
        record_profile(registry, profile)
        counters = registry.summary()["counters"]
        assert counters["query.io.read_calls"] == 2
        assert counters["query.io.bytes_read"] == 8192
        assert registry.summary()["histograms"][
            "query.modeled_io_seconds"
        ]["count"] == 1

    def test_points_and_cache_instruments(self):
        profile = self._profile()
        profile.points_compared = 600
        profile.points_total = 1000
        profile.cache_hits = 9
        profile.cache_misses = 1
        registry = MetricsRegistry()
        record_profile(registry, profile)
        summary = registry.summary()
        counters = summary["counters"]
        assert counters["query.points_compared"] == 600
        assert counters["query.points_total"] == 1000
        assert counters["query.cache.hits"] == 9
        assert counters["query.cache.misses"] == 1
        hist = summary["histograms"]
        assert hist["query.abandoned_fraction"]["mean"] == pytest.approx(0.4)
        assert hist["query.cache_hit_rate"]["mean"] == pytest.approx(0.9)

    def test_points_and_cache_instruments_absent_without_data(self):
        registry = MetricsRegistry()
        record_profile(registry, self._profile())
        hist = registry.summary()["histograms"]
        assert "query.abandoned_fraction" not in hist
        assert "query.cache_hit_rate" not in hist

    def test_missing_sax_pruning_is_skipped(self):
        profile = QueryProfile()
        profile.sax_pruning = None
        registry = MetricsRegistry()
        record_profile(registry, profile)
        assert "query.sax_pruning" not in registry.summary()["histograms"]

    def test_numpy_values_are_accepted(self):
        profile = QueryProfile()
        profile.time_total = np.float64(0.5)
        profile.distance_computations = int(np.int64(7))
        registry = MetricsRegistry()
        record_profile(registry, profile)
        assert registry.summary()["counters"]["query.distance_computations"] == 7


class TestRecordBuild:
    @staticmethod
    def _report(**overrides):
        from repro.core.index import BuildReport
        from repro.storage.iostats import IOSnapshot

        fields = dict(
            build_seconds=2.0,
            write_seconds=1.0,
            num_series=10_000,
            num_leaves=40,
            splits=39,
            flushes=3,
            io=IOSnapshot(write_calls=5, bytes_written=1 << 20),
            route_seconds=0.5,
            store_seconds=0.75,
            split_seconds=0.25,
            flush_seconds=0.1,
        )
        fields.update(overrides)
        return BuildReport(**fields)

    def test_gauges_and_counters(self):
        from repro.obs import record_build

        registry = MetricsRegistry()
        record_build(registry, self._report())
        summary = registry.summary()
        gauges = summary["gauges"]
        assert gauges["build.series_per_sec"] == pytest.approx(5_000.0)
        assert gauges["build.build_seconds"] == 2.0
        assert gauges["build.write_seconds"] == 1.0
        assert gauges["build.route_seconds"] == 0.5
        assert gauges["build.store_seconds"] == 0.75
        assert gauges["build.split_seconds"] == 0.25
        assert gauges["build.flush_seconds"] == 0.1
        counters = summary["counters"]
        assert counters["build.num_series"] == 10_000
        assert counters["build.splits"] == 39
        assert counters["build.flushes"] == 3
        assert counters["build.io.write_calls"] == 5
        assert counters["build.io.bytes_written"] == 1 << 20

    def test_repeated_builds_accumulate_counters(self):
        from repro.obs import record_build

        registry = MetricsRegistry()
        record_build(registry, self._report())
        record_build(registry, self._report(build_seconds=1.0))
        summary = registry.summary()
        assert summary["counters"]["build.num_series"] == 20_000
        # Gauges are last-value-wins: the second (faster) build.
        assert summary["gauges"]["build.series_per_sec"] == pytest.approx(
            10_000.0
        )

    def test_zero_build_seconds_reports_zero_throughput(self):
        from repro.obs import record_build

        registry = MetricsRegistry()
        record_build(registry, self._report(build_seconds=0.0))
        assert registry.summary()["gauges"]["build.series_per_sec"] == 0.0
