"""OpenMetrics rendering/validation and the spool sink."""

import json
import os

import pytest

from repro import obs
from repro.obs.exporter import (
    EVENTS_JSONL,
    METRICS_JSON,
    METRICS_PROM,
    RESOURCES_JSONL,
    sanitize_metric_name,
    write_text_atomic,
)


class FakeClock:
    def __init__(self, now=1_000_000.0):
        self.now = float(now)

    def __call__(self):
        return self.now


def _populated_registry(clock):
    registry = obs.MetricsRegistry()
    registry.counter("query.count").add(12)
    registry.gauge("build.series_per_sec").set(5000.0)
    hist = registry.histogram("query.seconds")
    for v in (0.1, 0.2, 0.3):
        hist.observe(v)
    registry.windowed_counter("query.requests", clock=clock).add(4)
    registry.windowed_histogram(
        "query.latency_seconds", clock=clock
    ).observe(0.25)
    return registry


class TestRender:
    def test_output_passes_the_strict_parser(self):
        clock = FakeClock()
        slo = obs.SloTracker(clock=clock)
        slo.observe(0.01)
        text = obs.render_openmetrics(
            _populated_registry(clock), slo=slo, now=clock()
        )
        families = obs.parse_openmetrics(text)
        assert families["query_count"] == "counter"
        assert families["build_series_per_sec"] == "gauge"
        assert families["query_seconds"] == "summary"
        assert families["query_requests"] == "counter"
        assert families["query_requests_rate"] == "gauge"
        assert families["query_latency_seconds"] == "summary"
        assert families["slo_healthy"] == "gauge"

    def test_counter_samples_carry_total_suffix(self):
        clock = FakeClock()
        text = obs.render_openmetrics(_populated_registry(clock))
        assert "query_count_total 12" in text.splitlines()
        assert text.endswith("# EOF\n")

    def test_windowed_histogram_exports_three_quantiles(self):
        clock = FakeClock()
        text = obs.render_openmetrics(_populated_registry(clock))
        for q in ("0.5", "0.95", "0.99"):
            assert f'query_latency_seconds{{quantile="{q}"}}' in text

    def test_name_collision_keeps_first_family(self):
        registry = obs.MetricsRegistry()
        registry.counter("a.b").add(1)
        registry.counter("a:b").add(2)  # sanitizes to a distinct name
        registry.counter("a-b").add(3)  # collides with a.b -> a_b
        text = obs.render_openmetrics(registry)
        # Both a.b and a-b sanitize to a_b; exactly one family survives
        # (render order, i.e. sorted name order) and the output stays
        # parseable instead of declaring a duplicate family.
        assert text.count("# TYPE a_b counter") == 1
        assert "a_b_total 3" in text
        obs.parse_openmetrics(text)

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("query.latency") == "query_latency"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("shard.0.proc.rss") == "shard_0_proc_rss"


class TestParseRejects:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            obs.parse_openmetrics("# TYPE a gauge\na 1\n")

    def test_counter_sample_without_total_suffix(self):
        text = "# TYPE a counter\na 1\n# EOF"
        with pytest.raises(ValueError, match="_total"):
            obs.parse_openmetrics(text)

    def test_sample_without_family(self):
        with pytest.raises(ValueError, match="no preceding"):
            obs.parse_openmetrics("orphan 1\n# EOF")

    def test_duplicate_family(self):
        text = "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF"
        with pytest.raises(ValueError, match="duplicate"):
            obs.parse_openmetrics(text)

    def test_blank_line(self):
        with pytest.raises(ValueError, match="blank"):
            obs.parse_openmetrics("# TYPE a gauge\n\na 1\n# EOF")

    def test_bad_type(self):
        with pytest.raises(ValueError, match="bad type"):
            obs.parse_openmetrics("# TYPE a histogram\n# EOF")


class TestAtomicWrite:
    def test_replaces_without_leftover_staging(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_text_atomic(path, "one\n")
        write_text_atomic(path, "two\n")
        assert path.read_text() == "two\n"
        assert os.listdir(tmp_path) == ["metrics.prom"]


class TestTelemetrySink:
    def _sink(self, tmp_path, clock):
        registry = _populated_registry(clock)
        journal = obs.EventJournal(clock=clock)
        slo = obs.SloTracker(clock=clock)
        slo.observe(0.01)
        sink = obs.TelemetrySink(
            tmp_path / "spool", registry, journal=journal, slo=slo,
            clock=clock,
        )
        return sink, journal

    def test_flush_writes_a_complete_spool(self, tmp_path):
        clock = FakeClock()
        sink, journal = self._sink(tmp_path, clock)
        journal.emit("build_phase", phase="tree")
        sink.flush()
        spool = tmp_path / "spool"
        obs.parse_openmetrics((spool / METRICS_PROM).read_text())
        snapshot = json.loads((spool / METRICS_JSON).read_text())
        assert snapshot["flushes"] == 1
        assert snapshot["pid"] == os.getpid()
        assert snapshot["ts"] == clock()
        assert snapshot["summary"]["counters"]["query.count"] == 12
        assert snapshot["slo"]["healthy"] is True
        events = (spool / EVENTS_JSONL).read_text().splitlines()
        assert json.loads(events[0])["type"] == "build_phase"

    def test_events_are_drained_incrementally(self, tmp_path):
        clock = FakeClock()
        sink, journal = self._sink(tmp_path, clock)
        journal.emit("build_phase", phase="tree")
        sink.flush()
        sink.flush()  # nothing new: no duplicate lines
        journal.emit("build_phase", phase="write")
        sink.flush()
        lines = (tmp_path / "spool" / EVENTS_JSONL).read_text().splitlines()
        assert [json.loads(line)["attrs"]["phase"] for line in lines] == [
            "tree", "write",
        ]

    def test_sampler_readings_are_appended(self, tmp_path):
        if not obs.proc_available():
            pytest.skip("no /proc on this platform")
        clock = FakeClock()
        registry = obs.MetricsRegistry()
        sampler = obs.ResourceSampler(registry)
        sampler.watch("", os.getpid())
        sink = obs.TelemetrySink(
            tmp_path / "spool", registry, sampler=sampler, clock=clock
        )
        sink.flush()
        records = (
            tmp_path / "spool" / RESOURCES_JSONL
        ).read_text().splitlines()
        reading = json.loads(records[0])
        assert reading["ts"] == clock()
        assert reading["samples"][""]["rss_bytes"] > 0

    def test_close_stops_loop_and_flushes_once_more(self, tmp_path):
        clock = FakeClock()
        sink, _ = self._sink(tmp_path, clock)
        with sink:
            pass  # enter starts the thread, exit closes
        assert sink._thread is None
        snapshot = json.loads(
            (tmp_path / "spool" / METRICS_JSON).read_text()
        )
        assert snapshot["flushes"] >= 1

    def test_no_torn_reads_between_flushes(self, tmp_path):
        clock = FakeClock()
        sink, _ = self._sink(tmp_path, clock)
        sink.flush()
        spool = tmp_path / "spool"
        before = (spool / METRICS_PROM).read_text()
        sink.flush()
        after = (spool / METRICS_PROM).read_text()
        for text in (before, after):
            obs.parse_openmetrics(text)
        leftovers = [n for n in os.listdir(spool) if n.startswith(".")]
        assert leftovers == []
