"""Fork/spawn safety of repro.obs: state export, merge, and fork hygiene."""

import multiprocessing

import pytest

from repro import obs
from repro.core.shard_worker import ProcessBsf, mp_context

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAS_FORK, reason="platform has no fork start method"
)


class TestExportMergeState:
    def test_roundtrip_preserves_every_instrument(self):
        child = obs.MetricsRegistry()
        child.counter("build.splits").add(7)
        child.gauge("build.series_per_sec").set(123.5)
        child.histogram("query.seconds").observe(0.25)
        child.histogram("query.seconds").observe(0.75)

        parent = obs.MetricsRegistry()
        parent.merge_state(child.export_state())
        summary = parent.summary()
        assert summary["counters"]["build.splits"] == 7
        assert summary["gauges"]["build.series_per_sec"] == 123.5
        assert summary["histograms"]["query.seconds"]["count"] == 2

    def test_merge_accumulates_counters_and_extends_histograms(self):
        child = obs.MetricsRegistry()
        child.counter("work").add(3)
        child.histogram("lat").observe(1.0)
        state = child.export_state()

        parent = obs.MetricsRegistry()
        parent.counter("work").add(10)
        parent.histogram("lat").observe(3.0)
        parent.merge_state(state)
        parent.merge_state(state)  # two workers with identical state
        summary = parent.summary()
        assert summary["counters"]["work"] == 16
        assert summary["histograms"]["lat"]["count"] == 3
        assert summary["histograms"]["lat"]["max"] == 3.0

    def test_prefix_namespaces_merged_names(self):
        child = obs.MetricsRegistry()
        child.counter("build.flushes").add(2)
        child.gauge("build.build_seconds").set(1.5)
        child.histogram("io.ms").observe(4.0)

        parent = obs.MetricsRegistry()
        parent.merge_state(child.export_state(), prefix="shard.3.")
        summary = parent.summary()
        assert summary["counters"]["shard.3.build.flushes"] == 2
        assert summary["gauges"]["shard.3.build.build_seconds"] == 1.5
        assert summary["histograms"]["shard.3.io.ms"]["count"] == 1

    def test_export_state_is_picklable(self):
        import pickle

        registry = obs.MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.5)
        state = pickle.loads(pickle.dumps(registry.export_state()))
        assert state["counters"]["a"] == 1
        assert state["histograms"]["b"] == [0.5]


def _child_flush(queue):
    registry = obs.MetricsRegistry()
    registry.counter("child.events").add(5)
    registry.histogram("child.latency").observe(0.125)
    queue.put(registry.export_state())


def _child_trace_state(queue):
    queue.put(obs.get_trace() is None)


def _child_publish(bsf, queue):
    bsf.publish(2.5)
    queue.put(bsf.get())


@fork_only
class TestCrossProcess:
    def test_child_registry_flushes_home(self):
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_flush, args=(queue,))
        proc.start()
        state = queue.get(timeout=30)
        proc.join(timeout=30)
        parent = obs.MetricsRegistry()
        parent.merge_state(state, prefix="shard.0.")
        summary = parent.summary()
        assert summary["counters"]["shard.0.child.events"] == 5
        assert summary["histograms"]["shard.0.child.latency"]["count"] == 1

    def test_fork_clears_the_active_trace(self):
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        trace = obs.Trace("parent")
        with obs.use_trace(trace):
            with obs.span("outer"):
                proc = ctx.Process(target=_child_trace_state, args=(queue,))
                proc.start()
                cleared = queue.get(timeout=30)
                proc.join(timeout=30)
        assert cleared, "forked child inherited the parent's active trace"
        assert obs.get_trace() is None  # use_trace restored the parent too

    def test_process_bsf_is_shared(self):
        ctx = mp_context()
        bsf = ProcessBsf(ctx)
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_publish, args=(bsf, queue))
        proc.start()
        seen_in_child = queue.get(timeout=30)
        proc.join(timeout=30)
        assert seen_in_child == 2.5
        assert bsf.get() == 2.5  # the child's publish reached the parent
        bsf.publish(9.0)
        assert bsf.get() == 2.5  # worse bounds never regress
        bsf.reset()
        assert bsf.get() == float("inf")


class TestSpanAbsorption:
    def test_absorb_remaps_ids_and_prefixes_threads(self):
        worker = obs.Trace("worker")
        with obs.use_trace(worker):
            with obs.span("build.shard", rows=10):
                with obs.span("phase1"):
                    pass
        records = worker.export_spans()
        assert len(records) == 2

        parent = obs.Trace("parent")
        with obs.use_trace(parent):
            with obs.span("build.sharded") as outer:
                pass
            parent.absorb_spans(
                records, thread_prefix="shard1/", parent=outer
            )
        assert len(parent) == 3
        (absorbed_root,) = parent.find("build.shard")
        (absorbed_child,) = parent.find("phase1")
        # Internal parent links survive the id remap; the batch root
        # hangs under the coordinator's span.
        assert absorbed_child.parent_id == absorbed_root.span_id
        assert absorbed_root.parent_id == outer.span_id
        assert absorbed_root.thread_name.startswith("shard1/")
        assert absorbed_root.attributes["rows"] == 10

    def test_absorbed_spans_appear_in_chrome_export(self):
        worker = obs.Trace("worker")
        with obs.use_trace(worker):
            with obs.span("build.shard"):
                pass
        parent = obs.Trace("parent")
        parent.absorb_spans(worker.export_spans(), thread_prefix="shard0/")
        events = parent.to_chrome_events()
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert any(name.startswith("shard0/") for name in names)
        assert any(
            e.get("ph") == "X" and e.get("name") == "build.shard"
            for e in events
        )
