"""The structured event journal: typing, ordering, ring bounds, merge."""

import os
import threading

import pytest

from repro import obs


class FakeClock:
    def __init__(self, now=5_000.0):
        self.now = float(now)

    def __call__(self):
        return self.now


class TestEmit:
    def test_unknown_type_raises(self):
        journal = obs.EventJournal()
        with pytest.raises(ValueError, match="unknown event type"):
            journal.emit("made_up_event")
        assert len(journal) == 0

    def test_every_declared_type_is_emittable(self):
        journal = obs.EventJournal()
        for etype in obs.EVENT_TYPES:
            journal.emit(etype)
        assert [e.type for e in journal.events()] == list(obs.EVENT_TYPES)

    def test_event_fields(self):
        clock = FakeClock(123.5)
        journal = obs.EventJournal(clock=clock)
        event = journal.emit("worker_restart", worker=2, dead_pid=999)
        assert event.seq == 0
        assert event.ts == 123.5
        assert event.pid == os.getpid()
        assert event.attrs == {"worker": 2, "dead_pid": 999}
        assert event.trace is None and event.span_id is None
        record = event.to_dict()
        assert record == {
            "seq": 0, "ts": 123.5, "type": "worker_restart",
            "pid": os.getpid(), "attrs": {"worker": 2, "dead_pid": 999},
        }

    def test_trace_and_span_are_captured(self):
        journal = obs.EventJournal()
        trace = obs.Trace("chaos-run")
        with obs.use_trace(trace):
            with obs.span("settle"):
                event = journal.emit("query_degraded", coverage=0.5)
        assert event.trace == "chaos-run"
        assert isinstance(event.span_id, int)
        assert "trace" in event.to_dict()

    def test_explicit_timestamp_override(self):
        journal = obs.EventJournal(clock=FakeClock(10.0))
        event = journal.emit("build_phase", _ts=3.25, phase="tree")
        assert event.ts == 3.25
        assert "_ts" not in event.attrs


class TestRing:
    def test_capacity_bounds_retention_not_sequence(self):
        journal = obs.EventJournal(capacity=4)
        for i in range(10):
            journal.emit("build_phase", i=i)
        assert len(journal) == 4
        assert journal.total_emitted == 10
        assert [e.attrs["i"] for e in journal.events()] == [6, 7, 8, 9]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            obs.EventJournal(capacity=0)

    def test_tail(self):
        journal = obs.EventJournal()
        for i in range(5):
            journal.emit("build_phase", i=i)
        assert [e.attrs["i"] for e in journal.tail(2)] == [3, 4]
        assert journal.tail(0) == []

    def test_drain_since_is_incremental(self):
        journal = obs.EventJournal()
        journal.emit("build_phase", i=0)
        journal.emit("build_phase", i=1)
        fresh = journal.drain_since(-1)
        assert [e.seq for e in fresh] == [0, 1]
        journal.emit("build_phase", i=2)
        fresh = journal.drain_since(fresh[-1].seq)
        assert [e.attrs["i"] for e in fresh] == [2]
        assert journal.drain_since(fresh[-1].seq) == []


class TestConcurrentEmitters:
    def test_sequence_numbers_give_a_total_order(self):
        """Many threads emit concurrently: sequence numbers must come out
        unique, gap-free, and aligned with the retention order."""
        journal = obs.EventJournal(capacity=10_000)
        per_thread = 200
        num_threads = 8

        def emitter(tid):
            for i in range(per_thread):
                journal.emit("cache_eviction_pressure", tid=tid, i=i)

        threads = [threading.Thread(target=emitter, args=(t,))
                   for t in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = journal.events()
        total = per_thread * num_threads
        assert len(events) == total
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs), "ring order must match seq order"
        assert seqs == list(range(total)), "seqs must be unique and gap-free"
        # Per-thread emission order is preserved within the total order.
        for tid in range(num_threads):
            own = [e.attrs["i"] for e in events if e.attrs["tid"] == tid]
            assert own == list(range(per_thread))


class TestMergeState:
    def test_merge_assigns_fresh_seqs_and_keeps_provenance(self):
        worker = obs.EventJournal(clock=FakeClock(50.0))
        worker.emit("build_phase", phase="tree")
        worker.emit("build_phase", phase="write")

        parent = obs.EventJournal()
        parent.emit("worker_restart", worker=0)
        parent.merge_state(worker.export_state(), shard=3)

        events = parent.events()
        assert [e.seq for e in events] == [0, 1, 2]
        merged = events[1:]
        assert all(e.ts == 50.0 for e in merged)
        assert all(e.attrs["shard"] == 3 for e in merged)
        assert [e.attrs["phase"] for e in merged] == ["tree", "write"]
        # pid is the emitting process's, not the merging process's field
        # recomputed — equal here only because both ran in this process.
        assert all(e.pid == os.getpid() for e in merged)

    def test_export_state_is_json_roundtrippable(self):
        import json

        journal = obs.EventJournal()
        journal.emit("shard_dropped", shard=1, reason="boom")
        state = json.loads(json.dumps(journal.export_state()))
        target = obs.EventJournal()
        target.merge_state(state)
        event = target.events()[0]
        assert event.type == "shard_dropped"
        assert event.attrs["reason"] == "boom"
