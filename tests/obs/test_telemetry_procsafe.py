"""Telemetry across process boundaries, including killed workers.

Two layers:

* direct — windowed instruments observed in worker processes (one of
  which is OOM-killed right after exporting, then "respawned" under a
  fresh pid) merge into summaries value-identical to the same
  observations made by threads of one process;
* integrated — a 2-shard chaos build under an active hub: the kill
  fires inside a real shard worker, the supervisor respawns it, and the
  coordinator's journal/registry carry the whole story, which the
  monitor can render from a flushed spool.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.core import HerculesConfig, ShardedIndex
from repro.core.shard_worker import mp_context, reap_processes
from repro.storage import faults

from ..conftest import make_random_walks

_BASE_TS = 2_000_000.0
_GEOMETRY = dict(window_seconds=30.0, num_buckets=6)


class _FixedClock:
    """Picklable frozen clock shared by every process in a test."""

    def __init__(self, now=_BASE_TS):
        self.now = float(now)

    def __call__(self):
        return self.now


def _windowed_worker(queue, values, die_after_export):
    """Observe ``values`` into fresh windowed instruments and export.

    With ``die_after_export`` the process then dies the way an OOM kill
    would (``os._exit``) — the exported state on the queue is all that
    survives, exactly like a killed shard worker whose last reply made
    it home.
    """
    clock = _FixedClock()
    hist = obs.WindowedHistogram(clock=clock, **_GEOMETRY)
    counter = obs.WindowedCounter(clock=clock, **_GEOMETRY)
    for v in values:
        hist.observe(v)
        counter.inc()
    queue.put({
        "pid": os.getpid(),
        "hist": hist.export_state(),
        "counter": counter.export_state(),
    })
    if die_after_export:
        queue.close()
        queue.join_thread()  # flush the feeder before dying
        os._exit(faults.KILL_EXIT_CODE)


class TestKilledWorkerWindowedMerge:
    def test_threads_and_respawned_processes_are_value_identical(self):
        """The acceptance criterion: the same observations produce
        value-identical rolling percentiles whether they came from
        threads of one process or from a killed-then-respawned pair of
        worker processes whose states were merged."""
        values = [float(v) for v in
                  np.random.default_rng(17).normal(0.1, 0.02, size=120)]
        first, second = values[:60], values[60:]

        ctx = mp_context()
        queue = ctx.Queue()
        killed = ctx.Process(
            target=_windowed_worker, args=(queue, first, True)
        )
        killed.start()
        state_a = queue.get(timeout=30)
        killed.join(timeout=30)
        assert killed.exitcode == faults.KILL_EXIT_CODE

        respawned = ctx.Process(
            target=_windowed_worker, args=(queue, second, False)
        )
        respawned.start()
        state_b = queue.get(timeout=30)
        reap_processes([respawned], timeout=30, label="respawned")
        assert state_b["pid"] != state_a["pid"], "respawn means a fresh pid"

        clock = _FixedClock()
        merged_hist = obs.WindowedHistogram(clock=clock, **_GEOMETRY)
        merged_hist.merge_state(state_a["hist"])
        merged_hist.merge_state(state_b["hist"])
        merged_counter = obs.WindowedCounter(clock=clock, **_GEOMETRY)
        merged_counter.merge_state(state_a["counter"])
        merged_counter.merge_state(state_b["counter"])

        # Thread-side reference: both halves into one shared instrument.
        import threading

        shared_hist = obs.WindowedHistogram(clock=clock, **_GEOMETRY)
        shared_counter = obs.WindowedCounter(clock=clock, **_GEOMETRY)

        def hammer(chunk):
            for v in chunk:
                shared_hist.observe(v)
                shared_counter.inc()

        threads = [threading.Thread(target=hammer, args=(c,))
                   for c in (first, second)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert merged_hist.summary() == shared_hist.summary()
        assert merged_counter.summary() == shared_counter.summary()


N_ROWS = 150
LENGTH = 16


def _config(**overrides):
    base = dict(
        leaf_capacity=20,
        num_build_threads=1,
        flush_threshold=1,
        num_shards=2,
        shard_workers=2,
        shard_poll_seconds=0.05,
        build_join_timeout=5.0,
        query_join_timeout=5.0,
    )
    base.update(overrides)
    return HerculesConfig(**base)


class TestChaosBuildTelemetry:
    def test_killed_build_worker_story_lands_in_the_hub(self, tmp_path):
        """One kill mid-build: the coordinator hub ends up holding the
        worker_restart event, the (re-run) worker's own build_phase
        events tagged with shard provenance, merged worker metrics, and
        a spool the monitor renders."""
        data = make_random_walks(N_ROWS, LENGTH, seed=23)
        hub = obs.TelemetryHub()
        fence = tmp_path / "kill-once"
        plan = faults.FaultPlan(
            op="write", at=3, mode="kill", fence=str(fence)
        )
        with faults.ship_plans({0: plan}), obs.use_hub(hub):
            index = ShardedIndex.build(
                data,
                _config(max_worker_restarts=2),
                directory=tmp_path / "idx",
            )
            try:
                answer = index.knn(data[0], k=3)
            finally:
                index.close()
        assert fence.exists(), "the kill plan never fired"
        assert len(answer.positions) == 3

        events = hub.journal.events()
        by_type = {}
        for event in events:
            by_type.setdefault(event.type, []).append(event)

        restarts = by_type.get("worker_restart", [])
        assert restarts, "the supervisor must journal the respawn"
        assert restarts[0].attrs["kind"] == "build"
        assert restarts[0].attrs["dead_pid"] != restarts[0].attrs["new_pid"]
        assert restarts[0].pid == os.getpid(), "emitted coordinator-side"

        phases = by_type.get("build_phase", [])
        worker_phases = [e for e in phases if "shard" in e.attrs]
        assert worker_phases, "worker journals must merge home"
        assert {e.attrs["shard"] for e in worker_phases} == {0, 1}
        assert all(e.pid != os.getpid() for e in worker_phases), (
            "merged events keep the worker's pid"
        )
        coordinator_phases = [
            e for e in phases if e.attrs.get("phase") == "sharded_build"
        ]
        assert len(coordinator_phases) == 1
        assert coordinator_phases[0].attrs["worker_restarts"] >= 1

        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) == list(range(len(events)))

        # Worker registries merge under shard.<i>.* and the query the
        # coordinator answered landed in the windowed instruments.
        index_registry = hub.registry
        assert index_registry.summary()["windowed_histograms"][
            "query.latency_seconds"]["total_count"] == 1

        spool = tmp_path / "spool"
        sink = obs.TelemetrySink(
            spool, hub.registry, journal=hub.journal, slo=hub.slo
        )
        sink.flush()
        obs.parse_openmetrics((spool / "metrics.prom").read_text())
        text = obs.render_dashboard(spool, event_tail=50)
        assert "worker_restart" in text
        assert "restarts=" in text

    def test_fault_free_build_merges_worker_metrics(self, tmp_path):
        data = make_random_walks(N_ROWS, LENGTH, seed=29)
        hub = obs.TelemetryHub()
        with obs.use_hub(hub):
            index = ShardedIndex.build(
                data, _config(), directory=tmp_path / "idx"
            )
            try:
                index.merge_worker_metrics(hub.registry)
            finally:
                index.close()
        counters = hub.registry.summary()["counters"]
        merged = sum(
            value for name, value in counters.items()
            if name.startswith("shard.") and name.endswith("build.num_series")
        )
        assert merged == N_ROWS
        phases = [e for e in hub.journal.events()
                  if e.type == "build_phase" and "shard" in e.attrs]
        assert {e.attrs["shard"] for e in phases} == {0, 1}
