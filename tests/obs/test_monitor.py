"""The `repro monitor` dashboard as a pure function of a spool."""

import io
import json

from repro import obs
from repro.obs.exporter import EVENTS_JSONL, RESOURCES_JSONL
from repro.obs.monitor import load_spool, sparkline


class FakeClock:
    def __init__(self, now=1_000_000.0):
        self.now = float(now)

    def __call__(self):
        return self.now


def _make_spool(tmp_path, clock):
    """A realistic spool: hub observations flushed through a real sink."""
    hub = obs.TelemetryHub(clock=clock)
    for i in range(10):
        hub.observe_query(0.01 * (i + 1), coverage=1.0)
    hub.observe_query(0.9, coverage=0.5, degraded=True)
    hub.registry.counter("cache.leaf.hits").add(90)
    hub.registry.counter("cache.leaf.misses").add(10)
    hub.registry.gauge("proc.rss_bytes").set(100 * 1024 * 1024)
    hub.registry.gauge("shard.0.proc.rss_bytes").set(50 * 1024 * 1024)
    hub.journal.emit("worker_restart", worker=0, kind="query",
                     dead_pid=111, new_pid=222)
    hub.journal.emit("shard_dropped", shard=1, reason="boom")
    directory = tmp_path / "spool"
    sink = obs.TelemetrySink(
        directory, hub.registry, journal=hub.journal, slo=hub.slo,
        clock=clock,
    )
    # Two flushes with fake resource history for the sparkline.
    sink.flush()
    with open(directory / RESOURCES_JSONL, "a", encoding="utf-8") as fh:
        for rss in (90, 95, 100, 120):
            fh.write(json.dumps(
                {"ts": clock(), "samples": {"": {"rss_bytes": rss << 20}}}
            ) + "\n")
    return directory


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_ramp_spans_the_blocks(self):
        line = sparkline(list(range(8)))
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_width_clips_to_newest(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestLoadSpool:
    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        spool = load_spool(tmp_path / "nope")
        assert spool == {"snapshot": None, "events": [], "resources": []}

    def test_torn_tail_line_is_skipped(self, tmp_path):
        directory = tmp_path / "spool"
        directory.mkdir()
        with open(directory / EVENTS_JSONL, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "build_phase", "attrs": {}}) + "\n")
            fh.write('{"type": "worker_res')  # torn mid-append
        events = load_spool(directory)["events"]
        assert len(events) == 1


class TestRenderDashboard:
    def test_waiting_message_without_snapshot(self, tmp_path):
        text = obs.render_dashboard(tmp_path)
        assert "waiting for telemetry" in text

    def test_full_dashboard_sections(self, tmp_path):
        clock = FakeClock()
        directory = _make_spool(tmp_path, clock)
        text = obs.render_dashboard(directory, now=clock())
        assert "qps" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "coverage mean" in text
        assert "degraded answers 1" in text
        assert "slo [" in text
        assert "hit rate 90.00%" in text
        assert "shard 0: restarts=1" in text
        assert "shard 1: restarts=0 dropped=1" in text
        assert "rss" in text and "100.0MiB" in text
        assert any(block in text for block in "▁▂▃▄▅▆▇█")
        assert "worker_restart" in text and "shard_dropped" in text

    def test_event_tail_bounds_the_listing(self, tmp_path):
        clock = FakeClock()
        directory = _make_spool(tmp_path, clock)
        text = obs.render_dashboard(directory, now=clock(), event_tail=1)
        assert "worker_restart" not in text
        assert "shard_dropped" in text


class TestRunMonitor:
    def test_one_iteration_writes_the_dashboard(self, tmp_path):
        clock = FakeClock()
        directory = _make_spool(tmp_path, clock)
        stream = io.StringIO()
        rc = obs.run_monitor(
            directory, interval=0.0, iterations=1, clear=False,
            stream=stream,
        )
        assert rc == 0
        assert "repro monitor" in stream.getvalue()
        assert "qps" in stream.getvalue()
