"""/proc resource sampling for the coordinator and shard workers."""

import os

import pytest

from repro import obs
from repro.obs.sampler import sample_process

needs_proc = pytest.mark.skipif(
    not obs.proc_available(), reason="no /proc on this platform"
)


class TestSampleProcess:
    @needs_proc
    def test_own_process_reading(self):
        sample = sample_process()
        assert sample is not None
        assert sample["rss_bytes"] > 0
        assert sample["cpu_seconds"] >= 0.0
        assert sample["threads"] >= 1
        assert sample["open_fds"] >= 3  # stdio at minimum

    @needs_proc
    def test_explicit_pid_matches_self(self):
        assert sample_process(os.getpid())["rss_bytes"] > 0

    def test_dead_pid_returns_none(self):
        # Max pid is bounded well below this on any Linux.
        assert sample_process(2**31 - 7) is None


class TestResourceSampler:
    def test_prefix_for(self):
        assert obs.ResourceSampler.prefix_for("") == "proc"
        assert obs.ResourceSampler.prefix_for("shard.3") == "shard.3.proc"

    @needs_proc
    def test_sample_once_publishes_gauges_per_label(self):
        registry = obs.MetricsRegistry()
        sampler = obs.ResourceSampler(registry)
        sampler.watch("", os.getpid())
        sampler.watch("shard.0", os.getpid())
        readings = sampler.sample_once()
        assert set(readings) == {"", "shard.0"}
        gauges = registry.summary()["gauges"]
        assert gauges["proc.rss_bytes"] > 0
        assert gauges["shard.0.proc.rss_bytes"] > 0
        assert gauges["proc.rss_bytes"] == gauges["shard.0.proc.rss_bytes"]

    @needs_proc
    def test_dead_pid_is_dropped_silently(self):
        registry = obs.MetricsRegistry()
        sampler = obs.ResourceSampler(registry)
        sampler.watch("shard.1", 2**31 - 7)
        sampler.watch("", os.getpid())
        readings = sampler.sample_once()
        assert "shard.1" not in readings
        assert "shard.1" not in sampler.watched
        assert "" in sampler.watched, "live pids stay watched"

    def test_watch_unwatch(self):
        sampler = obs.ResourceSampler(obs.MetricsRegistry())
        sampler.watch("shard.0", 1234)
        assert sampler.watched == {"shard.0": 1234}
        sampler.unwatch("shard.0")
        assert sampler.watched == {}

    @needs_proc
    def test_background_loop_starts_and_stops(self):
        sampler = obs.ResourceSampler(
            obs.MetricsRegistry(), interval=0.01
        )
        sampler.watch("", os.getpid())
        sampler.start()
        sampler.start()  # idempotent
        try:
            deadline = 100
            while "proc.rss_bytes" not in sampler.registry.summary()[
                "gauges"
            ] and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            assert sampler.registry.summary()["gauges"]["proc.rss_bytes"] > 0
        finally:
            sampler.stop()
        assert sampler._thread is None
