"""End-to-end: the instrumented hot paths emit the expected spans."""

import numpy as np
import pytest

from repro import obs
from repro.core import HerculesConfig, HerculesIndex
from repro.storage.dataset import Dataset
from repro.workloads.generators import make_noise_queries, random_walks


@pytest.fixture(scope="module")
def data():
    return random_walks(400, 32, seed=17)


@pytest.fixture(scope="module")
def traced_build(data, tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs-index")
    trace = obs.Trace(name="build")
    config = HerculesConfig(
        leaf_capacity=50,
        num_build_threads=3,
        flush_threshold=1,
        num_write_threads=2,
        num_query_threads=2,
        # A small HBuffer forces flushes so the flush spans appear.
        db_size=50,
        buffer_capacity=200,
    )
    with Dataset.write(directory / "data.bin", data) as dataset:
        with obs.use_trace(trace):
            index = HerculesIndex.build(
                dataset, config, directory=directory / "idx"
            )
        index.close()
    return trace, directory / "idx"


class TestBuildSpans:
    def test_table4_phases_present(self, traced_build):
        trace, _ = traced_build
        names = {s.name for s in trace.spans}
        assert {
            "build",
            "build.phase1",
            "build.phase2",
            "build.tree",
            "build.buffering",
            "build.flush",
            "build.split",
            "build.write",
        } <= names

    def test_flush_protocol_spans_nest_under_tree(self, traced_build):
        trace, _ = traced_build
        tree = trace.find("build.tree")[0]
        workers = trace.find("build.insert_worker")
        assert workers, "parallel build should span its insert workers"
        assert all(w.parent_id == tree.span_id for w in workers)
        coordinator = trace.find("build.flush.coordinator")
        helpers = trace.find("build.flush.worker")
        assert coordinator or helpers, "flush roles should be traced"

    def test_io_attributes_on_phases(self, traced_build):
        trace, _ = traced_build
        phase2 = trace.find("build.phase2")[0]
        assert phase2.attributes["bytes_written"] > 0
        flush = trace.find("build.flush")[0]
        assert "spilled_series" in flush.attributes


class TestQuerySpans:
    def test_four_phases_with_worker_children(self, traced_build, data):
        _, index_dir = traced_build
        index = HerculesIndex.open(index_dir)
        # A tight leaf-visit budget leaves candidates after phase 1, and
        # disabling the adaptive skip-sequential fallback forces them
        # through phases 3 and 4 with the parallel workers.
        config = index.config.with_options(l_max=2, adaptive_thresholds=False)
        queries = make_noise_queries(data, 3, noise_variance=2.0, seed=5)
        trace = obs.Trace(name="query")
        with obs.use_trace(trace):
            answers = [index.knn(q, k=5, config=config) for q in queries]
        index.close()

        names = {s.name for s in trace.spans}
        assert {
            "query",
            "query.phase1.approx",
            "query.phase2.candidates",
            "query.phase3.filter",
            "query.phase4.refine",
        } <= names
        assert all(a.profile.path == "full-four-phase" for a in answers)

        refine = trace.find("query.phase4.refine")
        workers = trace.find("query.phase4.worker")
        assert workers, "parallel refine should span its workers"
        refine_ids = {s.span_id for s in refine}
        assert all(w.parent_id in refine_ids for w in workers)

        for query_span in trace.find("query"):
            assert query_span.attributes["k"] == 5
            assert "path" in query_span.attributes

    def test_profile_io_filled_by_knn_itself(self, traced_build, data):
        _, index_dir = traced_build
        index = HerculesIndex.open(index_dir)
        answer = index.knn(data[0], k=1)
        index.close()
        assert answer.profile.io is not None
        assert answer.profile.io.read_calls >= 1

    def test_approximate_knn_fills_io_and_span(self, traced_build, data):
        _, index_dir = traced_build
        index = HerculesIndex.open(index_dir)
        trace = obs.Trace()
        with obs.use_trace(trace):
            answer = index.knn_approx(data[1], k=1)
        index.close()
        assert answer.profile.io is not None
        query_span = trace.find("query")[0]
        assert query_span.attributes["mode"] == "approximate"
