"""EXPLAIN report formatting."""

from repro.core.query import QueryProfile
from repro.obs import (
    MetricsRegistry,
    explain_profile,
    explain_workload_summary,
    record_profile,
)
from repro.storage.iostats import IOStats


def _profile(path="full-four-phase"):
    profile = QueryProfile()
    profile.path = path
    profile.time_total = 0.02
    profile.time_approx = 0.005
    profile.time_candidates = 0.005
    profile.time_refine = 0.01
    profile.approx_leaves = 3
    profile.candidate_leaves = 5
    profile.eapca_pruning = 0.75
    profile.candidate_series = 40
    profile.sax_pruning = 0.6
    profile.series_accessed = 50
    profile.distance_computations = 90
    return profile


class TestExplainProfile:
    def test_contains_phases_pruning_and_totals(self):
        report = explain_profile(_profile(), num_series=200, label="query 0")
        assert "query 0: path=full-four-phase" in report
        assert "phase 1 approx" in report
        assert "3 leaves visited" in report
        assert "5 candidate leaves" in report
        assert "EAPCA pruning 75.00%" in report
        assert "40 candidate series" in report
        assert "SAX pruning 60.00%" in report
        assert "90 distance computations" in report
        assert "25.00% of data" in report

    def test_io_line_only_when_io_captured(self):
        profile = _profile()
        assert "random seeks" not in explain_profile(profile)
        stats = IOStats()
        stats.record_read(1_000_000, sequential=False)
        profile.io = stats.snapshot()
        report = explain_profile(profile)
        assert "1 random seeks" in report
        assert "1.00 MB read" in report
        assert "on paper disks" in report

    def test_missing_sax_pruning_omitted(self):
        profile = _profile()
        profile.sax_pruning = None
        report = explain_profile(profile)
        assert "SAX pruning" not in report

    def test_abandoning_and_cache_lines(self):
        profile = _profile()
        assert "early abandoning" not in explain_profile(profile)
        assert "leaf cache" not in explain_profile(profile)
        profile.points_compared = 750
        profile.points_total = 1000
        profile.cache_hits = 3
        profile.cache_misses = 1
        report = explain_profile(profile)
        assert "750 of 1000 points compared" in report
        assert "abandoned 25.00%" in report
        assert "3 hits, 1 misses" in report
        assert "hit rate 75.00%" in report


class TestWorkloadSummary:
    def test_summarizes_registry(self):
        registry = MetricsRegistry()
        for path in ("approx-only", "approx-only", "full-four-phase"):
            record_profile(registry, _profile(path), num_series=200)
        report = explain_workload_summary(registry)
        assert "workload summary (3 queries)" in report
        assert "query seconds" in report
        assert "p95" in report
        assert "270 distance computations" in report
        assert "access paths: approx-only=2, full-four-phase=1" in report

    def test_summary_includes_points_and_cache_totals(self):
        registry = MetricsRegistry()
        profile = _profile()
        profile.points_compared = 400
        profile.points_total = 800
        profile.cache_hits = 8
        profile.cache_misses = 2
        record_profile(registry, profile, num_series=200)
        report = explain_workload_summary(registry)
        assert "abandoned fraction" in report
        assert "cache hit rate" in report
        assert "points: 400 of 800 compared (abandoned 50.00%)" in report
        assert "leaf cache: 8 hits, 2 misses (hit rate 80.00%)" in report

    def test_empty_registry(self):
        report = explain_workload_summary(MetricsRegistry())
        assert "workload summary (0 queries)" in report
