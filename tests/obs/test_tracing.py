"""Spans, traces, cross-thread attribution, and Chrome-trace export."""

import json
import threading

import numpy as np

from repro import obs
from repro.obs.tracing import NULL_SPAN


class TestSpanNesting:
    def test_nested_spans_record_parent_ids(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("outer") as outer:
                with obs.span("middle") as middle:
                    with obs.span("inner") as inner:
                        pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_a_parent(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("parent") as parent:
                with obs.span("first") as first:
                    pass
                with obs.span("second") as second:
                    pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert {s.name for s in trace.children_of(parent)} == {"first", "second"}

    def test_spans_record_in_finish_order_with_durations(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        names = [s.name for s in trace.spans]
        assert names == ["inner", "outer"]
        outer = trace.find("outer")[0]
        inner = trace.find("inner")[0]
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_attributes_and_exception_marking(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            try:
                with obs.span("failing", stage=1) as s:
                    s.set("key", "value")
                    s.set_attrs(extra=2)
                    raise ValueError("boom")
            except ValueError:
                pass
        span = trace.find("failing")[0]
        assert span.attributes["stage"] == 1
        assert span.attributes["key"] == "value"
        assert span.attributes["extra"] == 2
        assert span.attributes["error"] == "ValueError"

    def test_current_span_tracks_the_stack(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            assert obs.current_span() is None
            with obs.span("outer") as outer:
                assert obs.current_span() is outer
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None


class TestDisabledTracing:
    def test_span_is_shared_null_object(self):
        assert obs.get_trace() is None
        s = obs.span("anything", key=1)
        assert s is NULL_SPAN
        with s:
            s.set("k", "v")
            s.set_attrs(a=1)
        assert obs.current_span() is None

    def test_use_trace_restores_previous(self):
        first = obs.Trace("first")
        second = obs.Trace("second")
        with obs.use_trace(first):
            assert obs.get_trace() is first
            with obs.use_trace(second):
                assert obs.get_trace() is second
            assert obs.get_trace() is first
        assert obs.get_trace() is None

    def test_set_trace_none_turns_tracing_off(self):
        trace = obs.Trace()
        obs.set_trace(trace)
        try:
            assert obs.get_trace() is trace
        finally:
            obs.set_trace(None)
        assert obs.span("x") is NULL_SPAN


class TestCrossThreadAttribution:
    def test_explicit_parent_attaches_worker_spans(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("phase") as phase:
                parent = obs.current_span()

                def worker(i):
                    with obs.span("phase.worker", parent=parent, worker=i):
                        pass

                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(3)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        workers = trace.find("phase.worker")
        assert len(workers) == 3
        assert all(w.parent_id == phase.span_id for w in workers)
        assert sorted(w.attributes["worker"] for w in workers) == [0, 1, 2]

    def test_worker_without_parent_is_a_root_span(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("phase"):
                done = threading.Event()

                def worker():
                    with obs.span("orphan"):
                        done.set()

                t = threading.Thread(target=worker)
                t.start()
                t.join()
                assert done.wait(1.0)
        orphan = trace.find("orphan")[0]
        assert orphan.parent_id is None

    def test_threads_get_compact_distinct_ids(self):
        trace = obs.Trace()
        with obs.use_trace(trace):
            with obs.span("main"):
                def worker():
                    with obs.span("side"):
                        pass

                t = threading.Thread(target=worker, name="side-thread")
                t.start()
                t.join()
        main_span = trace.find("main")[0]
        side_span = trace.find("side")[0]
        assert {main_span.thread_id, side_span.thread_id} == {1, 2}
        assert side_span.thread_name == "side-thread"


class TestChromeExport:
    def _trace_with_work(self):
        trace = obs.Trace(name="unit")
        with obs.use_trace(trace):
            with obs.span("outer", count=np.int64(3), ratio=np.float64(0.5)):
                with obs.span("inner"):
                    pass
        return trace

    def test_event_shape(self):
        trace = self._trace_with_work()
        events = trace.to_chrome_events()
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["name"] == "thread_name"
        assert len(complete) == 2
        for event in complete:
            assert event["pid"] == 1
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "span_id" in event["args"]
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_numpy_attributes_are_json_clean(self):
        trace = self._trace_with_work()
        doc = json.loads(trace.to_chrome_json())
        assert doc["displayTimeUnit"] == "ms"
        outer = next(
            e for e in doc["traceEvents"] if e.get("name") == "outer"
        )
        assert outer["args"]["count"] == 3
        assert outer["args"]["ratio"] == 0.5

    def test_save_writes_parseable_file(self, tmp_path):
        trace = self._trace_with_work()
        path = trace.save(tmp_path / "sub" / "trace.json")
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"} == {
            "outer",
            "inner",
        }


class TestIoSpan:
    def test_attaches_io_delta(self, tmp_path):
        from repro.storage.dataset import Dataset

        rng = np.random.default_rng(0)
        data = rng.standard_normal((20, 8)).astype(np.float32)
        trace = obs.Trace()
        with Dataset.write(tmp_path / "d.bin", data) as dataset:
            with obs.use_trace(trace):
                with obs.io_span("read", dataset.stats):
                    dataset.read_batch(0, 10)
        span = trace.find("read")[0]
        assert span.attributes["read_calls"] >= 1
        assert span.attributes["bytes_read"] >= 10 * 8 * 4

    def test_disabled_skips_snapshots_entirely(self):
        class Exploding:
            def snapshot(self):  # pragma: no cover - must not run
                raise AssertionError("snapshot taken while tracing off")

        with obs.io_span("quiet", Exploding()) as s:
            assert s is NULL_SPAN
