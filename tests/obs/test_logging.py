"""configure_logging: levels, idempotence, and output routing."""

import io
import logging

import pytest

from repro.obs import configure_logging


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger("repro")
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield
    logger.handlers[:] = handlers
    logger.setLevel(level)
    logger.propagate = propagate


class TestConfigureLogging:
    @pytest.mark.parametrize(
        "verbosity, level",
        [(-1, logging.ERROR), (0, logging.WARNING),
         (1, logging.INFO), (2, logging.DEBUG)],
    )
    def test_verbosity_levels(self, verbosity, level):
        logger = configure_logging(verbosity, stream=io.StringIO())
        assert logger.level == level

    def test_out_of_range_verbosity_clamps(self):
        assert configure_logging(99, stream=io.StringIO()).level == logging.DEBUG
        assert configure_logging(-99, stream=io.StringIO()).level == logging.ERROR

    def test_idempotent_reconfiguration(self):
        stream = io.StringIO()
        configure_logging(1, stream=io.StringIO())
        logger = configure_logging(1, stream=stream)
        ours = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        logging.getLogger("repro.core.test").info("hello")
        assert "hello" in stream.getvalue()

    def test_records_route_to_given_stream_only_at_level(self):
        stream = io.StringIO()
        configure_logging(0, stream=stream)
        child = logging.getLogger("repro.core.test")
        child.info("quiet info")
        child.warning("loud warning")
        output = stream.getvalue()
        assert "quiet info" not in output
        assert "loud warning" in output
        assert "WARNING" in output
