"""The shared query-timing helper used by every baseline."""

import numpy as np
import pytest

from repro import obs
from repro.core.query import QueryProfile
from repro.obs import timed_profile
from repro.storage.iostats import IOStats


class TestTimedProfile:
    def test_fills_time_and_path(self):
        profile = QueryProfile()
        with timed_profile(profile, path="serial-scan"):
            profile.series_accessed = 5
        assert profile.path == "serial-scan"
        assert profile.time_total > 0.0

    def test_fills_io_delta(self):
        stats = IOStats()
        stats.record_read(100, sequential=True)  # pre-existing traffic
        profile = QueryProfile()
        with timed_profile(profile, path="pscan", io_stats=stats):
            stats.record_read(4096, sequential=False)
        assert profile.io is not None
        assert profile.io.read_calls == 1
        assert profile.io.bytes_read == 4096

    def test_fills_even_on_exception(self):
        profile = QueryProfile()
        with pytest.raises(RuntimeError):
            with timed_profile(profile, path="dstree-exact"):
                raise RuntimeError("query died")
        assert profile.path == "dstree-exact"
        assert profile.time_total > 0.0

    def test_without_path_keeps_existing(self):
        profile = QueryProfile()
        profile.path = "preset"
        with timed_profile(profile):
            pass
        assert profile.path == "preset"

    def test_emits_span_with_query_attributes(self):
        trace = obs.Trace()
        profile = QueryProfile()
        with obs.use_trace(trace):
            with timed_profile(profile, path="vafile-skipseq", k=3):
                profile.series_accessed = 7
                profile.distance_computations = 9
        span = trace.find("query.vafile-skipseq")[0]
        assert span.attributes["k"] == 3
        assert span.attributes["path"] == "vafile-skipseq"
        assert span.attributes["series_accessed"] == 7
        assert span.attributes["distance_computations"] == 9
        assert span.attributes["seconds"] == profile.time_total


class TestBaselinesUseIt:
    """Every baseline's knn fills path, time, and (on datasets) io."""

    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(7)
        return rng.standard_normal((80, 16)).astype(np.float32)

    @pytest.mark.parametrize(
        "factory, expected_path",
        [
            (
                lambda data: __import__(
                    "repro.baselines.scan", fromlist=["SerialScan"]
                ).SerialScan(data),
                "serial-scan",
            ),
            (
                lambda data: __import__(
                    "repro.baselines.pscan", fromlist=["PScan"]
                ).PScan(data, num_threads=2),
                "pscan",
            ),
            (
                lambda data: __import__(
                    "repro.baselines.dtw_scan", fromlist=["DtwScan"]
                ).DtwScan(data, window=2),
                "dtw-scan",
            ),
        ],
    )
    def test_scan_baselines(self, data, factory, expected_path):
        method = factory(data)
        answer = method.knn(data[3], k=2)
        assert answer.profile.path == expected_path
        assert answer.profile.time_total > 0.0
        assert answer.distances[0] == pytest.approx(0.0, abs=1e-4)

    def test_dataset_backed_baseline_fills_io(self, data, tmp_path):
        from repro.baselines.vafile import VAFileIndex
        from repro.storage.dataset import Dataset

        with Dataset.write(tmp_path / "d.bin", data) as dataset:
            index = VAFileIndex.build(dataset)
            answer = index.knn(data[5], k=1)
        assert answer.profile.path == "vafile-skipseq"
        assert answer.profile.io is not None
        assert answer.profile.io.read_calls >= 1
