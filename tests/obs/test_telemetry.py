"""Windowed instruments, the SLO tracker, and the telemetry hub.

Every test drives the instruments through an injectable fake clock, so
window expiry, rates, and merge identity are exact assertions rather
than sleeps.  The load-bearing property throughout: buckets are keyed
by *absolute* epoch, so any split of the same observations across
instruments merges back to a value-identical summary.
"""

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.telemetry import (
    DEFAULT_NUM_BUCKETS,
    DEFAULT_WINDOW_SECONDS,
    merge_windowed_states,
)


class FakeClock:
    """A settable clock; ``tick`` advances it."""

    def __init__(self, now=1_000_000.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


class TestWindowedCounter:
    def test_total_survives_window_expiry(self, clock):
        counter = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        counter.inc()
        counter.add(4)
        assert counter.total == 5
        assert counter.window_total() == 5
        clock.tick(60.0)  # far past the window
        assert counter.window_total() == 0
        assert counter.total == 5, "lifetime total must never expire"

    def test_window_slides_bucket_by_bucket(self, clock):
        counter = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        for i in range(5):  # one event per 2s bucket
            if i:
                clock.tick(2.0)
            counter.inc()
        assert counter.window_total() == 5
        clock.tick(2.0)  # oldest bucket falls out
        assert counter.window_total() == 4

    def test_rate_uses_covered_span_not_full_window(self, clock):
        counter = obs.WindowedCounter(
            window_seconds=60.0, num_buckets=12, clock=clock
        )
        counter.add(10)
        clock.tick(4.0)
        # 10 events over ~one 5s bucket must not be diluted to 10/60.
        assert counter.rate() > 1.0

    def test_rate_zero_when_empty(self, clock):
        counter = obs.WindowedCounter(clock=clock)
        assert counter.rate() == 0.0
        assert counter.summary()["rate"] == 0.0

    def test_export_merge_roundtrip_is_value_identical(self, clock):
        source = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        for _ in range(3):
            source.add(2)
            clock.tick(3.0)
        target = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        target.merge_state(source.export_state())
        assert target.summary() == source.summary()

    def test_merge_adds_bucket_wise(self, clock):
        a = obs.WindowedCounter(window_seconds=10.0, num_buckets=5, clock=clock)
        b = obs.WindowedCounter(window_seconds=10.0, num_buckets=5, clock=clock)
        reference = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        for i in range(4):
            (a if i % 2 else b).add(i + 1)
            reference.add(i + 1)
            clock.tick(2.0)
        merged = obs.WindowedCounter(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        merge_windowed_states(merged, [a.export_state(), b.export_state()])
        assert merged.summary() == reference.summary()

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            obs.WindowedCounter(window_seconds=0)
        with pytest.raises(ValueError):
            obs.WindowedCounter(num_buckets=0)

    def test_defaults(self):
        counter = obs.WindowedCounter()
        assert counter.window_seconds == DEFAULT_WINDOW_SECONDS
        assert counter.num_buckets == DEFAULT_NUM_BUCKETS


class TestWindowedHistogram:
    def test_percentiles_match_numpy(self, clock):
        hist = obs.WindowedHistogram(clock=clock)
        values = np.random.default_rng(7).normal(size=500)
        for v in values:
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(np.percentile(values, 50))
        assert summary["p95"] == pytest.approx(np.percentile(values, 95))
        assert summary["p99"] == pytest.approx(np.percentile(values, 99))
        assert summary["count"] == 500

    def test_old_observations_expire_from_percentiles(self, clock):
        hist = obs.WindowedHistogram(
            window_seconds=10.0, num_buckets=5, clock=clock
        )
        hist.observe(1000.0)  # an ancient outlier
        clock.tick(30.0)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["max"] == 3.0
        assert summary["count"] == 3
        assert summary["total_count"] == 4, "lifetime count keeps the outlier"

    def test_empty_summary_shape(self, clock):
        summary = obs.WindowedHistogram(clock=clock).summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0
        assert summary["rate"] == 0.0

    def test_merge_is_order_independent(self, clock):
        states = []
        reference = obs.WindowedHistogram(
            window_seconds=20.0, num_buckets=4, clock=clock
        )
        rng = np.random.default_rng(3)
        for chunk in range(3):
            part = obs.WindowedHistogram(
                window_seconds=20.0, num_buckets=4, clock=clock
            )
            for v in rng.normal(size=40):
                part.observe(float(v))
                reference.observe(float(v))
            states.append(part.export_state())
            clock.tick(5.0)
        for ordering in (states, states[::-1], states[1:] + states[:1]):
            merged = obs.WindowedHistogram(
                window_seconds=20.0, num_buckets=4, clock=clock
            )
            merge_windowed_states(merged, ordering)
            assert merged.summary() == reference.summary()

    def test_threads_and_merged_instruments_agree(self, clock):
        """The acceptance property: observations interleaved by threads
        into one instrument, and the same observations split across
        per-thread instruments then merged, summarize identically."""
        values = [float(v) for v in
                  np.random.default_rng(11).normal(size=400)]
        shared = obs.WindowedHistogram(clock=clock)
        quarters = [values[i::4] for i in range(4)]

        def hammer(chunk):
            for v in chunk:
                shared.observe(v)

        threads = [threading.Thread(target=hammer, args=(q,))
                   for q in quarters]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        merged = obs.WindowedHistogram(clock=clock)
        for chunk in quarters:
            private = obs.WindowedHistogram(clock=clock)
            for v in chunk:
                private.observe(v)
            merged.merge_state(private.export_state())
        assert merged.summary() == shared.summary()


class TestSloTracker:
    def _tracker(self, clock, **kw):
        kw.setdefault("latency_threshold", 0.1)
        kw.setdefault("latency_target", 0.9)
        kw.setdefault("coverage_target", 0.99)
        kw.setdefault("window_seconds", 60.0)
        kw.setdefault("num_buckets", 6)
        return obs.SloTracker(clock=clock, **kw)

    def test_all_good_is_healthy(self, clock):
        tracker = self._tracker(clock)
        for _ in range(20):
            tracker.observe(0.05)
        status = tracker.status()
        assert status["healthy"]
        assert status["latency_attainment"] == 1.0
        assert status["latency_burn"] == 0.0
        assert status["coverage_attainment"] == 1.0
        assert status["requests"] == 20

    def test_burn_rate_is_error_over_budget(self, clock):
        tracker = self._tracker(clock)
        # 80% good against a 90% target: 20% errors over a 10% budget.
        for i in range(10):
            tracker.observe(0.05 if i < 8 else 1.0)
        status = tracker.status()
        assert status["latency_attainment"] == pytest.approx(0.8)
        assert status["latency_burn"] == pytest.approx(2.0)
        assert not status["healthy"]

    def test_coverage_and_degraded_tracked(self, clock):
        tracker = self._tracker(clock)
        tracker.observe(0.01, coverage=1.0)
        tracker.observe(0.01, coverage=0.5, degraded=True)
        status = tracker.status()
        assert status["coverage_attainment"] == pytest.approx(0.75)
        assert status["degraded"] == 1
        assert status["coverage_burn"] > 1.0

    def test_empty_window_is_healthy(self, clock):
        status = self._tracker(clock).status()
        assert status["healthy"]
        assert status["requests"] == 0

    def test_export_merge_matches_single_tracker(self, clock):
        reference = self._tracker(clock)
        workers = [self._tracker(clock) for _ in range(3)]
        rng = np.random.default_rng(5)
        for i, latency in enumerate(rng.uniform(0.0, 0.3, size=30)):
            degraded = i % 7 == 0
            coverage = 0.9 if degraded else 1.0
            reference.observe(float(latency), coverage, degraded)
            workers[i % 3].observe(float(latency), coverage, degraded)
        merged = self._tracker(clock)
        for worker in workers:
            merged.merge_state(worker.export_state())
        assert merged.status() == reference.status()


class TestRegistryWindowedAccessors:
    def test_same_name_returns_same_instrument(self):
        registry = obs.MetricsRegistry()
        assert registry.windowed_counter("r") is registry.windowed_counter("r")
        assert (registry.windowed_histogram("h")
                is registry.windowed_histogram("h"))

    def test_summary_carries_windowed_sections(self, clock):
        registry = obs.MetricsRegistry()
        registry.windowed_counter("reqs", clock=clock).add(3)
        registry.windowed_histogram("lat", clock=clock).observe(0.25)
        summary = registry.summary()
        assert summary["windowed_counters"]["reqs"]["total"] == 3
        assert summary["windowed_histograms"]["lat"]["count"] == 1
        registry.reset()
        assert registry.summary()["windowed_counters"] == {}

    def test_export_merge_roundtrips_windowed_unprefixed(self, clock):
        child = obs.MetricsRegistry()
        child.counter("plain").add(2)
        child.windowed_histogram("lat", clock=clock).observe(0.5)
        parent = obs.MetricsRegistry()
        parent.windowed_histogram("lat", clock=clock)  # pre-bind the clock
        parent.merge_state(child.export_state(), prefix="shard.0.")
        summary = parent.summary()
        # Cumulative metrics namespace per shard; windowed ones aggregate
        # fleet-wide, so the name stays unprefixed.
        assert summary["counters"]["shard.0.plain"] == 2
        assert summary["windowed_histograms"]["lat"]["count"] == 1


class TestHubAndHooks:
    def test_module_hooks_are_noops_without_hub(self):
        assert obs.get_hub() is None
        obs.observe_query(0.1)
        obs.observe_search(0.1)
        obs.emit_event("build_phase", phase="noop")
        obs.watch_process("shard.0", 12345)  # nothing raises

    def test_observe_query_populates_instruments_and_slo(self, clock):
        hub = obs.TelemetryHub(clock=clock)
        with obs.use_hub(hub):
            obs.observe_query(0.2, coverage=0.5, degraded=True)
            obs.observe_query(0.01)
            obs.observe_search(0.003)
            obs.emit_event("query_degraded", coverage=0.5)
        assert obs.get_hub() is None, "use_hub must restore the previous hub"
        summary = hub.registry.summary()
        assert summary["windowed_counters"]["query.requests"]["total"] == 2
        assert summary["windowed_counters"]["query.degraded"]["total"] == 1
        assert summary["windowed_histograms"][
            "query.latency_seconds"]["count"] == 2
        assert summary["windowed_counters"]["engine.searches"]["total"] == 1
        assert hub.slo.status()["requests"] == 2
        assert [e.type for e in hub.journal.events()] == ["query_degraded"]

    def test_watch_process_reaches_attached_sampler(self):
        class SpySampler:
            def __init__(self):
                self.watched = []

            def watch(self, label, pid):
                self.watched.append((label, pid))

        hub = obs.TelemetryHub()
        hub.sampler = SpySampler()
        with obs.use_hub(hub):
            obs.watch_process("shard.3", 999)
        assert hub.sampler.watched == [("shard.3", 999)]

    def test_hub_export_merge_state(self, clock):
        child = obs.TelemetryHub(clock=clock)
        child.observe_query(0.1)
        child.journal.emit("build_phase", phase="tree")
        parent = obs.TelemetryHub(clock=clock)
        parent.merge_state(child.export_state(), shard=1)
        summary = parent.registry.summary()
        assert summary["windowed_counters"]["query.requests"]["total"] == 1
        events = parent.journal.events()
        assert events[0].attrs["shard"] == 1
        assert parent.slo.status()["requests"] == 1
