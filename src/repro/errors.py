"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """An on-disk structure is missing, corrupt, or incompatible."""


class ManifestError(StorageError):
    """An index MANIFEST.json is missing a required entry, unparseable,
    or fails its own integrity checksum."""


class ChecksumError(StorageError):
    """An index artifact's bytes do not match the manifest (wrong size or
    CRC32): the file was torn, truncated, or silently corrupted."""


class IndexStateError(ReproError):
    """An operation was attempted in an invalid index lifecycle state.

    For example, querying an index that has not been written to disk yet,
    or inserting into an index that has already been finalized.
    """


class WorkloadError(ReproError):
    """A query workload or dataset could not be generated or loaded."""


class ShardError(ReproError):
    """A shard worker process failed or answered out of protocol.

    The message carries the worker-side traceback (or exit status) so
    failures in build/query worker processes surface in the coordinator
    with their original context.
    """


class ShardTimeoutError(ShardError):
    """A shard attempt exceeded its per-shard timeout, or the whole
    scatter-gather ran past its query deadline."""


class WorkerSupervisionError(ShardError):
    """Worker supervision gave up: the restart budget is exhausted, every
    worker died, or a build made no progress for the stall timeout."""
