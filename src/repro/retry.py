"""Retry policies with deterministic, seeded backoff jitter.

Transient failures — a flaky read, a dead shard worker, a stalled pipe —
are absorbed by bounded retries with exponential backoff.  Naive backoff
synchronizes: N shard workers that fail together retry together, hammer
the same disk together, and fail together again.  The usual fix is
random jitter, but randomness is poison for a reproduction whose tests
assert exact behaviour.  :func:`deterministic_jitter` squares the
circle: the jitter fraction is a pure function of a caller-chosen key
(a path, a shard id), the attempt number, and a seed — different keys
decorrelate, identical runs reproduce bit-for-bit.

:class:`RetryPolicy` packages the knobs the shard engine shares: how
many attempts, how the delay grows, how much jitter to mix in, how long
to wait for one shard, and the whole-query deadline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "deterministic_jitter"]


def deterministic_jitter(key: str, attempt: int, seed: int = 0) -> float:
    """A jitter fraction in ``[0, 1)`` that is a pure function of its inputs.

    Derived from the CRC32 of ``key:attempt:seed`` — stable across
    processes, platforms, and Python hash randomization, so concurrent
    retries with different keys (per shard, per file) desynchronize while
    every rerun of the same scenario sleeps exactly the same schedule.
    """
    token = f"{key}:{attempt}:{seed}".encode()
    return (zlib.crc32(token) & 0xFFFFFFFF) / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential, deterministically jittered backoff.

    ``attempts`` counts *total* tries (1 = no retry).  The delay before
    retry ``i`` (1-based) is ``backoff_seconds * multiplier**(i-1) *
    (1 + jitter_fraction * deterministic_jitter(key, i, seed))``, capped
    at ``max_backoff_seconds``.  ``shard_timeout`` bounds one shard's
    single attempt; ``deadline`` bounds the whole scatter-gather
    operation.  ``None`` disables the corresponding bound.
    """

    attempts: int = 3
    backoff_seconds: float = 0.05
    multiplier: float = 2.0
    jitter_fraction: float = 0.5
    max_backoff_seconds: float = 2.0
    shard_timeout: Optional[float] = None
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_seconds < 0.0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        for name in ("shard_timeout", "deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before retry ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_seconds * self.multiplier ** (attempt - 1)
        jitter = self.jitter_fraction * deterministic_jitter(
            key, attempt, self.seed
        )
        return min(base * (1.0 + jitter), self.max_backoff_seconds)

    def delays(self, key: str = "") -> list[float]:
        """The full backoff schedule: one delay per retry after attempt 1."""
        return [self.delay(i, key) for i in range(1, self.attempts)]
