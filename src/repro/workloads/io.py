"""Workload bundles: persist a dataset with its labeled query sets.

Reproducible experiments need the *exact* queries, not just the seed
that produced them.  A workload bundle is a directory holding the
indexable dataset, one query file per workload label, and a JSON
manifest recording shapes and provenance:

    bundle/
      manifest.json
      dataset.bin
      queries-1pct.bin  queries-2pct.bin ...  queries-ood.bin

``save_workload_bundle`` / ``load_workload_bundle`` round-trip the
structure produced by
:func:`repro.workloads.generators.make_query_workloads`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.storage.dataset import Dataset
from repro.storage.files import PathLike
from repro.workloads.generators import QueryWorkload

MANIFEST_NAME = "manifest.json"
DATASET_NAME = "dataset.bin"
_FORMAT_VERSION = 1


def _query_filename(label: str) -> str:
    safe = label.replace("%", "pct")
    return f"queries-{safe}.bin"


def save_workload_bundle(
    directory: PathLike,
    data: np.ndarray,
    workloads: dict[str, QueryWorkload],
    metadata: dict | None = None,
) -> Path:
    """Materialize a dataset and its query workloads into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    Dataset.write(directory / DATASET_NAME, data).close()

    manifest = {
        "format_version": _FORMAT_VERSION,
        "series_length": int(data.shape[1]),
        "num_series": int(data.shape[0]),
        "workloads": {},
        "metadata": metadata or {},
    }
    for label, workload in workloads.items():
        if workload.queries.shape[1] != data.shape[1]:
            raise WorkloadError(
                f"workload {label!r} queries have length "
                f"{workload.queries.shape[1]}, dataset has {data.shape[1]}"
            )
        filename = _query_filename(label)
        Dataset.write(directory / filename, workload.queries).close()
        manifest["workloads"][label] = {
            "file": filename,
            "count": int(workload.count),
        }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    return directory


def load_workload_bundle(
    directory: PathLike,
) -> tuple[np.ndarray, dict[str, QueryWorkload], dict]:
    """Load a bundle; returns ``(data, workloads, metadata)``."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise WorkloadError(f"no workload manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"corrupt manifest at {manifest_path}") from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported bundle version {manifest.get('format_version')}"
        )

    length = int(manifest["series_length"])
    with Dataset.open(directory / DATASET_NAME, length) as dataset:
        if dataset.num_series != manifest["num_series"]:
            raise WorkloadError(
                f"dataset holds {dataset.num_series} series, manifest says "
                f"{manifest['num_series']}"
            )
        data = dataset.load_all()

    workloads: dict[str, QueryWorkload] = {}
    for label, entry in manifest["workloads"].items():
        with Dataset.open(directory / entry["file"], length) as qfile:
            queries = qfile.load_all()
        if queries.shape[0] != entry["count"]:
            raise WorkloadError(
                f"workload {label!r} holds {queries.shape[0]} queries, "
                f"manifest says {entry['count']}"
            )
        workloads[label] = QueryWorkload(label, queries)
    return data, workloads, manifest.get("metadata", {})
