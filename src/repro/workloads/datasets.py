"""Synthetic analogs of the paper's real datasets (Section 4.1).

The paper evaluates on three real collections we cannot ship:

* **SALD** — 200M neuroscience MRI series of length 128;
* **Seismic** — 100M seismic recordings of length 256;
* **Deep** — 267M deep-network image embeddings of length 96, "notoriously
  hard" for every pruning-based index [2, 21, 26, 36].

What matters for reproducing the paper's *shape* is the hardness ordering
these datasets induce: smooth, strongly autocorrelated series (SALD) are
easy to cluster and prune; bursty heteroscedastic series (Seismic) are
harder; near-isotropic embeddings (Deep) are hardest — distances
concentrate, lower bounds lose discriminating power, and indexes
degenerate toward scans even on easy workloads (Figure 10e).  The
generators below reproduce those distributional properties:

* :func:`sald_like` — random walks smoothed with a moving average, so
  energy concentrates in a few low frequencies and per-segment statistics
  separate series well;
* :func:`seismic_like` — random walks whose step magnitude is modulated
  by random burst envelopes, mimicking quiet traces interrupted by
  events (heteroscedastic: segment σ varies wildly);
* :func:`deep_like` — a mixture of weakly separated Gaussian directions
  on the unit sphere, z-normalized, with i.i.d. coordinate noise
  dominating — the distance-concentration regime of CNN embeddings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.generators import znormalize


def sald_like(count: int, length: int = 128, seed: int = 0) -> np.ndarray:
    """Smooth MRI-like series: moving-average-filtered random walks."""
    rng = np.random.default_rng(seed)
    window = max(length // 16, 2)
    steps = rng.standard_normal((count, length + window))
    walks = np.cumsum(steps, axis=1)
    kernel = np.ones(window) / window
    smooth = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, walks
    )[:, :length]
    return znormalize(smooth)


def seismic_like(count: int, length: int = 256, seed: int = 0) -> np.ndarray:
    """Bursty seismogram-like series: envelope-modulated noise.

    Each series is low-amplitude background noise with 1-3 high-energy
    bursts — quiet traces punctuated by events, so segment standard
    deviations vary strongly across both time and series.  Burst centers
    are drawn from a small set of canonical arrival positions (with
    jitter), the analog of aligned P/S-wave arrival picks in curated
    seismic archives: it is this alignment that lets per-segment
    statistics cluster recordings, as they do on the real dataset.
    """
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal((count, length)) * 0.05
    arrivals = rng.uniform(0.1, 0.9, size=8) * length  # canonical picks
    frequencies = rng.uniform(1.0, 3.0, size=4)  # cycles per envelope width
    t = np.arange(length)
    for i in range(count):
        for _ in range(int(rng.integers(1, 4))):
            center = float(rng.choice(arrivals)) + rng.normal(0, length / 64)
            width = float(rng.integers(max(length // 32, 2), max(length // 8, 4)))
            amplitude = float(rng.uniform(1.0, 6.0))
            envelope = amplitude * np.exp(-0.5 * ((t - center) / width) ** 2)
            # A coherent oscillatory wavelet, not a noise burst: this is
            # what gives segments mean structure EAPCA can separate.
            frequency = float(rng.choice(frequencies))
            phase = float(rng.choice((0.0, np.pi / 2, np.pi, 3 * np.pi / 2)))
            wavelet = np.sin(2 * np.pi * frequency * (t - center) / width + phase)
            noise[i] += envelope * wavelet
    return znormalize(noise)


def deep_like(count: int, length: int = 96, seed: int = 0) -> np.ndarray:
    """Embedding-like vectors: weak cluster structure drowned in noise.

    A few random directions act as class prototypes; every vector is a
    prototype plus dominant i.i.d. noise, z-normalized.  Pairwise
    distances concentrate (the curse of dimensionality), which is what
    makes the real Deep dataset degenerate pruning-based indexes.
    """
    rng = np.random.default_rng(seed)
    num_centers = max(int(np.sqrt(count)), 2)
    centers = rng.standard_normal((num_centers, length))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(0, num_centers, size=count)
    signal = centers[assignment]
    noise = rng.standard_normal((count, length))
    return znormalize(0.6 * signal + 1.0 * noise)


#: name → (generator, paper series length), for harness iteration.
DATASET_ANALOGS: dict[str, tuple[Callable[..., np.ndarray], int]] = {
    "SALD": (sald_like, 128),
    "Seismic": (seismic_like, 256),
    "Deep": (deep_like, 96),
}


def make_analog(
    name: str, count: int, length: int | None = None, seed: int = 0
) -> np.ndarray:
    """Generate ``count`` series of the named dataset analog."""
    if name not in DATASET_ANALOGS:
        raise WorkloadError(
            f"unknown dataset analog {name!r}; choose from "
            f"{sorted(DATASET_ANALOGS)}"
        )
    generator, default_length = DATASET_ANALOGS[name]
    return generator(count, length or default_length, seed=seed)
