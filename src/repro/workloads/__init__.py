"""Datasets and query workloads (Section 4.1).

* :mod:`repro.workloads.generators` — the paper's synthetic data model
  (random walks with N(0,1) steps) and its query workloads of controlled
  difficulty (Gaussian-noise perturbations at σ² = 0.01-0.1, plus
  out-of-dataset queries).
* :mod:`repro.workloads.datasets` — synthetic analogs of the paper's real
  datasets (SALD, Seismic, Deep), built to reproduce their hardness
  ordering for pruning-based indexes.
"""

from repro.workloads.generators import (
    NOISE_WORKLOADS,
    QueryWorkload,
    make_noise_queries,
    make_ood_split,
    make_query_workloads,
    random_walks,
    znormalize,
)
from repro.workloads.datasets import (
    DATASET_ANALOGS,
    deep_like,
    make_analog,
    sald_like,
    seismic_like,
)
from repro.workloads.analysis import WorkloadHardness, workload_hardness
from repro.workloads.io import load_workload_bundle, save_workload_bundle

__all__ = [
    "NOISE_WORKLOADS",
    "QueryWorkload",
    "make_noise_queries",
    "make_ood_split",
    "make_query_workloads",
    "random_walks",
    "znormalize",
    "DATASET_ANALOGS",
    "deep_like",
    "make_analog",
    "sald_like",
    "seismic_like",
    "WorkloadHardness",
    "workload_hardness",
    "load_workload_bundle",
    "save_workload_bundle",
]
