"""Workload hardness analysis.

The paper grades query workloads by difficulty (1% → ood) and datasets
by how badly they degenerate indexes (SALD < Seismic < Deep).  Both
gradings reduce to measurable properties of the distance distribution;
this module computes them so workload claims can be checked
quantitatively instead of asserted:

* **mean 1-NN distance** — how close queries sit to the data; the noise
  parameter of the generator controls it directly;
* **relative contrast** (mean distance / 1-NN distance) — the classic
  hardness measure: pruning power collapses as it approaches 1;
* **expected pruning at k=1** — the fraction of the dataset farther than
  the query's nearest neighbor by more than the typical lower-bound gap,
  a direct proxy for what an index can hope to prune.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.euclidean import batch_squared_euclidean


@dataclass(frozen=True)
class WorkloadHardness:
    """Distance-distribution statistics of one query workload."""

    mean_nn_distance: float
    mean_distance: float
    relative_contrast: float
    #: Fraction of (query, series) pairs at distance > 2x the query's NN
    #: distance — roughly what a perfect lower bound could prune at k=1.
    separable_fraction: float

    @property
    def is_hard(self) -> bool:
        """Low contrast means lower bounds cannot discriminate."""
        return self.relative_contrast < 1.5


def workload_hardness(
    data: np.ndarray, queries: np.ndarray, sample: int = 2000, seed: int = 0
) -> WorkloadHardness:
    """Measure the hardness of ``queries`` against ``data``.

    ``sample`` bounds the number of dataset series examined per query so
    the measurement stays cheap on large collections.
    """
    arr = np.asarray(data, dtype=np.float64)
    rng = np.random.default_rng(seed)
    if arr.shape[0] > sample:
        arr = arr[rng.choice(arr.shape[0], size=sample, replace=False)]

    nn_distances = []
    mean_distances = []
    separable = []
    for query in np.asarray(queries, dtype=np.float64):
        distances = np.sqrt(batch_squared_euclidean(query, arr))
        nn = float(distances.min())
        nn_distances.append(nn)
        mean_distances.append(float(distances.mean()))
        threshold = max(2.0 * nn, 1e-12)
        separable.append(float((distances > threshold).mean()))

    mean_nn = float(np.mean(nn_distances))
    mean_all = float(np.mean(mean_distances))
    contrast = mean_all / mean_nn if mean_nn > 0 else np.inf
    return WorkloadHardness(
        mean_nn_distance=mean_nn,
        mean_distance=mean_all,
        relative_contrast=float(contrast),
        separable_fraction=float(np.mean(separable)),
    )
