"""Synthetic data and query-workload generation (Section 4.1).

**Datasets.** The paper's synthetic datasets ("Synth") are random walks:
a summing process whose steps follow a standard Gaussian — the classic
model of financial time series [23].  Series are z-normalized, the
standing convention of the data-series indexing literature (and the
assumption behind the N(0,1) SAX breakpoints).

**Queries.** Five workloads per dataset, of increasing difficulty:

* ``1%``, ``2%``, ``5%``, ``10%`` — randomly selected dataset series
  perturbed with Gaussian noise of variance σ² = 0.01 … 0.10 (labels are
  σ² as a percentage), following the query-workload methodology of
  Zoumpatianos et al. [69]: the more noise, the farther the query from
  its nearest neighbor and the weaker every summarization's pruning;
* ``ood`` — out-of-dataset queries: series drawn from the same generator
  but *excluded from indexing*, the hardest workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.types import SERIES_DTYPE

#: The paper's noise workloads: label → Gaussian noise variance σ².
NOISE_WORKLOADS: dict[str, float] = {
    "1%": 0.01,
    "2%": 0.02,
    "5%": 0.05,
    "10%": 0.10,
}

#: All workload labels in increasing difficulty, ood last.
ALL_WORKLOADS: tuple[str, ...] = ("1%", "2%", "5%", "10%", "ood")


def znormalize(data: np.ndarray) -> np.ndarray:
    """Per-series z-normalization (constant series map to zeros)."""
    arr = np.asarray(data, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr.reshape(1, -1)
    means = arr.mean(axis=1, keepdims=True)
    stds = arr.std(axis=1, keepdims=True)
    stds[stds == 0.0] = 1.0
    out = ((arr - means) / stds).astype(SERIES_DTYPE)
    return out[0] if squeeze else out


def random_walks(
    count: int, length: int, seed: int = 0, normalize: bool = True
) -> np.ndarray:
    """Random-walk series: cumulative sums of N(0,1) steps."""
    if count < 1 or length < 1:
        raise WorkloadError(f"invalid shape ({count}, {length})")
    rng = np.random.default_rng(seed)
    walks = np.cumsum(rng.standard_normal((count, length)), axis=1)
    return znormalize(walks) if normalize else walks.astype(SERIES_DTYPE)


@dataclass(frozen=True)
class QueryWorkload:
    """A labeled batch of query series."""

    label: str
    queries: np.ndarray

    @property
    def count(self) -> int:
        return self.queries.shape[0]


def make_noise_queries(
    data: np.ndarray,
    count: int,
    noise_variance: float,
    seed: int = 0,
) -> np.ndarray:
    """Queries = random dataset series + N(0, σ²) noise, re-normalized."""
    if noise_variance < 0:
        raise WorkloadError(f"noise variance must be >= 0, got {noise_variance}")
    arr = np.asarray(data)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise WorkloadError("need a non-empty 2-D dataset to perturb")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, arr.shape[0], size=count)
    noise = rng.normal(0.0, np.sqrt(noise_variance), size=(count, arr.shape[1]))
    return znormalize(arr[picks].astype(np.float64) + noise)


def make_ood_split(
    data: np.ndarray, num_queries: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Hold ``num_queries`` random series out of ``data`` as ood queries.

    Returns ``(indexable_data, queries)``; the queries never enter the
    index, matching the paper's out-of-dataset workload.
    """
    arr = np.asarray(data)
    if num_queries >= arr.shape[0]:
        raise WorkloadError(
            f"cannot hold out {num_queries} of {arr.shape[0]} series"
        )
    rng = np.random.default_rng(seed)
    picks = rng.permutation(arr.shape[0])
    held = picks[:num_queries]
    kept = np.sort(picks[num_queries:])
    return arr[kept], arr[held]


def make_query_workloads(
    data: np.ndarray,
    queries_per_workload: int = 100,
    seed: int = 0,
    include_ood: bool = True,
) -> tuple[np.ndarray, dict[str, QueryWorkload]]:
    """The paper's five workloads over one dataset.

    Returns ``(indexable_data, workloads)``.  When ``include_ood`` the
    indexable data is the input minus the held-out ood queries (so noise
    workloads are generated over exactly what gets indexed).
    """
    arr = np.asarray(data)
    workloads: dict[str, QueryWorkload] = {}
    if include_ood:
        indexable, ood = make_ood_split(arr, queries_per_workload, seed=seed)
        workloads["ood"] = QueryWorkload("ood", znormalize(ood))
    else:
        indexable = arr
    for offset, (label, variance) in enumerate(NOISE_WORKLOADS.items(), start=1):
        workloads[label] = QueryWorkload(
            label,
            make_noise_queries(
                indexable, queries_per_workload, variance, seed=seed + offset
            ),
        )
    ordered = {
        label: workloads[label]
        for label in ALL_WORKLOADS
        if label in workloads
    }
    return indexable, ordered
