"""iSAX: indexable SAX words with per-segment cardinalities.

An iSAX word stores, for each segment, a symbol together with the number of
bits used to express it (its *cardinality*).  A word at lower cardinality
covers a contiguous region of the full-resolution symbol space, which is
what makes iSAX indexable: a node's word is the prefix of the words of
every series below it, and refining one segment by one bit splits a node in
two (Shieh & Keogh, 2008).

Hercules materializes full-resolution (8-bit) symbols in its LSDFile; the
variable-cardinality machinery here is used by the ParIS+ baseline's index
tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE


@dataclass(frozen=True)
class IsaxWord:
    """An iSAX word: per-segment symbols plus per-segment bit counts.

    ``symbols[i]`` holds the value of segment ``i`` expressed in
    ``bits[i]`` bits, i.e. the *top* ``bits[i]`` bits of the full-resolution
    8-bit symbol.  Words are immutable and hashable so they can key the
    ParIS+ node table.
    """

    symbols: tuple[int, ...]
    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.symbols) != len(self.bits):
            raise ValueError("symbols and bits must have equal length")
        for sym, b in zip(self.symbols, self.bits):
            if not 0 <= b <= 8:
                raise ValueError(f"bit count {b} outside [0, 8]")
            if not 0 <= sym < (1 << b):
                raise ValueError(f"symbol {sym} does not fit in {b} bits")

    @property
    def segments(self) -> int:
        return len(self.symbols)

    def contains(self, full_symbols: np.ndarray) -> np.ndarray:
        """Whether full-resolution words fall in this word's region.

        ``full_symbols`` is ``(count, segments)`` (or 1-D) of 8-bit symbols;
        returns a boolean vector (or scalar for 1-D input).
        """
        sym = np.asarray(full_symbols, dtype=np.int64)
        squeeze = sym.ndim == 1
        if squeeze:
            sym = sym.reshape(1, -1)
        ok = np.ones(sym.shape[0], dtype=bool)
        for i, (value, b) in enumerate(zip(self.symbols, self.bits)):
            if b == 0:
                continue
            ok &= (sym[:, i] >> (8 - b)) == value
        return bool(ok[0]) if squeeze else ok

    def refine(self, segment: int) -> tuple["IsaxWord", "IsaxWord"]:
        """Split this word by adding one bit to ``segment``.

        Returns the (low, high) children words — the iSAX node split.
        """
        b = self.bits[segment]
        if b >= 8:
            raise ValueError(f"segment {segment} already at maximum cardinality")
        base = self.symbols[segment] << 1
        low_syms = self.symbols[:segment] + (base,) + self.symbols[segment + 1 :]
        high_syms = self.symbols[:segment] + (base + 1,) + self.symbols[segment + 1 :]
        new_bits = self.bits[:segment] + (b + 1,) + self.bits[segment + 1 :]
        return IsaxWord(low_syms, new_bits), IsaxWord(high_syms, new_bits)

    def child_for(self, full_symbols: np.ndarray, segment: int) -> "IsaxWord":
        """The refined child (on ``segment``) containing ``full_symbols``."""
        low, high = self.refine(segment)
        if low.contains(np.asarray(full_symbols)):
            return low
        return high

    def region_bounds(self, space: SaxSpace) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment (lower, upper) breakpoint bounds of this word.

        A segment expressed with ``b`` bits at full alphabet ``A`` covers
        full-resolution symbols ``[v * A/2^b, (v+1) * A/2^b)``, whose value
        region is bounded by the corresponding extended breakpoints.
        """
        full = space.alphabet_size
        lower = np.empty(self.segments, dtype=DISTANCE_DTYPE)
        upper = np.empty(self.segments, dtype=DISTANCE_DTYPE)
        edges = np.concatenate(([-np.inf], space.breakpoints, [np.inf]))
        for i, (value, b) in enumerate(zip(self.symbols, self.bits)):
            width = full >> b if b else full
            lower[i] = edges[value * width]
            upper[i] = edges[(value + 1) * width]
        return lower, upper

    def mindist(
        self, query_paa: np.ndarray, space: SaxSpace, series_length: int
    ) -> float:
        """LB_SAX between a query's PAA and this (possibly coarse) word."""
        q = np.asarray(query_paa, dtype=DISTANCE_DTYPE)
        lower, upper = self.region_bounds(space)
        gap = np.maximum(np.maximum(lower - q, q - upper), 0.0)
        scale = series_length / self.segments
        return float(np.sqrt(scale * np.dot(gap, gap)))

    def __str__(self) -> str:
        parts = [f"{s}:{b}" for s, b in zip(self.symbols, self.bits)]
        return "<" + " ".join(parts) + ">"


def isax_from_symbols(full_symbols: np.ndarray, bits: int) -> IsaxWord:
    """Build an iSAX word from full-resolution symbols at uniform ``bits``."""
    sym = np.asarray(full_symbols, dtype=np.int64)
    if sym.ndim != 1:
        raise ValueError("expected a 1-D symbol vector")
    if bits == 0:
        values = tuple(0 for _ in sym)
    else:
        values = tuple(int(v) >> (8 - bits) for v in sym)
    return IsaxWord(values, tuple(bits for _ in sym))
