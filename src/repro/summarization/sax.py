"""SAX: Symbolic Aggregate approXimation.

SAX (Lin et al., 2003) discretizes PAA values into an alphabet whose
breakpoints are the quantiles of the standard normal distribution, so that
symbols are equiprobable for z-normalized series.  Following the paper we
default to 16 segments and an alphabet of 256 symbols, i.e. 8 bits per
segment at the maximum cardinality.

The module is self-contained: the inverse normal CDF is computed with
Acklam's rational approximation so the core library depends only on NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import DISTANCE_DTYPE, SYMBOL_DTYPE

#: Default number of SAX segments (paper Section 2, following [21]).
DEFAULT_SEGMENTS = 16

#: Default alphabet size (paper Section 2, following [58]).
DEFAULT_ALPHABET = 256

# Coefficients of Acklam's inverse normal CDF approximation (relative error
# below 1.15e-9 over the full domain), used so that scipy is not a runtime
# dependency of the core library.
_ACKLAM_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_ACKLAM_LOW = 0.02425


def inverse_normal_cdf(p: np.ndarray) -> np.ndarray:
    """Inverse CDF of the standard normal distribution (Acklam, 2003).

    Vectorized over ``p``; accepts probabilities strictly inside (0, 1).
    """
    p = np.asarray(p, dtype=DISTANCE_DTYPE)
    if np.any((p <= 0.0) | (p >= 1.0)):
        raise ValueError("probabilities must lie strictly inside (0, 1)")
    out = np.empty_like(p)

    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D

    lower = p < _ACKLAM_LOW
    upper = p > 1.0 - _ACKLAM_LOW
    central = ~(lower | upper)

    if np.any(central):
        q = p[central] - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        out[central] = num * q / den

    if np.any(lower):
        q = np.sqrt(-2.0 * np.log(p[lower]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[lower] = num / den

    if np.any(upper):
        q = np.sqrt(-2.0 * np.log(1.0 - p[upper]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[upper] = -num / den

    return out


def sax_breakpoints(alphabet_size: int) -> np.ndarray:
    """Return the ``alphabet_size - 1`` N(0,1) quantile breakpoints.

    Symbol ``s`` covers the interval ``[breakpoints[s-1], breakpoints[s])``
    with the conventions ``breakpoints[-1] = -inf`` and
    ``breakpoints[alphabet_size-1] = +inf``.
    """
    if alphabet_size < 2:
        raise ValueError(f"alphabet size must be at least 2, got {alphabet_size}")
    if alphabet_size > 256:
        raise ValueError(
            f"alphabet size {alphabet_size} exceeds the uint8 symbol range"
        )
    probs = np.arange(1, alphabet_size, dtype=DISTANCE_DTYPE) / alphabet_size
    return inverse_normal_cdf(probs)


@dataclass(frozen=True)
class SaxSpace:
    """A SAX symbol space: segment count, alphabet, and breakpoint tables.

    Instances are cheap value objects; the derived tables are computed once
    at construction.  ``symbolize`` maps PAA matrices to symbol matrices and
    ``mindist`` computes the lower-bounding distance of Algorithm 13
    (LB_SAX) between a query's PAA and many SAX words at once.
    """

    segments: int = DEFAULT_SEGMENTS
    alphabet_size: int = DEFAULT_ALPHABET
    breakpoints: np.ndarray = field(init=False, repr=False, compare=False)
    #: breakpoints extended with -inf / +inf sentinels for interval lookup.
    _edges: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.segments <= 0:
            raise ValueError(f"segments must be positive, got {self.segments}")
        bps = sax_breakpoints(self.alphabet_size)
        edges = np.concatenate(([-np.inf], bps, [np.inf]))
        object.__setattr__(self, "breakpoints", bps)
        object.__setattr__(self, "_edges", edges)

    @property
    def bits_per_symbol(self) -> int:
        """Number of bits needed to store one symbol at full cardinality."""
        return int(np.ceil(np.log2(self.alphabet_size)))

    def symbolize(self, paa_values: np.ndarray) -> np.ndarray:
        """Map PAA values to SAX symbols in ``[0, alphabet_size)``.

        Accepts a 1-D PAA vector or a 2-D batch; the output mirrors the
        input shape with dtype ``uint8``.
        """
        values = np.asarray(paa_values, dtype=DISTANCE_DTYPE)
        symbols = np.searchsorted(self.breakpoints, values, side="right")
        return symbols.astype(SYMBOL_DTYPE)

    def symbol_intervals(self, symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the (lower, upper) breakpoint interval of each symbol."""
        sym = np.asarray(symbols, dtype=np.int64)
        return self._edges[sym], self._edges[sym + 1]

    def mindist(
        self,
        query_paa: np.ndarray,
        symbols: np.ndarray,
        series_length: int,
    ) -> np.ndarray:
        """LB_SAX: lower bound of the Euclidean distance from SAX words.

        Parameters
        ----------
        query_paa:
            PAA of the query, shape ``(segments,)``.
        symbols:
            SAX words, shape ``(count, segments)`` (or 1-D for one word).
        series_length:
            Original series length ``n``; the bound is scaled by
            ``sqrt(n / segments)`` per the MINDIST definition.

        Returns
        -------
        numpy.ndarray
            Lower-bound distances, shape ``(count,)``.
        """
        q = np.asarray(query_paa, dtype=DISTANCE_DTYPE)
        if q.shape != (self.segments,):
            raise ValueError(
                f"query PAA must have shape ({self.segments},), got {q.shape}"
            )
        sym = np.asarray(symbols)
        squeeze = sym.ndim == 1
        if squeeze:
            sym = sym.reshape(1, -1)
        lower, upper = self.symbol_intervals(sym)
        # Distance from the query PAA value to the symbol's interval; zero
        # when the value falls inside.  -inf/+inf edges make the boundary
        # symbols one-sided automatically.
        below = lower - q  # positive when q is below the interval
        above = q - upper  # positive when q is above the interval
        gap = np.maximum(below, above)
        np.maximum(gap, 0.0, out=gap)
        dist_sq = np.einsum("ij,ij->i", gap, gap)
        scale = series_length / self.segments
        out = np.sqrt(scale * dist_sq)
        return out[0] if squeeze else out
