"""EAPCA: Extended Adaptive Piecewise Constant Approximation.

EAPCA (Wang et al., 2013 — the DSTree summarization; Figure 1d of the
paper) represents a series over a *variable-length* segmentation with the
mean and standard deviation of each segment.  Unlike PAA, the segmentation
is a property of the index node, not of the series: all series stored under
a node share that node's segmentation.

This module provides the segmentation value type and vectorized per-segment
statistics, including a cumulative-sum sketch that lets a query's (μ, σ)
pair be derived for *any* segmentation in O(m) after one O(n) pass — the
trick that keeps LB_EAPCA evaluations cheap while descending a tree whose
nodes all carry different segmentations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.types import DISTANCE_DTYPE


class Segmentation:
    """An ordered list of segment right endpoints over series of length n.

    Matches the paper's definition (Section 3.2): ``SG = {r_1, ..., r_m}``
    with ``1 <= r_1 < ... < r_m = n`` and ``r_0 = 0``.  Endpoints are
    exclusive Python-slice ends, so segment ``i`` is ``series[r_{i-1}:r_i]``.
    Instances are immutable and hashable (they key the query sketch cache).
    """

    __slots__ = ("_ends", "_hash")

    def __init__(self, ends: Iterable[int]):
        ends_tuple = tuple(int(e) for e in ends)
        if not ends_tuple:
            raise ValueError("a segmentation needs at least one segment")
        prev = 0
        for e in ends_tuple:
            if e <= prev:
                raise ValueError(f"segment ends must be strictly increasing, got {ends_tuple}")
            prev = e
        self._ends = ends_tuple
        self._hash = hash(ends_tuple)

    @classmethod
    def uniform(cls, length: int, segments: int) -> "Segmentation":
        """Equi-length segmentation (lengths differ by at most one point)."""
        from repro.summarization.paa import paa_segment_bounds

        bounds = paa_segment_bounds(length, segments)
        return cls(bounds[1:])

    @property
    def ends(self) -> tuple[int, ...]:
        return self._ends

    @property
    def starts(self) -> tuple[int, ...]:
        return (0,) + self._ends[:-1]

    @property
    def length(self) -> int:
        """Length ``n`` of the series this segmentation covers."""
        return self._ends[-1]

    @property
    def num_segments(self) -> int:
        return len(self._ends)

    @property
    def lengths(self) -> np.ndarray:
        """Segment lengths as a float64 vector (used as ℓ_i weights)."""
        ends = np.asarray(self._ends, dtype=np.int64)
        starts = np.asarray(self.starts, dtype=np.int64)
        return (ends - starts).astype(DISTANCE_DTYPE)

    def segment_range(self, index: int) -> tuple[int, int]:
        """The (start, end) point range of segment ``index``."""
        return self.starts[index], self._ends[index]

    def split_vertically(self, index: int) -> "Segmentation":
        """Return a new segmentation with segment ``index`` halved.

        The V-split of Section 3.2: the chosen segment is divided into two
        sub-segments at its midpoint, so children have ``m + 1`` segments.
        Raises ``ValueError`` if the segment has fewer than two points.
        """
        start, end = self.segment_range(index)
        if end - start < 2:
            raise ValueError(
                f"segment {index} spans [{start}, {end}) and cannot be split"
            )
        mid = (start + end) // 2
        new_ends = self._ends[:index] + (mid,) + self._ends[index:]
        return Segmentation(new_ends)

    def __len__(self) -> int:
        return len(self._ends)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Segmentation) and self._ends == other._ends

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Segmentation({list(self._ends)})"


def segment_stats(
    data: np.ndarray, segmentation: Segmentation
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment mean and population standard deviation of each series.

    Parameters
    ----------
    data:
        2-D batch of series, shape ``(count, n)``.
    segmentation:
        Segmentation with ``segmentation.length == n``.

    Returns
    -------
    (means, stds):
        Two float64 arrays of shape ``(count, m)``.
    """
    arr = np.asarray(data, dtype=DISTANCE_DTYPE)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got ndim={arr.ndim}")
    if arr.shape[1] != segmentation.length:
        raise ValueError(
            f"series length {arr.shape[1]} does not match segmentation "
            f"length {segmentation.length}"
        )
    ends = np.asarray(segmentation.ends, dtype=np.int64)
    starts = np.asarray(segmentation.starts, dtype=np.int64)
    lengths = (ends - starts).astype(DISTANCE_DTYPE)

    cumsum = np.zeros((arr.shape[0], arr.shape[1] + 1), dtype=DISTANCE_DTYPE)
    cumsum[:, 1:] = arr
    cumsq = np.zeros_like(cumsum)
    np.square(cumsum[:, 1:], out=cumsq[:, 1:])
    np.cumsum(cumsq[:, 1:], axis=1, out=cumsq[:, 1:])
    np.cumsum(cumsum[:, 1:], axis=1, out=cumsum[:, 1:])

    sums = cumsum[:, ends] - cumsum[:, starts]
    sq_sums = cumsq[:, ends] - cumsq[:, starts]
    means = sums / lengths
    variances = sq_sums / lengths - means * means
    np.maximum(variances, 0.0, out=variances)  # guard float round-off
    stds = np.sqrt(variances)
    return means, stds


class SeriesSketch:
    """Cumulative-sum sketch of one series for O(m) segment statistics.

    Descending the Hercules/DSTree tree evaluates LB_EAPCA against nodes
    with many *different* segmentations.  The sketch pays one O(n) pass up
    front and then answers ``stats(segmentation)`` in O(m), with a memo per
    segmentation so repeated nodes (H-split children share their parent's
    segmentation) are free.
    """

    __slots__ = ("series", "_cumsum", "_cumsq", "_memo")

    def __init__(self, series: np.ndarray):
        arr = np.asarray(series, dtype=DISTANCE_DTYPE)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D series, got ndim={arr.ndim}")
        self.series = arr
        # In-place construction: the squares are written straight into the
        # cumsq buffer and both running sums accumulate in place, so the
        # only allocations are the two sketch vectors themselves.
        self._cumsum = np.zeros(arr.shape[0] + 1, dtype=DISTANCE_DTYPE)
        self._cumsum[1:] = arr
        self._cumsq = np.zeros_like(self._cumsum)
        np.square(self._cumsum[1:], out=self._cumsq[1:])
        np.cumsum(self._cumsq[1:], out=self._cumsq[1:])
        np.cumsum(self._cumsum[1:], out=self._cumsum[1:])
        self._memo: dict[Segmentation, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def length(self) -> int:
        return self.series.shape[0]

    def range_stats(self, start: int, end: int) -> tuple[float, float]:
        """Mean and population std of ``series[start:end]``."""
        if not 0 <= start < end <= self.length:
            raise ValueError(f"invalid range [{start}, {end})")
        count = end - start
        total = self._cumsum[end] - self._cumsum[start]
        total_sq = self._cumsq[end] - self._cumsq[start]
        mean = total / count
        variance = max(total_sq / count - mean * mean, 0.0)
        return float(mean), float(np.sqrt(variance))

    def stats(self, segmentation: Segmentation) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment (means, stds) of this series under ``segmentation``."""
        cached = self._memo.get(segmentation)
        if cached is not None:
            return cached
        if segmentation.length != self.length:
            raise ValueError(
                f"segmentation length {segmentation.length} does not match "
                f"series length {self.length}"
            )
        ends = np.asarray(segmentation.ends, dtype=np.int64)
        starts = np.asarray(segmentation.starts, dtype=np.int64)
        lengths = (ends - starts).astype(DISTANCE_DTYPE)
        sums = self._cumsum[ends] - self._cumsum[starts]
        sq_sums = self._cumsq[ends] - self._cumsq[starts]
        means = sums / lengths
        variances = sq_sums / lengths - means * means
        np.maximum(variances, 0.0, out=variances)
        stds = np.sqrt(variances)
        result = (means, stds)
        self._memo[segmentation] = result
        return result


class BatchSketch:
    """Cumulative-sum sketch of a whole batch of series.

    The batch analogue of :class:`SeriesSketch`, and the workhorse of
    grouped batch insertion (construction routes *groups* of series with
    one vectorized predicate per tree node instead of one Python call per
    series).  Two cumulative sums of shape ``(batch, n + 1)`` are computed
    with two NumPy calls up front; :meth:`stats` and :meth:`range_stats`
    then answer per-segment or per-range (μ, σ) for *any subset of rows*
    via fancy-indexed slice arithmetic.

    All arithmetic is performed in ``DISTANCE_DTYPE`` (float64) in the
    same order as :class:`SeriesSketch`, so the statistics — and therefore
    every routing and synopsis decision made from them — are bit-for-bit
    identical to the per-row reference path.
    """

    __slots__ = ("rows", "_cumsum", "_cumsq")

    def __init__(self, rows: np.ndarray):
        arr = np.asarray(rows)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got ndim={arr.ndim}")
        #: The raw batch (original dtype), for bulk stores into HBuffer.
        self.rows = arr
        self._cumsum = np.zeros(
            (arr.shape[0], arr.shape[1] + 1), dtype=DISTANCE_DTYPE
        )
        self._cumsum[:, 1:] = arr
        self._cumsq = np.zeros_like(self._cumsum)
        np.square(self._cumsum[:, 1:], out=self._cumsq[:, 1:])
        np.cumsum(self._cumsq[:, 1:], axis=1, out=self._cumsq[:, 1:])
        np.cumsum(self._cumsum[:, 1:], axis=1, out=self._cumsum[:, 1:])

    @property
    def count(self) -> int:
        return self.rows.shape[0]

    @property
    def length(self) -> int:
        return self.rows.shape[1]

    def range_stats(
        self, start: int, end: int, rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-series (means, stds) over ``[start, end)``.

        ``rows`` selects a subset of the batch (any int index array);
        ``None`` covers the whole batch with plain slice arithmetic.
        """
        if not 0 <= start < end <= self.length:
            raise ValueError(f"invalid range [{start}, {end})")
        count = end - start
        if rows is None:
            totals = self._cumsum[:, end] - self._cumsum[:, start]
            totals_sq = self._cumsq[:, end] - self._cumsq[:, start]
        else:
            totals = self._cumsum[rows, end] - self._cumsum[rows, start]
            totals_sq = self._cumsq[rows, end] - self._cumsq[rows, start]
        means = totals / count
        variances = totals_sq / count - means * means
        np.maximum(variances, 0.0, out=variances)
        return means, np.sqrt(variances)

    def stats(
        self, segmentation: Segmentation, rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment (means, stds) of the selected rows, shape (k, m)."""
        if segmentation.length != self.length:
            raise ValueError(
                f"segmentation length {segmentation.length} does not match "
                f"series length {self.length}"
            )
        ends = np.asarray(segmentation.ends, dtype=np.int64)
        starts = np.asarray(segmentation.starts, dtype=np.int64)
        lengths = (ends - starts).astype(DISTANCE_DTYPE)
        if rows is None:
            sums = self._cumsum[:, ends] - self._cumsum[:, starts]
            sq_sums = self._cumsq[:, ends] - self._cumsq[:, starts]
        else:
            idx = np.asarray(rows, dtype=np.int64)[:, None]
            sums = self._cumsum[idx, ends] - self._cumsum[idx, starts]
            sq_sums = self._cumsq[idx, ends] - self._cumsq[idx, starts]
        means = sums / lengths
        variances = sq_sums / lengths - means * means
        np.maximum(variances, 0.0, out=variances)
        return means, np.sqrt(variances)
