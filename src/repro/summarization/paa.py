"""Piecewise Aggregate Approximation (PAA).

PAA divides a series into ``w`` equi-length segments and represents each
segment by the mean of its points (Keogh et al., 2001; Figure 1a of the
paper).  When the series length is not a multiple of ``w``, the leading
segments receive one extra point each so segment lengths differ by at most
one — the convention used by the iSAX family.
"""

from __future__ import annotations

import numpy as np

from repro.types import DISTANCE_DTYPE


def paa_segment_bounds(length: int, segments: int) -> np.ndarray:
    """Return the ``segments + 1`` boundary offsets of the PAA segments.

    ``bounds[i]:bounds[i+1]`` slices segment ``i`` out of a series of
    ``length`` points.  Segment lengths differ by at most one point.
    """
    if segments <= 0:
        raise ValueError(f"segments must be positive, got {segments}")
    if length < segments:
        raise ValueError(
            f"series length {length} shorter than segment count {segments}"
        )
    base, extra = divmod(length, segments)
    sizes = np.full(segments, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(segments + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def paa(series: np.ndarray, segments: int) -> np.ndarray:
    """Compute the PAA representation of one series or a batch.

    Parameters
    ----------
    series:
        A 1-D series or a 2-D batch of series (one per row).
    segments:
        Number of equi-length segments ``w``.

    Returns
    -------
    numpy.ndarray
        Float64 array of shape ``(segments,)`` for a 1-D input or
        ``(batch, segments)`` for a 2-D input.
    """
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got ndim={arr.ndim}")
    bounds = paa_segment_bounds(arr.shape[1], segments)
    sizes = np.diff(bounds).astype(DISTANCE_DTYPE)
    cumsum = np.zeros((arr.shape[0], arr.shape[1] + 1), dtype=DISTANCE_DTYPE)
    np.cumsum(arr, axis=1, out=cumsum[:, 1:])
    sums = cumsum[:, bounds[1:]] - cumsum[:, bounds[:-1]]
    means = sums / sizes
    return means[0] if squeeze else means
