"""Orthonormal DFT features for the VA+file baseline.

The VA+file variant evaluated in the paper (following [21]) replaces the
Karhunen–Loève transform with the DFT for efficiency.  We build a real
feature vector from the leading Fourier coefficients under the orthonormal
("ortho") convention, so Parseval's theorem makes Euclidean distance in the
*full* feature space equal to Euclidean distance in the time domain — and
distance over any feature *prefix* a lower bound of the true distance.

Feature layout for a series of length n (rfft bins ``0..n//2``):

``[X_0.re, √2·X_1.re, √2·X_1.im, √2·X_2.re, √2·X_2.im, ...]``

The √2 factor folds each conjugate-symmetric bin pair into one real pair;
the Nyquist bin (even n) contributes a single unscaled real value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import DISTANCE_DTYPE


@dataclass(frozen=True)
class DftBasis:
    """Feature extractor keeping the first ``num_features`` DFT features."""

    series_length: int
    num_features: int

    def __post_init__(self) -> None:
        if self.series_length < 2:
            raise ValueError("series length must be at least 2")
        max_features = self.series_length  # full spectrum has n real dof
        if not 1 <= self.num_features <= max_features:
            raise ValueError(
                f"num_features must be in [1, {max_features}], "
                f"got {self.num_features}"
            )

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Extract features for one series or a batch.

        Returns float64 features of shape ``(num_features,)`` or
        ``(count, num_features)``.
        """
        return dft_features(data, self.num_features)


def dft_features(data: np.ndarray, num_features: int) -> np.ndarray:
    """Leading orthonormal DFT features (see module docstring)."""
    arr = np.asarray(data, dtype=DISTANCE_DTYPE)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got ndim={arr.ndim}")
    n = arr.shape[1]
    spectrum = np.fft.rfft(arr, axis=1, norm="ortho")

    columns: list[np.ndarray] = [spectrum[:, 0].real]
    bin_index = 1
    last_bin = spectrum.shape[1] - 1
    nyquist = n % 2 == 0
    while len(columns) < num_features and bin_index <= last_bin:
        is_nyquist_bin = nyquist and bin_index == last_bin
        scale = 1.0 if is_nyquist_bin else np.sqrt(2.0)
        columns.append(scale * spectrum[:, bin_index].real)
        if len(columns) < num_features and not is_nyquist_bin:
            columns.append(scale * spectrum[:, bin_index].imag)
        bin_index += 1

    features = np.stack(columns[:num_features], axis=1)
    return features[0] if squeeze else features
