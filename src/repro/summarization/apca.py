"""APCA: Adaptive Piecewise Constant Approximation.

APCA (Chakrabarti et al., 2002; Figure 1c of the paper) approximates one
series with *variable-length* constant segments chosen to fit that
series — unlike PAA's fixed grid, and unlike EAPCA's node-level
segmentations, APCA adapts per series.  EAPCA extends APCA's idea with
per-segment standard deviations at the node level; this module completes
the summarization substrate with the per-series technique itself.

Two segmenters are provided:

* :func:`apca_dp` — the optimal segmentation under squared error, via
  dynamic programming over prefix sums (O(m·n²); exact reference);
* :func:`apca_greedy` — bottom-up merging of adjacent segments by
  smallest error increase (O(n log n); the practical choice, and the
  spirit of the original paper's Haar-based construction).

Both return ``(ends, means)``: exclusive segment end offsets and the
mean of each segment.  :func:`apca_reconstruct` expands an approximation
back to a full series and :func:`apca_error` measures its squared error.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.types import DISTANCE_DTYPE


def _prefix_sums(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got ndim={arr.ndim}")
    csum = np.zeros(arr.shape[0] + 1, dtype=DISTANCE_DTYPE)
    np.cumsum(arr, out=csum[1:])
    csq = np.zeros_like(csum)
    np.cumsum(arr * arr, out=csq[1:])
    return csum, csq


def _segment_sse(csum: np.ndarray, csq: np.ndarray, start: int, end: int) -> float:
    """Squared error of representing ``series[start:end]`` by its mean."""
    count = end - start
    total = csum[end] - csum[start]
    total_sq = csq[end] - csq[start]
    return float(max(total_sq - total * total / count, 0.0))


def apca_dp(series: np.ndarray, segments: int) -> tuple[np.ndarray, np.ndarray]:
    """Optimal APCA under squared error (dynamic programming)."""
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    n = arr.shape[0]
    if not 1 <= segments <= n:
        raise ValueError(f"segments must be in [1, {n}], got {segments}")
    csum, csq = _prefix_sums(arr)

    # cost[j] over the DP layers; parent pointers to recover the cuts.
    previous = np.array(
        [_segment_sse(csum, csq, 0, j) for j in range(1, n + 1)],
        dtype=DISTANCE_DTYPE,
    )
    cuts = np.zeros((segments, n), dtype=np.int64)
    for m in range(1, segments):
        current = np.full(n, np.inf, dtype=DISTANCE_DTYPE)
        for j in range(m, n):  # at least m+1 points for m+1 segments
            best = np.inf
            best_i = m - 1
            for i in range(m - 1, j):
                value = previous[i] + _segment_sse(csum, csq, i + 1, j + 1)
                if value < best:
                    best = value
                    best_i = i
            current[j] = best
            cuts[m, j] = best_i
        previous = current

    ends = [n]
    j = n - 1
    for m in range(segments - 1, 0, -1):
        i = int(cuts[m, j])
        ends.append(i + 1)
        j = i
    ends.reverse()
    ends_arr = np.asarray(ends, dtype=np.int64)
    return ends_arr, _means_for(arr, ends_arr)


def apca_greedy(series: np.ndarray, segments: int) -> tuple[np.ndarray, np.ndarray]:
    """Bottom-up APCA: merge the adjacent pair with least error increase.

    Uses a lazy heap over candidate merges; stale entries are skipped by
    version stamping.  Near-optimal in practice and O(n log n).
    """
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    n = arr.shape[0]
    if not 1 <= segments <= n:
        raise ValueError(f"segments must be in [1, {n}], got {segments}")
    csum, csq = _prefix_sums(arr)

    starts = list(range(n))
    ends = [i + 1 for i in range(n)]
    left = [i - 1 for i in range(n)]
    right = [i + 1 if i + 1 < n else -1 for i in range(n)]
    alive = [True] * n
    version = [0] * n
    count = n

    def merge_cost(i: int) -> float:
        j = right[i]
        merged = _segment_sse(csum, csq, starts[i], ends[j])
        separate = _segment_sse(csum, csq, starts[i], ends[i]) + _segment_sse(
            csum, csq, starts[j], ends[j]
        )
        return merged - separate

    heap: list[tuple[float, int, int]] = []
    for i in range(n - 1):
        heapq.heappush(heap, (merge_cost(i), i, version[i]))

    while count > segments and heap:
        cost, i, stamp = heapq.heappop(heap)
        if not alive[i] or stamp != version[i] or right[i] == -1:
            continue
        j = right[i]
        # Absorb j into i.
        ends[i] = ends[j]
        alive[j] = False
        right[i] = right[j]
        if right[i] != -1:
            left[right[i]] = i
        count -= 1
        version[i] += 1
        if right[i] != -1:
            heapq.heappush(heap, (merge_cost(i), i, version[i]))
        if left[i] != -1:
            k = left[i]
            version[k] += 1
            heapq.heappush(heap, (merge_cost(k), k, version[k]))

    segment_ends = sorted(ends[i] for i in range(n) if alive[i])
    ends_arr = np.asarray(segment_ends, dtype=np.int64)
    return ends_arr, _means_for(arr, ends_arr)


def apca(
    series: np.ndarray, segments: int, method: str = "greedy"
) -> tuple[np.ndarray, np.ndarray]:
    """APCA approximation: dispatches to the greedy or DP segmenter."""
    if method == "greedy":
        return apca_greedy(series, segments)
    if method == "dp":
        return apca_dp(series, segments)
    raise ValueError(f"unknown APCA method {method!r}; use 'greedy' or 'dp'")


def _means_for(series: np.ndarray, ends: np.ndarray) -> np.ndarray:
    starts = np.concatenate(([0], ends[:-1]))
    return np.array(
        [series[s:e].mean() for s, e in zip(starts, ends)],
        dtype=DISTANCE_DTYPE,
    )


def apca_reconstruct(
    ends: np.ndarray, means: np.ndarray, length: int | None = None
) -> np.ndarray:
    """Expand an APCA approximation back into a full series."""
    ends = np.asarray(ends, dtype=np.int64)
    if length is None:
        length = int(ends[-1])
    out = np.empty(length, dtype=DISTANCE_DTYPE)
    start = 0
    for end, mean in zip(ends, means):
        out[start:end] = mean
        start = end
    return out


def apca_error(series: np.ndarray, ends: np.ndarray, means: np.ndarray) -> float:
    """Squared reconstruction error of an APCA approximation."""
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    diff = arr - apca_reconstruct(ends, means, arr.shape[0])
    return float(np.dot(diff, diff))
