"""Data-series summarization techniques (Figure 1 of the paper).

* :mod:`repro.summarization.paa` — Piecewise Aggregate Approximation.
* :mod:`repro.summarization.sax` — SAX discretization of PAA values.
* :mod:`repro.summarization.isax` — indexable SAX words with per-segment
  cardinalities (used by the ParIS+ baseline and Hercules' LSDFile).
* :mod:`repro.summarization.eapca` — Extended APCA: per-segment mean and
  standard deviation over arbitrary segmentations (used by DSTree and the
  Hercules tree).
* :mod:`repro.summarization.dft` — orthonormal DFT features (used by the
  VA+file baseline).
"""

from repro.summarization.paa import paa, paa_segment_bounds
from repro.summarization.sax import (
    SaxSpace,
    inverse_normal_cdf,
    sax_breakpoints,
)
from repro.summarization.isax import IsaxWord, isax_from_symbols
from repro.summarization.eapca import (
    Segmentation,
    SeriesSketch,
    segment_stats,
)
from repro.summarization.apca import (
    apca,
    apca_dp,
    apca_error,
    apca_greedy,
    apca_reconstruct,
)
from repro.summarization.dft import dft_features, DftBasis

__all__ = [
    "paa",
    "paa_segment_bounds",
    "SaxSpace",
    "inverse_normal_cdf",
    "sax_breakpoints",
    "IsaxWord",
    "isax_from_symbols",
    "Segmentation",
    "SeriesSketch",
    "segment_stats",
    "apca",
    "apca_dp",
    "apca_error",
    "apca_greedy",
    "apca_reconstruct",
    "dft_features",
    "DftBasis",
]
