"""Counted binary files and fixed-record series files.

:class:`BinaryFile` is a byte-level file handle whose reads and writes are
recorded in an :class:`~repro.storage.iostats.IOStats`.  Reads that resume
exactly where the previous read on the same handle ended are counted as
sequential; anything else is a random seek.

:class:`SeriesFile` layers fixed-size float32 records on top — the format
of the paper's raw-data files (a headerless concatenation of series, as in
the original Hercules/DSTree tooling).  LRDFile, the spill file, and the
dataset input file are all SeriesFiles.  :class:`SymbolFile` is the same
idea for LSDFile's fixed-width uint8 iSAX words.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import StorageError
from repro.retry import deterministic_jitter
from repro.storage import faults
from repro.storage.cache import LeafCache
from repro.storage.iostats import IOStats
from repro.types import SERIES_DTYPE, SYMBOL_DTYPE

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

#: Bounded retry of transient read errors: attempts and base backoff.
#: Exponential: 2ms, 4ms, 8ms — enough to absorb a flaky NFS/EIO blip
#: without turning a genuinely dead disk into a hang.  Each delay is
#: stretched by up to +50% of deterministic per-path jitter so the
#: retries of concurrent shards (which hit distinct files) fan out
#: instead of synchronizing — reproducibly, per (path, attempt).
READ_RETRIES = 4
_RETRY_BACKOFF_SECONDS = 0.002
_RETRY_JITTER_FRACTION = 0.5


def _retry_delay(path, attempt: int) -> float:
    """The jittered backoff before read retry ``attempt`` (0-based)."""
    jitter = deterministic_jitter(str(path), attempt)
    return _RETRY_BACKOFF_SECONDS * (2 ** attempt) * (
        1.0 + _RETRY_JITTER_FRACTION * jitter
    )


class BinaryFile:
    """A byte-addressed file with I/O accounting.

    The handle is opened lazily in ``r+b`` (created when missing unless
    ``read_only``) and is safe for concurrent use: a lock serializes the
    seek+read/write pairs, which also keeps the sequential/random
    classification coherent.
    """

    def __init__(
        self,
        path: PathLike,
        stats: Optional[IOStats] = None,
        read_only: bool = False,
        injector: Optional[faults.FaultInjector] = None,
    ) -> None:
        self.path = Path(path)
        self.stats = stats if stats is not None else IOStats()
        self.read_only = read_only
        self._injector = injector
        self._lock = threading.Lock()
        self._next_offset = 0  # where a sequential read would continue
        if read_only:
            if not self.path.exists():
                raise StorageError(f"file not found: {self.path}")
            self._handle = open(self.path, "rb")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            mode = "r+b" if self.path.exists() else "w+b"
            self._handle = open(self.path, mode)
        # Tracked explicitly: appends through the buffered handle are not
        # visible to fstat until flushed.
        self._size = os.fstat(self._handle.fileno()).st_size

    @property
    def size(self) -> int:
        return self._size

    def _active_injector(self) -> Optional[faults.FaultInjector]:
        return self._injector if self._injector is not None else faults.active_injector()

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``offset``, recording the access.

        Transient :class:`OSError`s (flaky NFS, an injected
        :class:`~repro.storage.faults.TransientFault`) are retried up to
        :data:`READ_RETRIES` times with exponential backoff; crash faults
        and persistent errors propagate.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError(f"invalid read range ({offset}, {nbytes})")
        for attempt in range(READ_RETRIES):
            injector = self._active_injector()
            try:
                if injector is not None:
                    injector.on_read(self.path)
                with self._lock:
                    sequential = offset == self._next_offset
                    self._handle.seek(offset)
                    data = self._handle.read(nbytes)
                    self._next_offset = offset + len(data)
                break
            except faults.CrashFault:
                raise
            except OSError as exc:
                if attempt == READ_RETRIES - 1:
                    raise
                delay = _retry_delay(self.path, attempt)
                logger.warning(
                    "transient read error on %s (attempt %d/%d), retrying "
                    "in %.0f ms: %s",
                    self.path, attempt + 1, READ_RETRIES, delay * 1e3, exc,
                )
                time.sleep(delay)
        if len(data) != nbytes:
            raise StorageError(
                f"short read from {self.path}: wanted {nbytes} bytes at "
                f"{offset}, got {len(data)}"
            )
        self.stats.record_read(nbytes, sequential)
        return data

    def append(self, data: bytes) -> int:
        """Append ``data``, returning the offset it was written at."""
        self._check_writable()
        injector = self._active_injector()
        fault: Optional[BaseException] = None
        if injector is not None:
            data, fault = injector.intercept_write(self.path, data)
        with self._lock:
            self._handle.seek(0, os.SEEK_END)
            offset = self._handle.tell()
            self._handle.write(data)
            self._size = offset + len(data)
            # The file cursor no longer matches any read position, so the
            # next read must be classified as a seek, not a continuation.
            self._next_offset = -1
        self.stats.record_write(len(data))
        if fault is not None:
            # A torn write persists its prefix — flush it through the
            # buffered handle so the damage is visible on disk, as after
            # a real mid-write crash.
            self._handle.flush()
            raise fault
        return offset

    def write_at(self, offset: int, data: bytes) -> None:
        """Write ``data`` at an absolute offset (used to patch headers)."""
        self._check_writable()
        injector = self._active_injector()
        fault: Optional[BaseException] = None
        if injector is not None:
            data, fault = injector.intercept_write(self.path, data)
        with self._lock:
            self._handle.seek(offset)
            self._handle.write(data)
            self._size = max(self._size, offset + len(data))
            self._next_offset = -1
        self.stats.record_write(len(data))
        if fault is not None:
            self._handle.flush()
            raise fault

    def flush(self) -> None:
        injector = self._active_injector()
        if injector is not None:
            injector.on_flush(self.path)
        self._handle.flush()

    def sync(self) -> None:
        """Flush and fsync: the contents are durable when this returns."""
        self.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def _check_writable(self) -> None:
        if self.read_only:
            raise StorageError(f"{self.path} is read-only")

    def __enter__(self) -> "BinaryFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SeriesFile:
    """Fixed-record file of float32 data series.

    Records are addressed by *position* (series index), matching the
    paper's FilePosition vocabulary: a leaf's raw data is
    ``read_range(first_position, count)``.
    """

    def __init__(
        self,
        path: PathLike,
        series_length: int,
        stats: Optional[IOStats] = None,
        read_only: bool = False,
        cache: Optional[LeafCache] = None,
    ) -> None:
        if series_length <= 0:
            raise ValueError(f"series length must be positive, got {series_length}")
        self.series_length = series_length
        self.record_size = series_length * SERIES_DTYPE.itemsize
        self.cache = cache
        self._file = BinaryFile(path, stats=stats, read_only=read_only)
        if self._file.size % self.record_size != 0:
            raise StorageError(
                f"{self._file.path} size {self._file.size} is not a multiple "
                f"of the record size {self.record_size}"
            )

    @property
    def path(self) -> Path:
        return self._file.path

    @property
    def stats(self) -> IOStats:
        return self._file.stats

    @property
    def num_series(self) -> int:
        return self._file.size // self.record_size

    def read_range(self, position: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive series starting at ``position``.

        With a :class:`~repro.storage.cache.LeafCache` attached, repeat
        reads of the same block are served from memory — no file I/O is
        performed (and none is recorded in :attr:`stats`), which is what
        warm-workload IOStats assertions rely on.
        """
        if position < 0 or count < 0 or position + count > self.num_series:
            raise StorageError(
                f"read_range({position}, {count}) outside file with "
                f"{self.num_series} series"
            )
        def load() -> np.ndarray:
            raw = self._file.read(
                position * self.record_size, count * self.record_size
            )
            return np.frombuffer(raw, dtype=SERIES_DTYPE).reshape(
                count, self.series_length
            )

        cache = self.cache
        if cache is None:
            return load()
        # Singleflight: concurrent misses of the same block run one disk
        # read; the other threads wait on it and take the hit.
        return cache.get_or_load((position, count), load)

    def read_series(self, position: int) -> np.ndarray:
        """Read one series (a single random access in the worst case)."""
        return self.read_range(position, 1)[0]

    def read_positions(self, positions: np.ndarray) -> np.ndarray:
        """Read series at sorted positions, coalescing consecutive runs.

        Runs of adjacent positions become single ``read_range`` calls, so
        the I/O accounting sees one seek per run — what page-level reads
        of a real system would do.  Positions must be strictly increasing
        (sorted, no duplicates); anything else would silently coalesce
        into the wrong rows, so it raises :class:`ValueError` instead.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.ndim != 1:
            raise ValueError(f"positions must be 1-D, got ndim={pos.ndim}")
        if pos.shape[0] and (np.diff(pos) <= 0).any():
            raise ValueError(
                "positions must be strictly increasing (sorted, unique); "
                "got an unsorted or duplicated sequence"
            )
        rows: list[np.ndarray] = []
        start = 0
        total = pos.shape[0]
        while start < total:
            end = start + 1
            while end < total and pos[end] == pos[end - 1] + 1:
                end += 1
            rows.append(self.read_range(int(pos[start]), end - start))
            start = end
        if not rows:
            return np.empty((0, self.series_length), dtype=SERIES_DTYPE)
        return np.concatenate(rows, axis=0)

    def append_batch(self, data: np.ndarray) -> int:
        """Append a batch, returning the position of its first series."""
        arr = np.ascontiguousarray(data, dtype=SERIES_DTYPE)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.series_length:
            raise StorageError(
                f"appending series of length {arr.shape[1]} to a file of "
                f"length-{self.series_length} records"
            )
        offset = self._file.append(arr.tobytes())
        if self.cache is not None:
            # Coarse but safe: appended data never invalidates existing
            # records, yet a (position, count) block ending at the old EOF
            # could now be read with a larger count — drop everything
            # rather than reason about overlap.
            self.cache.clear()
        return offset // self.record_size

    def flush(self) -> None:
        self._file.flush()

    def sync(self) -> None:
        self._file.sync()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "SeriesFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SymbolFile:
    """Fixed-record file of uint8 iSAX words (the LSDFile format).

    Word ``i`` summarizes the series at position ``i`` of the companion
    :class:`SeriesFile` — the paper stores LSDFile in LRDFile order so one
    position addresses both.
    """

    def __init__(
        self,
        path: PathLike,
        segments: int,
        stats: Optional[IOStats] = None,
        read_only: bool = False,
    ) -> None:
        if segments <= 0:
            raise ValueError(f"segments must be positive, got {segments}")
        self.segments = segments
        self.record_size = segments * SYMBOL_DTYPE.itemsize
        self._file = BinaryFile(path, stats=stats, read_only=read_only)
        if self._file.size % self.record_size != 0:
            raise StorageError(
                f"{self._file.path} size {self._file.size} is not a multiple "
                f"of the word size {self.record_size}"
            )

    @property
    def path(self) -> Path:
        return self._file.path

    @property
    def num_words(self) -> int:
        return self._file.size // self.record_size

    def append_batch(self, words: np.ndarray) -> int:
        arr = np.ascontiguousarray(words, dtype=SYMBOL_DTYPE)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.segments:
            raise StorageError(
                f"appending {arr.shape[1]}-segment words to a "
                f"{self.segments}-segment file"
            )
        offset = self._file.append(arr.tobytes())
        return offset // self.record_size

    def read_all(self) -> np.ndarray:
        """Load the whole file (pre-loaded in memory during querying)."""
        count = self.num_words
        raw = self._file.read(0, count * self.record_size)
        return np.frombuffer(raw, dtype=SYMBOL_DTYPE).reshape(count, self.segments)

    def flush(self) -> None:
        self._file.flush()

    def sync(self) -> None:
        self._file.sync()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "SymbolFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
