"""Storage fault injection: deterministic crashes, torn writes, flaky reads.

A disk-resident index is only as trustworthy as its behaviour *around*
failures: a power cut mid-`save_tree`, a filesystem that persists half an
append, a transient ``EIO`` that a retry would have absorbed.  This module
lets tests script those events precisely:

* :class:`FaultPlan` describes one fault — "the Nth write crashes", "the
  3rd read fails transiently twice", "write 7 persists only a prefix";
* :class:`FaultInjector` counts every read/write/flush that
  :class:`~repro.storage.files.BinaryFile` performs and fires the plans
  whose trigger matches, which also makes it a plain operation counter
  (inject no plans, read ``injector.counts`` afterwards) — the crash-matrix
  test uses that to enumerate every crash point of a build;
* :func:`inject` installs an injector process-wide for the duration of a
  ``with`` block; ``BinaryFile`` consults the active injector on every
  operation.

Fault exceptions derive from :class:`OSError` so they travel the same
paths a real I/O error would.  :class:`TransientFault` is retryable (and
``BinaryFile.read`` retries it with backoff); :class:`CrashFault` models a
process death and is never retried.

Plans also ship **across process boundaries**: :func:`ship_plans` JSON-
encodes a ``{shard_id_or_*: [FaultPlan, ...]}`` mapping into the
:data:`PLANS_ENV` environment variable, shard worker processes pick up
their share with :func:`worker_injection`, and two extra modes model
whole-process failures — ``"kill"`` (``os._exit``, the shape of an OOM
kill; only honoured inside workers) and ``"stall"`` (the operation
sleeps, the shape of a hung NFS mount).  A plan with a ``fence`` path
fires exactly once machine-wide: the firing attempt claims the fence
file, so a requeued/retried task sails past the fault — which is how
the chaos tests assert *recovery*, not just failure.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

OPS = ("read", "write", "flush")
MODES = ("crash", "torn", "transient", "kill", "stall")

#: Environment variable carrying JSON-encoded per-shard fault plans into
#: shard worker processes (inherited under both fork and spawn).
PLANS_ENV = "REPRO_FAULT_PLANS"

#: Exit status of a worker felled by a ``"kill"`` plan: 128 + SIGKILL,
#: the status an OOM-killed process reports.
KILL_EXIT_CODE = 137


class InjectedFault(OSError):
    """Base class of all injected storage faults."""


class CrashFault(InjectedFault):
    """A simulated crash: the operation dies and must not be retried."""


class TransientFault(InjectedFault):
    """A simulated transient error: a retry of the same operation may
    succeed (the injector stops raising after ``failures`` firings)."""


@dataclass
class FaultPlan:
    """One scripted fault.

    ``op`` is which :class:`~repro.storage.files.BinaryFile` operation to
    target, ``at`` the 1-based global count of that operation at which the
    fault fires.  ``mode``:

    * ``"crash"`` — raise :class:`CrashFault` before the operation touches
      the file (for ``write``: nothing is persisted);
    * ``"torn"`` — for writes only: persist the first
      ``int(len(data) * torn_fraction)`` bytes, then raise
      :class:`CrashFault` — the classic torn page;
    * ``"transient"`` — raise :class:`TransientFault` for ``failures``
      consecutive attempts of the triggering operation, then let the
      retry succeed;
    * ``"kill"`` — die on the spot with ``os._exit(KILL_EXIT_CODE)``,
      modelling an OOM-killed worker.  Only honoured by injectors built
      with ``allow_kill=True`` (the worker-process channel); elsewhere it
      degrades to a :class:`CrashFault` so a stray plan cannot take down
      a test runner or the coordinator;
    * ``"stall"`` — the operation sleeps ``stall_seconds`` and then
      proceeds normally, modelling a hung mount / stalled pipe.

    ``fence``, when set, is a filesystem path used as a machine-wide
    once-only latch: the first firing attempt claims the file (atomic
    ``O_EXCL`` create) and fires; every later attempt — in any process —
    sees the claimed fence and skips the fault.  Chaos tests use fences
    so the *retry* of a failed task succeeds.
    """

    op: str = "write"
    at: int = 1
    mode: str = "crash"
    torn_fraction: float = 0.5
    failures: int = 1
    stall_seconds: float = 0.0
    fence: Optional[str] = None
    _remaining: int = field(init=False, default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == "torn" and self.op != "write":
            raise ValueError("torn faults only apply to writes")
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError(
                f"torn_fraction must be in [0, 1), got {self.torn_fraction}"
            )
        if self.stall_seconds < 0.0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        self._remaining = self.failures

    def to_dict(self) -> dict:
        """A JSON-ready form of this plan (drops the runtime counter)."""
        doc = dataclasses.asdict(self)
        doc.pop("_remaining", None)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        return cls(**{k: v for k, v in doc.items() if k != "_remaining"})

    def claim_fence(self) -> bool:
        """Claim this plan's once-only latch; True if the fault may fire.

        Plans without a fence always fire.  The claim is an atomic
        exclusive create, so exactly one process (ever) wins it.
        """
        if self.fence is None:
            return True
        try:
            fd = os.open(self.fence, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


class FaultInjector:
    """Counts BinaryFile operations and fires matching :class:`FaultPlan`s.

    Thread-safe: index writing is multi-threaded, and the counters define
    the crash matrix, so counting and triggering happen under one lock.

    ``allow_kill`` arms ``"kill"`` plans: only the worker-process channel
    (:func:`worker_injection`) sets it, so a kill plan reaching the
    coordinator or a test runner degrades to a :class:`CrashFault`
    instead of exiting the process.
    """

    def __init__(
        self,
        plans: Optional[list[FaultPlan]] = None,
        allow_kill: bool = False,
    ) -> None:
        self._lock = threading.Lock()
        self.plans = list(plans) if plans else []
        self.allow_kill = allow_kill
        self.counts = {op: 0 for op in OPS}

    # -- BinaryFile hooks ---------------------------------------------------

    def on_read(self, path) -> None:
        """Called before each read; may raise an injected fault."""
        self._fire("read", path)

    def intercept_write(self, path, data: bytes) -> tuple[bytes, Optional[BaseException]]:
        """Called before each write.

        Returns ``(bytes_to_persist, fault_or_None)``: the file layer
        writes the returned bytes and then raises the fault, so a torn
        write leaves its prefix durably behind like real hardware would.
        """
        with self._lock:
            self.counts["write"] += 1
            plan = self._match("write", self.counts["write"])
        if plan is None or not plan.claim_fence():
            return data, None
        if plan.mode == "stall":
            time.sleep(plan.stall_seconds)
            return data, None
        if plan.mode == "kill":
            self._kill("write", path)
        if plan.mode == "torn":
            prefix = data[: int(len(data) * plan.torn_fraction)]
            return prefix, CrashFault(
                f"injected torn write at {path} "
                f"({len(prefix)}/{len(data)} bytes persisted)"
            )
        return b"", self._make_fault(plan, "write", path)

    def on_flush(self, path) -> None:
        """Called before each flush; may raise an injected fault."""
        self._fire("flush", path)

    # -- internals ----------------------------------------------------------

    def _fire(self, op: str, path) -> None:
        with self._lock:
            self.counts[op] += 1
            plan = self._match(op, self.counts[op])
        if plan is None or not plan.claim_fence():
            return
        if plan.mode == "stall":
            time.sleep(plan.stall_seconds)
            return
        if plan.mode == "kill":
            self._kill(op, path)
        raise self._make_fault(plan, op, path)

    def _kill(self, op: str, path) -> None:
        """Die like an OOM-killed worker — or refuse, outside a worker."""
        if self.allow_kill:
            os._exit(KILL_EXIT_CODE)
        raise CrashFault(
            f"injected kill at {op} of {path} "
            "(kill plans are only armed inside shard workers)"
        )

    def _match(self, op: str, count: int) -> Optional[FaultPlan]:
        for plan in self.plans:
            if plan.op != op:
                continue
            if plan.mode == "transient":
                # Fires for `failures` consecutive attempts from `at`.
                if plan.at <= count and plan._remaining > 0:
                    plan._remaining -= 1
                    return plan
            elif count == plan.at:
                return plan
        return None

    @staticmethod
    def _make_fault(plan: FaultPlan, op: str, path) -> InjectedFault:
        if plan.mode == "transient":
            return TransientFault(f"injected transient {op} error at {path}")
        return CrashFault(f"injected crash before {op} #{plan.at} at {path}")


_active: Optional[FaultInjector] = None
_active_lock = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector installed by :func:`inject`, if any."""
    return _active


@contextmanager
def inject(injector_or_plans) -> Iterator[FaultInjector]:
    """Install a :class:`FaultInjector` for the duration of the block.

    Accepts an injector, a single :class:`FaultPlan`, or a list of plans
    (an empty list makes a pure operation counter).  Nested installs are
    rejected: overlapping fault scripts would make counts meaningless.
    """
    global _active
    if isinstance(injector_or_plans, FaultInjector):
        injector = injector_or_plans
    elif isinstance(injector_or_plans, FaultPlan):
        injector = FaultInjector([injector_or_plans])
    else:
        injector = FaultInjector(list(injector_or_plans))
    with _active_lock:
        if _active is not None:
            raise RuntimeError("a FaultInjector is already active")
        _active = injector
    try:
        yield injector
    finally:
        _active = None


# ---------------------------------------------------------------------------
# Cross-process plan shipping (the chaos-test channel into shard workers)
# ---------------------------------------------------------------------------


def encode_plans(plans_by_shard: dict) -> str:
    """JSON-encode ``{shard_id_or_"*": [FaultPlan, ...]}`` for the env.

    The ``"*"`` key targets every shard.  Values may be single plans or
    lists.
    """
    doc = {}
    for key, plans in plans_by_shard.items():
        if isinstance(plans, FaultPlan):
            plans = [plans]
        doc[str(key)] = [plan.to_dict() for plan in plans]
    return json.dumps(doc)


def plans_for_shards(shard_ids) -> list[FaultPlan]:
    """Decode this process's shipped plans that target ``shard_ids``.

    Reads :data:`PLANS_ENV` (inherited from the coordinator under both
    fork and spawn); returns the plans keyed by any of the given shard
    ids plus every ``"*"`` plan, in stable (key-sorted) order.
    """
    raw = os.environ.get(PLANS_ENV)
    if not raw:
        return []
    doc = json.loads(raw)
    wanted = {str(shard_id) for shard_id in shard_ids}
    plans: list[FaultPlan] = []
    for key in sorted(doc):
        if key == "*" or key in wanted:
            plans.extend(FaultPlan.from_dict(d) for d in doc[key])
    return plans


@contextmanager
def ship_plans(plans_by_shard: dict) -> Iterator[None]:
    """Publish per-shard plans to workers spawned inside the block.

    Sets :data:`PLANS_ENV` in this process's environment (restored on
    exit); worker processes started while it is set pick up their share
    via :func:`worker_injection`.
    """
    previous = os.environ.get(PLANS_ENV)
    os.environ[PLANS_ENV] = encode_plans(plans_by_shard)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PLANS_ENV, None)
        else:
            os.environ[PLANS_ENV] = previous


@contextmanager
def worker_injection(shard_ids) -> Iterator[Optional[FaultInjector]]:
    """Install this worker's shipped plans for the duration of the block.

    A no-op (yields ``None``) when no shipped plan targets ``shard_ids``;
    otherwise installs a kill-armed :class:`FaultInjector`.  Build
    workers wrap each shard task (so operation counts restart per shard,
    keeping ``at=`` triggers deterministic); query workers wrap their
    whole serving loop.
    """
    plans = plans_for_shards(shard_ids)
    if not plans:
        yield None
        return
    with inject(FaultInjector(plans, allow_kill=True)) as injector:
        yield injector
