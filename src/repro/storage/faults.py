"""Storage fault injection: deterministic crashes, torn writes, flaky reads.

A disk-resident index is only as trustworthy as its behaviour *around*
failures: a power cut mid-`save_tree`, a filesystem that persists half an
append, a transient ``EIO`` that a retry would have absorbed.  This module
lets tests script those events precisely:

* :class:`FaultPlan` describes one fault — "the Nth write crashes", "the
  3rd read fails transiently twice", "write 7 persists only a prefix";
* :class:`FaultInjector` counts every read/write/flush that
  :class:`~repro.storage.files.BinaryFile` performs and fires the plans
  whose trigger matches, which also makes it a plain operation counter
  (inject no plans, read ``injector.counts`` afterwards) — the crash-matrix
  test uses that to enumerate every crash point of a build;
* :func:`inject` installs an injector process-wide for the duration of a
  ``with`` block; ``BinaryFile`` consults the active injector on every
  operation.

Fault exceptions derive from :class:`OSError` so they travel the same
paths a real I/O error would.  :class:`TransientFault` is retryable (and
``BinaryFile.read`` retries it with backoff); :class:`CrashFault` models a
process death and is never retried.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

OPS = ("read", "write", "flush")


class InjectedFault(OSError):
    """Base class of all injected storage faults."""


class CrashFault(InjectedFault):
    """A simulated crash: the operation dies and must not be retried."""


class TransientFault(InjectedFault):
    """A simulated transient error: a retry of the same operation may
    succeed (the injector stops raising after ``failures`` firings)."""


@dataclass
class FaultPlan:
    """One scripted fault.

    ``op`` is which :class:`~repro.storage.files.BinaryFile` operation to
    target, ``at`` the 1-based global count of that operation at which the
    fault fires.  ``mode``:

    * ``"crash"`` — raise :class:`CrashFault` before the operation touches
      the file (for ``write``: nothing is persisted);
    * ``"torn"`` — for writes only: persist the first
      ``int(len(data) * torn_fraction)`` bytes, then raise
      :class:`CrashFault` — the classic torn page;
    * ``"transient"`` — raise :class:`TransientFault` for ``failures``
      consecutive attempts of the triggering operation, then let the
      retry succeed.
    """

    op: str = "write"
    at: int = 1
    mode: str = "crash"
    torn_fraction: float = 0.5
    failures: int = 1
    _remaining: int = field(init=False, default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if self.mode not in ("crash", "torn", "transient"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == "torn" and self.op != "write":
            raise ValueError("torn faults only apply to writes")
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError(
                f"torn_fraction must be in [0, 1), got {self.torn_fraction}"
            )
        self._remaining = self.failures


class FaultInjector:
    """Counts BinaryFile operations and fires matching :class:`FaultPlan`s.

    Thread-safe: index writing is multi-threaded, and the counters define
    the crash matrix, so counting and triggering happen under one lock.
    """

    def __init__(self, plans: Optional[list[FaultPlan]] = None) -> None:
        self._lock = threading.Lock()
        self.plans = list(plans) if plans else []
        self.counts = {op: 0 for op in OPS}

    # -- BinaryFile hooks ---------------------------------------------------

    def on_read(self, path) -> None:
        """Called before each read; may raise an injected fault."""
        self._fire("read", path)

    def intercept_write(self, path, data: bytes) -> tuple[bytes, Optional[BaseException]]:
        """Called before each write.

        Returns ``(bytes_to_persist, fault_or_None)``: the file layer
        writes the returned bytes and then raises the fault, so a torn
        write leaves its prefix durably behind like real hardware would.
        """
        with self._lock:
            self.counts["write"] += 1
            plan = self._match("write", self.counts["write"])
        if plan is None:
            return data, None
        if plan.mode == "torn":
            prefix = data[: int(len(data) * plan.torn_fraction)]
            return prefix, CrashFault(
                f"injected torn write at {path} "
                f"({len(prefix)}/{len(data)} bytes persisted)"
            )
        return b"", self._make_fault(plan, "write", path)

    def on_flush(self, path) -> None:
        """Called before each flush; may raise an injected fault."""
        self._fire("flush", path)

    # -- internals ----------------------------------------------------------

    def _fire(self, op: str, path) -> None:
        with self._lock:
            self.counts[op] += 1
            plan = self._match(op, self.counts[op])
        if plan is not None:
            raise self._make_fault(plan, op, path)

    def _match(self, op: str, count: int) -> Optional[FaultPlan]:
        for plan in self.plans:
            if plan.op != op:
                continue
            if plan.mode == "transient":
                # Fires for `failures` consecutive attempts from `at`.
                if plan.at <= count and plan._remaining > 0:
                    plan._remaining -= 1
                    return plan
            elif count == plan.at:
                return plan
        return None

    @staticmethod
    def _make_fault(plan: FaultPlan, op: str, path) -> InjectedFault:
        if plan.mode == "transient":
            return TransientFault(f"injected transient {op} error at {path}")
        return CrashFault(f"injected crash before {op} #{plan.at} at {path}")


_active: Optional[FaultInjector] = None
_active_lock = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector installed by :func:`inject`, if any."""
    return _active


@contextmanager
def inject(injector_or_plans) -> Iterator[FaultInjector]:
    """Install a :class:`FaultInjector` for the duration of the block.

    Accepts an injector, a single :class:`FaultPlan`, or a list of plans
    (an empty list makes a pure operation counter).  Nested installs are
    rejected: overlapping fault scripts would make counts meaningless.
    """
    global _active
    if isinstance(injector_or_plans, FaultInjector):
        injector = injector_or_plans
    elif isinstance(injector_or_plans, FaultPlan):
        injector = FaultInjector([injector_or_plans])
    else:
        injector = FaultInjector(list(injector_or_plans))
    with _active_lock:
        if _active is not None:
            raise RuntimeError("a FaultInjector is already active")
        _active = injector
    try:
        yield injector
    finally:
        _active = None
