"""I/O accounting.

The paper's query-time story is driven by how many *random* I/O operations
each method issues and how much data it touches (Figures 10 and 11 report
the percentage of accessed data next to every timing).  Because this
reproduction runs at laptop scale, wall-clock alone would under-represent
disk effects; every file in :mod:`repro.storage` therefore routes its reads
and writes through an :class:`IOStats` instance so harnesses can report
hardware-independent cost metrics.

A read is *sequential* when it starts exactly where the previous read on
the same file ended, and a *random seek* otherwise — the same accounting a
rotating-disk cost model would use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of the counters at one point in time."""

    read_calls: int = 0
    write_calls: int = 0
    random_seeks: int = 0
    sequential_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            read_calls=self.read_calls - other.read_calls,
            write_calls=self.write_calls - other.write_calls,
            random_seeks=self.random_seeks - other.random_seeks,
            sequential_reads=self.sequential_reads - other.sequential_reads,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        """Combine counters from independent sources (e.g. index shards)."""
        return IOSnapshot(
            read_calls=self.read_calls + other.read_calls,
            write_calls=self.write_calls + other.write_calls,
            random_seeks=self.random_seeks + other.random_seeks,
            sequential_reads=self.sequential_reads + other.sequential_reads,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


class IOStats:
    """Thread-safe I/O counters shared by every file of one index/method."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._read_calls = 0
        self._write_calls = 0
        self._random_seeks = 0
        self._sequential_reads = 0
        self._bytes_read = 0
        self._bytes_written = 0

    def record_read(self, nbytes: int, sequential: bool) -> None:
        with self._lock:
            self._read_calls += 1
            self._bytes_read += nbytes
            if sequential:
                self._sequential_reads += 1
            else:
                self._random_seeks += 1

    def record_write(self, nbytes: int) -> None:
        with self._lock:
            self._write_calls += 1
            self._bytes_written += nbytes

    def snapshot(self) -> IOSnapshot:
        with self._lock:
            return IOSnapshot(
                read_calls=self._read_calls,
                write_calls=self._write_calls,
                random_seeks=self._random_seeks,
                sequential_reads=self._sequential_reads,
                bytes_read=self._bytes_read,
                bytes_written=self._bytes_written,
            )

    def reset(self) -> None:
        with self._lock:
            self._read_calls = 0
            self._write_calls = 0
            self._random_seeks = 0
            self._sequential_reads = 0
            self._bytes_read = 0
            self._bytes_written = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = self.snapshot()
        return (
            f"IOStats(reads={snap.read_calls}, writes={snap.write_calls}, "
            f"random={snap.random_seeks}, seq={snap.sequential_reads}, "
            f"MB_read={snap.bytes_read / 1e6:.2f})"
        )
