"""MANIFEST.json: the durable commit record of a materialized index.

The index-writing phase stages LRDFile, LSDFile, and HTree under temporary
names, fsyncs them, publishes each with an atomic rename, and finally
commits the generation by publishing ``MANIFEST.json`` the same way.  The
manifest names every artifact with its byte size, streamed CRC32, and
format version, plus build metadata (series/leaf counts, a digest of the
configuration) — enough for :meth:`HerculesIndex.open` to prove the
directory is a single, complete generation before serving queries from it.

The manifest protects itself too: the file embeds a ``manifest_crc32``
computed over the canonical JSON encoding of every other field, so a
single flipped byte anywhere in ``MANIFEST.json`` surfaces as a
:class:`~repro.errors.ManifestError` rather than a quietly different
configuration.

See ``docs/file-formats.md`` for the schema and the commit sequence.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.errors import ChecksumError, ManifestError, StorageError

PathLike = Union[str, Path]

MANIFEST_FILENAME = "MANIFEST.json"
MANIFEST_VERSION = 1
#: Top-level manifest of a *sharded* index directory: lists the shard
#: sub-directories (each with its own MANIFEST.json) plus a generation
#: counter bumped by every rebuild into the same directory.
SHARDS_FILENAME = "SHARDS.json"
SHARDS_VERSION = 1
#: Raw-record artifacts have no header of their own; their format version
#: lives here.  HTree carries its version in its header and mirrors it.
LRD_FORMAT_VERSION = 1
LSD_FORMAT_VERSION = 1

_CRC_CHUNK = 1 << 20
_STAGING_SUFFIX = ".tmp"


# ---------------------------------------------------------------------------
# Atomic publish primitives
# ---------------------------------------------------------------------------


def fsync_path(path: PathLike) -> None:
    """fsync a file (or directory) by path, making prior writes durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def publish(staged: PathLike, final: PathLike) -> None:
    """Atomically move a fully-written staged file to its final name.

    fsyncs the staged file, renames with :func:`os.replace` (atomic on
    POSIX), then fsyncs the parent directory so the rename itself is
    durable.  A crash at any point leaves either the old file or the new
    one — never a mix.
    """
    staged, final = Path(staged), Path(final)
    fsync_path(staged)
    os.replace(staged, final)
    fsync_path(final.parent)


def staging_path(final: PathLike) -> Path:
    """The temporary name an artifact is staged under before publish."""
    final = Path(final)
    return final.with_name(final.name + _STAGING_SUFFIX)


def clear_staging(directory: PathLike, names: list[str]) -> None:
    """Remove leftover staging files of a previous crashed build."""
    directory = Path(directory)
    for name in names:
        staging_path(directory / name).unlink(missing_ok=True)
    staging_path(directory / MANIFEST_FILENAME).unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Checksums
# ---------------------------------------------------------------------------


def stream_crc32(path: PathLike, chunk_size: int = _CRC_CHUNK) -> int:
    """CRC32 of a file, streamed in chunks (artifacts can exceed memory)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def config_digest(config: dict) -> str:
    """A short stable digest of a configuration dict (build provenance)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Manifest model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactRecord:
    """One artifact's identity: exact size, checksum, format version."""

    name: str
    size: int
    crc32: int
    format_version: int


@dataclass
class Manifest:
    """The committed state of one index generation."""

    num_series: int
    series_length: int
    num_leaves: int
    config_digest: str
    artifacts: dict[str, ArtifactRecord] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def to_document(self) -> dict:
        return {
            "version": self.version,
            "num_series": self.num_series,
            "series_length": self.series_length,
            "num_leaves": self.num_leaves,
            "config_digest": self.config_digest,
            "artifacts": {
                name: {
                    "size": rec.size,
                    "crc32": rec.crc32,
                    "format_version": rec.format_version,
                }
                for name, rec in sorted(self.artifacts.items())
            },
        }

    @classmethod
    def from_document(cls, doc: dict) -> "Manifest":
        try:
            artifacts = {
                name: ArtifactRecord(
                    name=name,
                    size=int(rec["size"]),
                    crc32=int(rec["crc32"]),
                    format_version=int(rec["format_version"]),
                )
                for name, rec in doc["artifacts"].items()
            }
            return cls(
                num_series=int(doc["num_series"]),
                series_length=int(doc["series_length"]),
                num_leaves=int(doc["num_leaves"]),
                config_digest=str(doc["config_digest"]),
                artifacts=artifacts,
                version=int(doc["version"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ManifestError(f"manifest is missing or malformed: {exc}") from exc


def record_artifact(path: PathLike, format_version: int) -> ArtifactRecord:
    """Fingerprint a staged artifact file (size + streamed CRC32)."""
    path = Path(path)
    name = path.name
    if name.endswith(_STAGING_SUFFIX):
        name = name[: -len(_STAGING_SUFFIX)]
    return ArtifactRecord(
        name=name,
        size=path.stat().st_size,
        crc32=stream_crc32(path),
        format_version=format_version,
    )


# ---------------------------------------------------------------------------
# Load / save
# ---------------------------------------------------------------------------


def _canonical(doc: dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def save_manifest(directory: PathLike, manifest: Manifest) -> Path:
    """Atomically publish ``MANIFEST.json`` — the commit point of a build."""
    directory = Path(directory)
    doc = manifest.to_document()
    doc["manifest_crc32"] = zlib.crc32(_canonical(doc))
    final = directory / MANIFEST_FILENAME
    staged = staging_path(final)
    with open(staged, "wb") as handle:
        handle.write(json.dumps(doc, sort_keys=True, indent=2).encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
    publish(staged, final)
    return final


def load_manifest(directory: PathLike) -> Manifest:
    """Load and integrity-check ``MANIFEST.json``.

    Raises :class:`ManifestError` if the file is absent, unparseable, or
    fails its embedded checksum.
    """
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        raise ManifestError(f"no manifest at {path}")
    try:
        doc = json.loads(path.read_bytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ManifestError(f"{path}: unparseable manifest: {exc}") from exc
    if not isinstance(doc, dict):
        raise ManifestError(f"{path}: manifest must be a JSON object")
    stored_crc = doc.pop("manifest_crc32", None)
    if stored_crc is None:
        raise ManifestError(f"{path}: manifest has no integrity checksum")
    actual_crc = zlib.crc32(_canonical(doc))
    if stored_crc != actual_crc:
        raise ManifestError(
            f"{path}: manifest integrity checksum mismatch "
            f"(stored {stored_crc}, computed {actual_crc})"
        )
    manifest = Manifest.from_document(doc)
    if manifest.version != MANIFEST_VERSION:
        raise ManifestError(
            f"{path}: manifest version {manifest.version} unsupported "
            f"(expected {MANIFEST_VERSION})"
        )
    return manifest


# ---------------------------------------------------------------------------
# Sharded-index top-level manifest (SHARDS.json)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardRecord:
    """One shard's identity inside a sharded index directory.

    ``row_base`` is the shard's offset in the global position space:
    global answer position = ``row_base`` + the shard-local LRDFile
    position.  ``manifest_crc32`` fingerprints the shard's own
    MANIFEST.json bytes, so the top-level manifest detects a shard that
    was rebuilt or swapped out from under the committed generation.
    """

    name: str
    row_base: int
    num_series: int
    num_leaves: int
    manifest_crc32: int


@dataclass
class ShardManifest:
    """The committed state of one sharded index generation."""

    num_shards: int
    num_series: int
    series_length: int
    generation: int
    config_digest: str
    shards: list = field(default_factory=list)
    version: int = SHARDS_VERSION

    def to_document(self) -> dict:
        return {
            "version": self.version,
            "generation": self.generation,
            "num_shards": self.num_shards,
            "num_series": self.num_series,
            "series_length": self.series_length,
            "config_digest": self.config_digest,
            "shards": [
                {
                    "name": rec.name,
                    "row_base": rec.row_base,
                    "num_series": rec.num_series,
                    "num_leaves": rec.num_leaves,
                    "manifest_crc32": rec.manifest_crc32,
                }
                for rec in self.shards
            ],
        }

    @classmethod
    def from_document(cls, doc: dict) -> "ShardManifest":
        try:
            shards = [
                ShardRecord(
                    name=str(rec["name"]),
                    row_base=int(rec["row_base"]),
                    num_series=int(rec["num_series"]),
                    num_leaves=int(rec["num_leaves"]),
                    manifest_crc32=int(rec["manifest_crc32"]),
                )
                for rec in doc["shards"]
            ]
            return cls(
                num_shards=int(doc["num_shards"]),
                num_series=int(doc["num_series"]),
                series_length=int(doc["series_length"]),
                generation=int(doc["generation"]),
                config_digest=str(doc["config_digest"]),
                shards=shards,
                version=int(doc["version"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ManifestError(
                f"shard manifest is missing or malformed: {exc}"
            ) from exc


def shard_dirname(shard_id: int) -> str:
    """The canonical sub-directory name of one shard (``shard-0000``)."""
    return f"shard-{shard_id:04d}"


def save_shard_manifest(directory: PathLike, manifest: ShardManifest) -> Path:
    """Atomically publish ``SHARDS.json`` — the sharded commit point.

    Every shard sub-directory has already committed its own generation
    (per-shard MANIFEST.json published last by :func:`~repro.core.
    writing.write_index`); publishing the top-level manifest afterwards
    makes the set of shards itself crash-safe: a crash mid-build leaves
    either the previous SHARDS.json (old generation, old shard set) or
    none, never a half-listed shard set.
    """
    directory = Path(directory)
    doc = manifest.to_document()
    doc["manifest_crc32"] = zlib.crc32(_canonical(doc))
    final = directory / SHARDS_FILENAME
    staged = staging_path(final)
    with open(staged, "wb") as handle:
        handle.write(json.dumps(doc, sort_keys=True, indent=2).encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
    publish(staged, final)
    return final


def load_shard_manifest(directory: PathLike) -> ShardManifest:
    """Load and integrity-check ``SHARDS.json``."""
    path = Path(directory) / SHARDS_FILENAME
    if not path.exists():
        raise ManifestError(f"no shard manifest at {path}")
    try:
        doc = json.loads(path.read_bytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ManifestError(f"{path}: unparseable shard manifest: {exc}") from exc
    if not isinstance(doc, dict):
        raise ManifestError(f"{path}: shard manifest must be a JSON object")
    stored_crc = doc.pop("manifest_crc32", None)
    if stored_crc is None:
        raise ManifestError(f"{path}: shard manifest has no integrity checksum")
    actual_crc = zlib.crc32(_canonical(doc))
    if stored_crc != actual_crc:
        raise ManifestError(
            f"{path}: shard manifest integrity checksum mismatch "
            f"(stored {stored_crc}, computed {actual_crc})"
        )
    manifest = ShardManifest.from_document(doc)
    if manifest.version != SHARDS_VERSION:
        raise ManifestError(
            f"{path}: shard manifest version {manifest.version} unsupported "
            f"(expected {SHARDS_VERSION})"
        )
    if len(manifest.shards) != manifest.num_shards:
        raise ManifestError(
            f"{path}: shard manifest lists {len(manifest.shards)} shards "
            f"but records num_shards={manifest.num_shards}"
        )
    return manifest


def next_generation(directory: PathLike) -> int:
    """The generation number a rebuild into ``directory`` should commit.

    1 for a fresh directory; previous + 1 when a readable SHARDS.json is
    already present (an unreadable one restarts at 1 — the damaged
    generation was never servable anyway).
    """
    try:
        return load_shard_manifest(directory).generation + 1
    except ManifestError:
        return 1


def is_sharded_directory(directory: PathLike) -> bool:
    """True when ``directory`` holds a sharded (SHARDS.json) index."""
    return (Path(directory) / SHARDS_FILENAME).exists()


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------

VERIFY_LEVELS = ("off", "quick", "full")


def check_artifact(
    directory: PathLike,
    record: ArtifactRecord,
    level: str = "quick",
    expected_version: int | None = None,
) -> None:
    """Validate one artifact against its manifest record.

    ``quick`` checks presence, byte size, and format version; ``full``
    additionally re-reads the file to recompute its CRC32.  Failures name
    the damaged artifact.
    """
    path = Path(directory) / record.name
    if not path.exists():
        raise StorageError(f"artifact {record.name} is missing from {directory}")
    if expected_version is not None and record.format_version != expected_version:
        raise StorageError(
            f"artifact {record.name}: format version {record.format_version} "
            f"unsupported (expected {expected_version})"
        )
    size = path.stat().st_size
    if size != record.size:
        raise ChecksumError(
            f"artifact {record.name}: size {size} != manifest size "
            f"{record.size} (truncated or torn write)"
        )
    if level == "full":
        crc = stream_crc32(path)
        if crc != record.crc32:
            raise ChecksumError(
                f"artifact {record.name}: CRC32 {crc:#010x} != manifest "
                f"CRC32 {record.crc32:#010x} (corrupted bytes)"
            )


def verify_directory(
    directory: PathLike,
    manifest: Manifest,
    level: str = "quick",
    expected_versions: dict[str, int] | None = None,
) -> None:
    """Run :func:`check_artifact` over every artifact in the manifest."""
    expected_versions = expected_versions or {}
    for name, record in sorted(manifest.artifacts.items()):
        check_artifact(
            directory, record, level=level,
            expected_version=expected_versions.get(name),
        )


def verify_shard_record(directory: PathLike, record: ShardRecord) -> Manifest:
    """Validate one shard sub-directory against its top-level record.

    Checks that the shard directory and its MANIFEST.json exist, that
    the sub-manifest's bytes still carry the CRC32 the top-level
    manifest committed (a mismatch means the shard was rebuilt or
    swapped after the generation was published — mixed generations),
    and that the series/leaf counts agree.  Returns the loaded shard
    manifest so callers can continue into per-artifact checks.  Raised
    errors name the shard.
    """
    shard_dir = Path(directory) / record.name
    if not shard_dir.is_dir():
        raise StorageError(
            f"shard {record.name}: directory missing from {directory}"
        )
    manifest_path = shard_dir / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise ManifestError(f"shard {record.name}: no {MANIFEST_FILENAME}")
    crc = stream_crc32(manifest_path)
    if crc != record.manifest_crc32:
        raise ChecksumError(
            f"shard {record.name}: {MANIFEST_FILENAME} CRC32 {crc:#010x} != "
            f"committed {record.manifest_crc32:#010x} (mixed generations "
            "or corrupted shard manifest)"
        )
    try:
        manifest = load_manifest(shard_dir)
    except StorageError as exc:
        raise type(exc)(f"shard {record.name}: {exc}") from exc
    if manifest.num_series != record.num_series:
        raise ManifestError(
            f"shard {record.name}: holds {manifest.num_series} series but "
            f"the shard manifest records {record.num_series}"
        )
    if manifest.num_leaves != record.num_leaves:
        raise ManifestError(
            f"shard {record.name}: holds {manifest.num_leaves} leaves but "
            f"the shard manifest records {record.num_leaves}"
        )
    return manifest
