"""Byte-budgeted LRU cache of leaf blocks read from a SeriesFile.

Query workloads are skewed: hard queries revisit the same hot leaves of
LRDFile hundreds of times (every skip-sequential fallback walks LCList
again), yet the seed pipeline re-read each leaf from disk on every query.
:class:`LeafCache` sits under :meth:`repro.storage.files.SeriesFile.read_range`
and keeps whole read blocks — keyed by ``(position, count)`` — inside a
fixed byte budget with LRU eviction.

Cached arrays are the read-only views ``read_range`` already produces
(``np.frombuffer`` over immutable bytes), so one block can be handed to
any number of concurrent queries without copying.

Accounting is first-class: hits, misses, and evictions are counted under
the cache lock, exposed as immutable :class:`CacheSnapshot` values (with
``-`` for per-query deltas, mirroring ``IOSnapshot``), and optionally
mirrored into a :class:`~repro.obs.metrics.MetricsRegistry` via
:meth:`LeafCache.bind_registry` under ``cache.leaf.*`` counter names.

Sharded indexes split one user-facing budget across independent caches:
each of the N shards owns its own LeafCache sized ``cache_bytes // N``
(the coordinator's total stays within what the user asked for, whether
shards are queried by threads in one process or by worker processes
each holding their own shard caches), and
:meth:`repro.core.sharding.ShardedIndex.bind_metrics` namespaces each
shard's counters as ``cache.leaf.shard<i>.*``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro import obs

__all__ = ["CacheSnapshot", "LeafCache"]

#: Metric-name prefix used by :meth:`LeafCache.bind_registry` by default.
DEFAULT_METRIC_PREFIX = "cache.leaf"

#: Evictions accumulated before one ``cache_eviction_pressure`` event is
#: emitted (throttling: eviction is per-block and hot loops evict
#: thousands of times; the journal wants the trend, not every block).
PRESSURE_EVENT_EVERY = 64


@dataclass(frozen=True)
class CacheSnapshot:
    """An immutable copy of the cache counters at one point in time."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Bytes resident when the snapshot was taken (not delta-meaningful).
    current_bytes: int = 0
    #: Entries resident when the snapshot was taken.
    entries: int = 0

    def __sub__(self, other: "CacheSnapshot") -> "CacheSnapshot":
        """Counter delta between two snapshots (occupancy stays absolute)."""
        return CacheSnapshot(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            current_bytes=self.current_bytes,
            entries=self.entries,
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 when nothing was looked up."""
        total = self.lookups
        return self.hits / total if total else 0.0


class LeafCache:
    """Thread-safe LRU mapping of block keys to immutable ndarrays.

    ``budget_bytes`` bounds the summed ``nbytes`` of resident entries;
    inserting past the budget evicts least-recently-used entries first.
    A block larger than the whole budget is simply not admitted (the
    read still succeeds, the cache just refuses to thrash itself).
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be positive, got {budget_bytes} "
                "(pass no cache at all to disable caching)"
            )
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        #: Per-key singleflight: key -> Event set when the in-flight
        #: load finishes (see :meth:`get_or_load`).
        self._inflight: dict = {}
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._pressure_pending = 0
        self._registry = None
        self._metric_prefix = DEFAULT_METRIC_PREFIX

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """The cached block for ``key``, refreshing its recency, or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                registry = self._registry
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                registry = self._registry
        if registry is not None:
            name = "hits" if entry is not None else "misses"
            registry.counter(f"{self._metric_prefix}.{name}").inc()
        return entry

    def get_or_load(self, key: Hashable, loader) -> np.ndarray:
        """The cached block for ``key``, loading it at most once.

        Closes the redundant-read window of the get/put protocol: two
        threads missing the same key concurrently used to both run the
        disk read.  Here the first miss becomes the *leader* — it runs
        ``loader()`` and admits the result — while followers wait on a
        per-key in-flight event and then take the cache hit.  A loader
        failure wakes the followers, and the next one retries the load
        itself; a block the budget refuses simply degrades to per-caller
        loads, exactly the old behavior.
        """
        while True:
            leader = False
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    registry = self._registry
                else:
                    registry = self._registry
                    flight = self._inflight.get(key)
                    if flight is None:
                        # This thread leads the load for everyone.
                        flight = threading.Event()
                        self._inflight[key] = flight
                        self._misses += 1
                        leader = True
            if entry is not None:
                if registry is not None:
                    registry.counter(f"{self._metric_prefix}.hits").inc()
                return entry
            if not leader:
                # Follower: the leader will admit the block (or fail);
                # either way the event fires and the loop re-checks.
                flight.wait()
                continue
            if registry is not None:
                registry.counter(f"{self._metric_prefix}.misses").inc()
            try:
                block = loader()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.set()
                raise
            self.put(key, block)
            with self._lock:
                self._inflight.pop(key, None)
            flight.set()
            return block

    def put(self, key: Hashable, block: np.ndarray) -> bool:
        """Admit ``block`` under ``key``; False when it exceeds the budget.

        Admitted blocks are marked read-only — they are shared across
        queries and threads, so nobody may write through a cached view.
        """
        nbytes = int(block.nbytes)
        if nbytes > self.budget_bytes:
            return False
        if block.flags.writeable:
            block = block.view()
            block.flags.writeable = False
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            while self._current_bytes + nbytes > self.budget_bytes:
                _, dropped = self._entries.popitem(last=False)
                self._current_bytes -= dropped.nbytes
                evicted += 1
            self._entries[key] = block
            self._current_bytes += nbytes
            self._evictions += evicted
            registry = self._registry
            pressure = 0
            if evicted:
                self._pressure_pending += evicted
                if self._pressure_pending >= PRESSURE_EVENT_EVERY:
                    pressure = self._pressure_pending
                    self._pressure_pending = 0
            resident = self._current_bytes
            entries = len(self._entries)
        if registry is not None:
            if evicted:
                registry.counter(f"{self._metric_prefix}.evictions").inc(evicted)
            registry.gauge(f"{self._metric_prefix}.bytes").set(
                self.current_bytes
            )
        if pressure:
            obs.emit_event(
                "cache_eviction_pressure",
                evictions=pressure,
                resident_bytes=resident,
                budget_bytes=self.budget_bytes,
                entries=entries,
            )
        return True

    def clear(self) -> None:
        """Drop every entry (used when the underlying file is appended to)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    # -- accounting ----------------------------------------------------------

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> CacheSnapshot:
        with self._lock:
            return CacheSnapshot(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._current_bytes,
                entries=len(self._entries),
            )

    def bind_registry(
        self, registry, prefix: str = DEFAULT_METRIC_PREFIX
    ) -> None:
        """Mirror hit/miss/eviction counts into ``registry`` from now on."""
        with self._lock:
            self._registry = registry
            self._metric_prefix = prefix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = self.snapshot()
        return (
            f"LeafCache({snap.entries} entries, "
            f"{snap.current_bytes}/{self.budget_bytes} bytes, "
            f"{snap.hits} hits / {snap.misses} misses)"
        )
