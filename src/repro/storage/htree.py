"""HTree: the on-disk format of the Hercules index tree.

The index-writing phase materializes three files (Section 3.3.1): LRDFile
(raw series in leaf-inorder), LSDFile (their iSAX words), and HTree — the
tree itself.  This module implements HTree as a versioned binary format:

* header — magic, format version, and a JSON settings blob (configuration
  plus dataset metadata), so readers can validate compatibility before
  touching node records;
* node records — the tree in preorder, each node packed with
  :mod:`struct`.  Internal nodes always have exactly two children, so
  structure is implied by the ``is_leaf`` flag and no child pointers are
  stored.

Only structural state is serialized; build-time state (SBuffer slots,
spill extents, write-phase events) is reconstructed empty because a
persisted tree is immutable.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

import numpy as np

from repro.core.node import Node, SplitPolicy
from repro.errors import StorageError
from repro.storage.files import BinaryFile, PathLike
from repro.storage.iostats import IOStats
from repro.summarization.eapca import Segmentation
from repro.types import DISTANCE_DTYPE

MAGIC = b"HERCTREE"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sII")  # magic, version, settings length
_NODE_FIXED = struct.Struct("<BHQ")  # flags, num_segments, size
_LEAF_TAIL = struct.Struct("<q")  # file_position
_INTERNAL_TAIL = struct.Struct("<HBBdII")
# split_segment, vertical, use_std, threshold, route_start, route_end

_FLAG_LEAF = 0x01


def serialize_tree(root: Node, settings: dict) -> bytes:
    """Encode ``root`` and ``settings`` as one HTree blob."""
    payload = json.dumps(settings, sort_keys=True).encode("utf-8")
    chunks: list[bytes] = [_HEADER.pack(MAGIC, FORMAT_VERSION, len(payload)), payload]
    for node in root.iter_nodes_preorder():
        chunks.append(_pack_node(node))
    return b"".join(chunks)


def write_tree_file(
    path: PathLike,
    root: Node,
    settings: dict,
    stats: Optional[IOStats] = None,
) -> None:
    """Write an HTree file in place, replacing any previous contents.

    Not crash-safe on its own — a crash mid-write leaves a truncated
    file at ``path``.  Use :func:`save_tree` (atomic) unless the caller
    stages and publishes the file itself.
    """
    blob = serialize_tree(root, settings)
    # BinaryFile appends to existing files, so clear the target first.
    from pathlib import Path as _Path

    _Path(path).unlink(missing_ok=True)
    with BinaryFile(path, stats=stats) as handle:
        handle.append(blob)
        handle.sync()


def save_tree(
    path: PathLike,
    root: Node,
    settings: dict,
    stats: Optional[IOStats] = None,
) -> None:
    """Serialize ``root`` and ``settings`` into an HTree file, atomically.

    The blob is staged under a temporary name, fsynced, and published
    with an atomic rename — a crash at any point leaves either the old
    tree or the new one at ``path``, never a truncated mix.
    """
    from repro.storage import manifest as _manifest

    staged = _manifest.staging_path(path)
    write_tree_file(staged, root, settings, stats=stats)
    _manifest.publish(staged, path)


def load_tree(
    path: PathLike, stats: Optional[IOStats] = None
) -> tuple[Node, dict]:
    """Read an HTree file back into a node tree and its settings dict."""
    with BinaryFile(path, stats=stats, read_only=True) as handle:
        blob = handle.read(0, handle.size)
    if len(blob) < _HEADER.size:
        raise StorageError(f"{path}: truncated HTree header")
    magic, version, settings_len = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise StorageError(f"{path}: not an HTree file (bad magic {magic!r})")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"{path}: HTree version {version} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    offset = _HEADER.size
    try:
        settings = json.loads(blob[offset : offset + settings_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"{path}: corrupt settings blob") from exc
    offset += settings_len

    try:
        root, offset = _unpack_node(blob, offset, parent=None, next_id=[0])
    except StorageError:
        raise
    except (struct.error, ValueError, OverflowError) as exc:
        # Mutated node records surface as struct underflows, impossible
        # segmentations, or reshape failures — all corruption.
        raise StorageError(f"{path}: corrupt HTree node records: {exc}") from exc
    if offset != len(blob):
        raise StorageError(
            f"{path}: {len(blob) - offset} trailing bytes after the tree"
        )
    return root, settings


def _pack_node(node: Node) -> bytes:
    flags = _FLAG_LEAF if node.is_leaf else 0
    m = node.segmentation.num_segments
    parts = [
        _NODE_FIXED.pack(flags, m, node.size),
        np.asarray(node.segmentation.ends, dtype="<u4").tobytes(),
        np.ascontiguousarray(node.synopsis, dtype="<f8").tobytes(),
    ]
    if node.is_leaf:
        parts.append(_LEAF_TAIL.pack(node.file_position))
    else:
        policy = node.policy
        if policy is None:
            raise StorageError(
                f"internal node {node.node_id} has no split policy"
            )
        parts.append(
            _INTERNAL_TAIL.pack(
                policy.split_segment,
                int(policy.vertical),
                int(policy.use_std),
                policy.threshold,
                policy.route_start,
                policy.route_end,
            )
        )
    return b"".join(parts)


def _unpack_node(
    blob: bytes, offset: int, parent: Optional[Node], next_id: list[int]
) -> tuple[Node, int]:
    try:
        flags, m, size = _NODE_FIXED.unpack_from(blob, offset)
    except struct.error as exc:
        raise StorageError("truncated HTree node record") from exc
    offset += _NODE_FIXED.size

    if len(blob) < offset + 4 * m + 8 * 4 * m:
        raise StorageError("truncated HTree node record")
    ends = np.frombuffer(blob, dtype="<u4", count=m, offset=offset)
    offset += 4 * m
    synopsis = np.frombuffer(blob, dtype="<f8", count=4 * m, offset=offset)
    offset += 8 * 4 * m

    node = Node(next_id[0], Segmentation(ends), parent=parent)
    next_id[0] += 1
    node.size = int(size)
    node.synopsis = synopsis.reshape(m, 4).astype(DISTANCE_DTYPE)

    if flags & _FLAG_LEAF:
        (file_position,) = _LEAF_TAIL.unpack_from(blob, offset)
        offset += _LEAF_TAIL.size
        node.file_position = int(file_position)
    else:
        (
            split_segment,
            vertical,
            use_std,
            threshold,
            route_start,
            route_end,
        ) = _INTERNAL_TAIL.unpack_from(blob, offset)
        offset += _INTERNAL_TAIL.size
        child_seg = (
            node.segmentation.split_vertically(split_segment)
            if vertical
            else node.segmentation
        )
        node.policy = SplitPolicy(
            split_segment=split_segment,
            vertical=bool(vertical),
            use_std=bool(use_std),
            threshold=float(threshold),
            route_start=int(route_start),
            route_end=int(route_end),
            child_segmentation=child_seg,
        )
        node.left, offset = _unpack_node(blob, offset, node, next_id)
        node.right, offset = _unpack_node(blob, offset, node, next_id)
        node.is_leaf = False
    return node, offset
