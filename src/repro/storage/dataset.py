"""The raw input dataset.

Every method in the paper consumes the same artifact: a headerless binary
file of float32 series.  :class:`Dataset` abstracts over an on-disk
:class:`~repro.storage.files.SeriesFile` (reads counted in IOStats, the
realistic configuration) and an in-memory array (fast path for unit tests),
exposing batch reads in both cases so the double-buffered index-building
pipeline and the scan baselines share one access pattern.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional

import numpy as np

from repro.errors import StorageError
from repro.storage.files import PathLike, SeriesFile
from repro.storage.iostats import IOStats
from repro.types import SERIES_DTYPE, as_series_matrix


class Dataset:
    """A collection of equal-length data series, on disk or in memory."""

    def __init__(
        self,
        *,
        array: Optional[np.ndarray] = None,
        file: Optional[SeriesFile] = None,
    ) -> None:
        if (array is None) == (file is None):
            raise ValueError("provide exactly one of array= or file=")
        self._array = as_series_matrix(array) if array is not None else None
        self._file = file

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_array(cls, data: np.ndarray) -> "Dataset":
        """Wrap an in-memory batch of series."""
        return cls(array=data)

    @classmethod
    def open(
        cls,
        path: PathLike,
        series_length: int,
        stats: Optional[IOStats] = None,
    ) -> "Dataset":
        """Open an existing on-disk dataset file read-only."""
        file = SeriesFile(path, series_length, stats=stats, read_only=True)
        return cls(file=file)

    @classmethod
    def write(cls, path: PathLike, data: np.ndarray) -> "Dataset":
        """Materialize ``data`` to ``path`` and open it (write then reopen).

        The write is not I/O-accounted: producing the dataset is workload
        generation, not part of any measured method.
        """
        arr = as_series_matrix(data)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(arr.tobytes())
        return cls.open(path, arr.shape[1])

    # -- accessors ---------------------------------------------------------

    @property
    def on_disk(self) -> bool:
        return self._file is not None

    @property
    def path(self) -> Optional[Path]:
        return self._file.path if self._file is not None else None

    @property
    def stats(self) -> Optional[IOStats]:
        return self._file.stats if self._file is not None else None

    @property
    def num_series(self) -> int:
        if self._array is not None:
            return self._array.shape[0]
        return self._file.num_series

    @property
    def series_length(self) -> int:
        if self._array is not None:
            return self._array.shape[1]
        return self._file.series_length

    @property
    def total_bytes(self) -> int:
        return self.num_series * self.series_length * SERIES_DTYPE.itemsize

    def read_batch(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` series starting at position ``start``."""
        if start < 0 or count < 0 or start + count > self.num_series:
            raise StorageError(
                f"read_batch({start}, {count}) outside dataset with "
                f"{self.num_series} series"
            )
        if self._array is not None:
            return self._array[start : start + count]
        return self._file.read_range(start, count)

    def read_series(self, position: int) -> np.ndarray:
        return self.read_batch(position, 1)[0]

    def read_positions(self, positions: np.ndarray) -> np.ndarray:
        """Read series at sorted positions, coalescing consecutive runs.

        Mirrors :meth:`repro.storage.files.SeriesFile.read_positions`:
        one read (one seek at most) per run of adjacent positions, which
        is what the skip-sequential refinement phases of ParIS+ and
        VA+file rely on.
        """
        pos = np.asarray(positions, dtype=np.int64)
        rows: list[np.ndarray] = []
        start = 0
        total = pos.shape[0]
        while start < total:
            end = start + 1
            while end < total and pos[end] == pos[end - 1] + 1:
                end += 1
            rows.append(self.read_batch(int(pos[start]), end - start))
            start = end
        if not rows:
            return np.empty((0, self.series_length), dtype=SERIES_DTYPE)
        return np.concatenate(rows, axis=0)

    def iter_batches(self, batch_size: int) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_position, batch)`` pairs covering the dataset."""
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        for start in range(0, self.num_series, batch_size):
            count = min(batch_size, self.num_series - start)
            yield start, self.read_batch(start, count)

    def load_all(self) -> np.ndarray:
        """Read the full dataset into memory."""
        return self.read_batch(0, self.num_series)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        where = str(self.path) if self.on_disk else "memory"
        return (
            f"Dataset({self.num_series} series x {self.series_length} "
            f"points, {where})"
        )
