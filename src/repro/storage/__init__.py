"""Disk-backed storage with I/O accounting.

The paper materializes a Hercules index into three files (Section 3.3):
HTree (the tree), LRDFile (raw series in leaf-inorder), and LSDFile (their
iSAX summaries in the same order).  This package provides those formats
plus the shared byte/record file machinery and the I/O statistics layer
that makes random-vs-sequential access patterns measurable.
"""

from repro.storage.iostats import IOSnapshot, IOStats
from repro.storage.cache import CacheSnapshot, LeafCache
from repro.storage.faults import CrashFault, FaultInjector, FaultPlan, TransientFault, inject
from repro.storage.files import BinaryFile, SeriesFile, SymbolFile
from repro.storage.dataset import Dataset
from repro.storage.manifest import (
    MANIFEST_FILENAME,
    ArtifactRecord,
    Manifest,
    load_manifest,
    save_manifest,
    stream_crc32,
)

__all__ = [
    "IOSnapshot",
    "IOStats",
    "CacheSnapshot",
    "LeafCache",
    "BinaryFile",
    "SeriesFile",
    "SymbolFile",
    "Dataset",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "TransientFault",
    "inject",
    "MANIFEST_FILENAME",
    "ArtifactRecord",
    "Manifest",
    "load_manifest",
    "save_manifest",
    "stream_crc32",
]
