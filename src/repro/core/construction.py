"""Parallel index building (Section 3.3.2, Algorithms 1-5, Figure 3).

A coordinator thread reads the dataset in batches into one half of the
DBuffer while InsertWorker threads drain the other half into the tree,
storing raw series in their HBuffer regions.  When enough regions fill
up, the first InsertWorker becomes the FlushCoordinator and spills every
leaf's in-memory series to the spill file while the other workers wait
(Algorithms 3-4).  The synchronization objects — DBarrier,
ContinueBarrier, FlushBarrier, handshake bits, FetchAdd counters — map
one-to-one onto the paper's pseudocode.

Insertion runs in one of two modes:

* **Grouped batch insertion** (the default, :func:`insert_batch`):
  workers claim index *ranges* from the DBuffer counter, route the whole
  claim down the tree with one vectorized predicate per node, and take
  each leaf lock once per (leaf, group) — bulk HBuffer store, one
  vectorized synopsis update, splits consuming the group in
  capacity-sized chunks.  Split order follows the arrival index of the
  triggering series (a min-heap over pending groups), so the resulting
  tree — node ids, leaf contents, synopses — is bit-for-bit identical to
  the per-row path.  This is the ParIS+ move (per-series work → batch
  passes) applied to the whole construction pipeline.
* **Per-row insertion** (:func:`insert_series`,
  ``batched_inserts=False``): the reference implementation, one Python
  call per series, kept for parity tests and the build benchmark's
  baseline.

``num_build_threads == 1`` selects a sequential path that performs the
same insertions and flushes without worker threads; the resulting tree is
identical in distribution (thread interleaving only permutes insertion
order, which the tree's splits do not depend on once all series arrive).
"""

from __future__ import annotations

import heapq
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.core.atomic import Barrier, FetchAdd, Flag, HandshakeBit
from repro.core.buffers import DoubleBuffer, HBuffer
from repro.core.config import HerculesConfig
from repro.core.node import Node, SpillExtent, synopsis_from_stats
from repro.core.split import choose_split
from repro.errors import ConfigError
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.summarization.eapca import BatchSketch, Segmentation, SeriesSketch

logger = logging.getLogger(__name__)


class PhaseTimers:
    """Thread-safe accumulated wall seconds per construction phase.

    Insert workers accumulate locally and fold in once per batched call,
    so the hot path pays two ``perf_counter`` reads per phase per group,
    not a lock per row.  The phases mirror the paper's Table 4
    decomposition of index building: routing, storing, splitting, and
    flushing.
    """

    PHASES = ("route", "store", "split", "flush")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds = {phase: 0.0 for phase in self.PHASES}

    def add(self, phase: str, seconds: float) -> None:
        with self._lock:
            self._seconds[phase] += seconds

    def seconds(self) -> dict:
        """A snapshot of the per-phase totals."""
        with self._lock:
            return dict(self._seconds)


@dataclass
class BuildContext:
    """Shared state of one index-building run."""

    root: Node
    hbuffer: HBuffer
    spill: SeriesFile
    config: HerculesConfig
    node_ids: FetchAdd = field(default_factory=lambda: FetchAdd(1))
    #: Number of leaf splits performed (reported by build statistics).
    splits: FetchAdd = field(default_factory=lambda: FetchAdd(0))
    #: Number of flush phases executed.
    flushes: FetchAdd = field(default_factory=lambda: FetchAdd(0))
    #: Per-phase wall-time accumulators (route/store/split/flush).
    timers: PhaseTimers = field(default_factory=PhaseTimers)

    def next_node_id(self) -> int:
        return self.node_ids.fetch_add(1)


def new_build_context(
    dataset: Dataset, config: HerculesConfig, spill: SeriesFile
) -> BuildContext:
    """Create the root node, HBuffer, and shared counters for a build."""
    length = dataset.series_length
    if config.initial_segments > length:
        raise ConfigError(
            f"initial_segments={config.initial_segments} exceeds the series "
            f"length {length}"
        )
    root = Node(0, Segmentation.uniform(length, config.initial_segments))
    workers = config.num_insert_workers
    # A worker only processes a batch when its region can absorb it whole
    # (Algorithm 2 line 6), so each region must fit one effective batch or
    # the batch could find no worker at all.
    effective_db = min(config.db_size, dataset.num_series)
    capacity = config.buffer_capacity
    if capacity is None:
        capacity = max(dataset.num_series, workers * effective_db)
    hbuffer = HBuffer(capacity, length, workers)
    min_region = min(hbuffer.region_capacity(w) for w in range(workers))
    if min_region < effective_db:
        raise ConfigError(
            f"HBuffer regions of {min_region} series cannot absorb DBuffer "
            f"batches of {effective_db}; raise buffer_capacity or lower "
            f"db_size/num_build_threads"
        )
    return BuildContext(root=root, hbuffer=hbuffer, spill=spill, config=config)


# ---------------------------------------------------------------------------
# Algorithm 5: InsertSeriesToNode
# ---------------------------------------------------------------------------


def route_to_leaf(node: Node, sketch: SeriesSketch) -> Node:
    """Descend from ``node`` to the leaf a series belongs to (lock-free).

    Split publication order (children and policy before ``is_leaf``)
    makes the unlocked reads safe; the caller re-checks leafness under
    the lock (Algorithm 5 lines 2-6).
    """
    while not node.is_leaf:
        node = node.route(sketch)
    return node


def insert_series(ctx: BuildContext, worker: int, series: np.ndarray) -> None:
    """Insert one raw series into the tree (Algorithm 5)."""
    sketch = SeriesSketch(series)
    node = route_to_leaf(ctx.root, sketch)
    node.lock.acquire()
    while not node.is_leaf:
        # Another thread split this node while we were acquiring the lock.
        node.lock.release()
        node = route_to_leaf(node, sketch)
        node.lock.acquire()
    try:
        means, stds = sketch.stats(node.segmentation)
        node.update_synopsis(means, stds)
        slot = ctx.hbuffer.store(worker, series)
        node.sbuffer.append(slot)
        node.size += 1
        if node.size > ctx.config.leaf_capacity:
            _split_leaf(ctx, node)
    finally:
        node.lock.release()


# ---------------------------------------------------------------------------
# Grouped batch insertion (the batched counterpart of Algorithm 5)
# ---------------------------------------------------------------------------


def insert_batch(ctx: BuildContext, worker: int, rows: np.ndarray) -> None:
    """Insert a claim of raw series into the tree as routed groups.

    Routing, synopsis updates, and HBuffer stores are whole-group NumPy
    passes; leaf locks are taken once per (leaf, group).  Groups that
    will split are processed in ascending order of the arrival index of
    the series that triggers the split (a min-heap keyed on that index),
    which reproduces the per-row path's split — and therefore node-id —
    sequence exactly: the tree built from any claim decomposition is
    bit-for-bit the tree :func:`insert_series` builds row by row.
    """
    count = rows.shape[0]
    if count == 0:
        return
    timers = ctx.timers
    with obs.span("build.insert_batch", worker=worker, rows=count) as sp:
        started = time.perf_counter()
        sketch = BatchSketch(rows)
        groups = _route_groups(ctx.root, sketch, np.arange(count, dtype=np.int64))
        timers.add("route", time.perf_counter() - started)
        sp.set("groups", len(groups))
        # Heap entries: (trigger arrival index, tiebreak, node, row indices).
        heap: list = []
        ticket = 0
        for node, idx in groups:
            heapq.heappush(heap, (_trigger(ctx, node, idx), ticket, node, idx))
            ticket += 1
        while heap:
            _, _, node, idx = heapq.heappop(heap)
            for child, sub in _insert_group(ctx, worker, node, idx, sketch):
                heapq.heappush(
                    heap, (_trigger(ctx, child, sub), ticket, child, sub)
                )
                ticket += 1


def _trigger(ctx: BuildContext, node: Node, idx: np.ndarray) -> int:
    """Arrival index at which ``node`` would first split absorbing ``idx``.

    Groups too small to split are keyed by their last row: they assign no
    node ids, so their position in the processing order is immaterial.
    """
    need = ctx.config.leaf_capacity + 1 - node.size
    return int(idx[min(max(need, 1), idx.size) - 1])


def _route_groups(
    node: Node, sketch: BatchSketch, idx: np.ndarray
) -> list:
    """Partition ``idx`` among the leaves below ``node`` (lock-free).

    One vectorized routing predicate per internal node; boolean masking
    preserves ascending order, so every group arrives at its leaf in
    arrival order.  The same split-publication ordering that makes
    :func:`route_to_leaf` safe makes these unlocked reads safe.
    """
    groups: list = []
    stack = [(node, idx)]
    while stack:
        node, idx = stack.pop()
        if idx.size == 0:
            continue
        if node.is_leaf:
            groups.append((node, idx))
            continue
        policy = node.policy
        means, stds = sketch.range_stats(
            policy.route_start, policy.route_end, rows=idx
        )
        left = policy.route_left_batch(means, stds)
        stack.append((node.right, idx[~left]))
        stack.append((node.left, idx[left]))
    return groups


def _insert_group(
    ctx: BuildContext,
    worker: int,
    node: Node,
    idx: np.ndarray,
    sketch: BatchSketch,
) -> list:
    """Insert a routed group into ``node`` up to and including one split.

    Returns the sub-groups still to be inserted: the post-split remainder
    partitioned among the children, the same node again after a
    degenerate split, or a re-routing of the whole group when another
    worker split the node before this one acquired the lock.
    """
    while True:
        node.lock.acquire()
        if node.is_leaf:
            break
        # Another thread split this node while we were acquiring the lock.
        node.lock.release()
        started = time.perf_counter()
        groups = _route_groups(node, sketch, idx)
        ctx.timers.add("route", time.perf_counter() - started)
        return groups
    try:
        need = ctx.config.leaf_capacity + 1 - node.size
        if idx.size < need:
            _append_group(ctx, worker, node, idx, sketch)
            return []
        # Fill the leaf to one past capacity (``max(need, 1)`` keeps the
        # one-row-then-retry cadence of the per-row path on leaves left
        # over capacity by a degenerate split), then split and hand the
        # remainder back for re-routing.
        head = max(need, 1)
        _append_group(ctx, worker, node, idx[:head], sketch)
        _split_leaf(ctx, node)
        rest = idx[head:]
        if rest.size == 0:
            return []
        if node.is_leaf:
            # Degenerate split: the leaf stays over capacity; per-row
            # semantics retry after every subsequent insert.
            return [(node, rest)]
        policy = node.policy
        started = time.perf_counter()
        means, stds = sketch.range_stats(
            policy.route_start, policy.route_end, rows=rest
        )
        left = policy.route_left_batch(means, stds)
        ctx.timers.add("route", time.perf_counter() - started)
        out = []
        if left.any():
            out.append((node.left, rest[left]))
        if not left.all():
            out.append((node.right, rest[~left]))
        return out
    finally:
        node.lock.release()


def _append_group(
    ctx: BuildContext,
    worker: int,
    node: Node,
    idx: np.ndarray,
    sketch: BatchSketch,
) -> None:
    """Bulk-append a group to a leaf (caller holds the leaf lock)."""
    started = time.perf_counter()
    means, stds = sketch.stats(node.segmentation, rows=idx)
    node.update_synopsis_batch(means, stds)
    start = ctx.hbuffer.store_batch(worker, _gather_rows(sketch.rows, idx))
    node.sbuffer.extend(range(start, start + idx.size))
    node.size += idx.size
    ctx.timers.add("store", time.perf_counter() - started)


def _gather_rows(rows: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """The selected rows, as a view when ``idx`` is a contiguous run."""
    first = int(idx[0])
    if idx.size == int(idx[-1]) - first + 1:
        return rows[first : first + idx.size]
    return rows[idx]


def leaf_data(ctx: BuildContext, leaf: Node) -> np.ndarray:
    """All series of a leaf: spilled extents first, then HBuffer rows.

    Matches Algorithm 5 line 12 ("get all data series in N from memory
    and disk").  The caller must hold the leaf lock or otherwise have
    exclusive access.  The gather fills one preallocated matrix (spill
    extents copied into slices, HBuffer rows taken in place) instead of
    concatenating per-extent parts — splits and phase-2 leaf processing
    both sit on this path.
    """
    n_spilled = sum(extent.count for extent in leaf.spill_extents)
    total = n_spilled + len(leaf.sbuffer)
    out = np.empty(
        (total, ctx.hbuffer.series_length), dtype=ctx.hbuffer._data.dtype
    )
    row = 0
    for extent in leaf.spill_extents:
        out[row : row + extent.count] = ctx.spill.read_range(
            extent.position, extent.count
        )
        row += extent.count
    if leaf.sbuffer:
        ctx.hbuffer.get_rows(leaf.sbuffer, out=out[row:])
    return out


def _split_leaf(ctx: BuildContext, node: Node) -> None:
    """Split an over-capacity leaf (Algorithm 5 lines 9-14).

    The caller holds the node lock.  Series are fetched from memory and
    disk, redistributed by the best split policy, and the node becomes an
    internal node.  Children inherit the in-memory slots by reference;
    spilled series are re-spilled into fresh per-child extents (the old
    extents become dead space in the append-only spill file).
    """
    started = time.perf_counter()
    with obs.span("build.split", node=node.node_id, size=node.size) as sp:
        data = leaf_data(ctx, node)
        decision = choose_split(
            node.segmentation,
            data,
            allow_vertical=ctx.config.allow_vertical_splits,
            allow_std=ctx.config.allow_std_routing,
        )
        if decision is None:
            # Every candidate statistic is constant across the series (e.g.
            # a degenerate dataset of identical series): the leaf is allowed
            # to exceed its capacity.
            sp.set("degenerate", True)
        else:
            _apply_split(ctx, node, data, decision)
            sp.set("vertical", decision.policy.vertical)
    ctx.timers.add("split", time.perf_counter() - started)


def _apply_split(ctx: BuildContext, node: Node, data, decision) -> None:
    """Redistribute a leaf's series into two children and publish them."""
    policy = decision.policy
    left = Node(ctx.next_node_id(), policy.child_segmentation, parent=node)
    right = Node(ctx.next_node_id(), policy.child_segmentation, parent=node)

    mask = decision.left_mask
    for child, child_mask in ((left, mask), (right, ~mask)):
        child.synopsis = synopsis_from_stats(
            decision.child_means[child_mask], decision.child_stds[child_mask]
        )
        child.size = int(child_mask.sum())

    # Rows [0, n_spilled) of ``data`` came from the spill file, the rest
    # from HBuffer slots in sbuffer order.
    n_spilled = sum(extent.count for extent in node.spill_extents)
    slots = np.asarray(node.sbuffer, dtype=np.int64)
    memory_mask = mask[n_spilled:]
    left.sbuffer = [int(s) for s in slots[memory_mask]]
    right.sbuffer = [int(s) for s in slots[~memory_mask]]

    if n_spilled:
        spill_mask = mask[:n_spilled]
        for child, child_rows in (
            (left, data[:n_spilled][spill_mask]),
            (right, data[:n_spilled][~spill_mask]),
        ):
            if child_rows.shape[0]:
                position = ctx.spill.append_batch(child_rows)
                child.spill_extents.append(
                    SpillExtent(position, child_rows.shape[0])
                )

    # Publish children and policy before flipping is_leaf so lock-free
    # routing never observes an internal node without a policy.
    node.left = left
    node.right = right
    node.policy = policy
    node.sbuffer = []
    node.spill_extents = []
    node.is_leaf = False
    ctx.splits.fetch_add(1)


# ---------------------------------------------------------------------------
# Flushing (Algorithms 3-4)
# ---------------------------------------------------------------------------


def materialize_flush(ctx: BuildContext) -> None:
    """Spill every leaf's in-memory series and reset HBuffer regions.

    Runs with all InsertWorkers quiescent (they are parked between the
    ContinueBarrier and the FlushBarrier).
    """
    started = time.perf_counter()
    with obs.io_span("build.flush", ctx.spill.stats) as sp:
        spilled = 0
        for leaf in ctx.root.iter_leaves_inorder():
            if not leaf.sbuffer:
                continue
            rows = ctx.hbuffer.get_rows(leaf.sbuffer)
            position = ctx.spill.append_batch(rows)
            leaf.spill_extents.append(SpillExtent(position, rows.shape[0]))
            leaf.sbuffer = []
            spilled += rows.shape[0]
        ctx.hbuffer.reset_regions()
        flush_number = ctx.flushes.fetch_add(1) + 1
        sp.set_attrs(flush_number=flush_number, spilled_series=spilled)
    ctx.timers.add("flush", time.perf_counter() - started)
    logger.debug(
        "flush %d: spill file now holds %d series",
        flush_number,
        ctx.spill.num_series,
    )


class _BuildShared:
    """Synchronization objects shared by the coordinator and workers."""

    def __init__(self, config: HerculesConfig, series_length: int) -> None:
        workers = config.num_insert_workers
        self.dbuffer = DoubleBuffer(config.db_size, series_length)
        self.dbarrier = Barrier(workers + 1)
        self.continue_barrier = Barrier(workers)
        self.flush_barrier = Barrier(workers)
        self.flush_counter = FetchAdd(0)
        self.flush_order = Flag(False)
        self.handshakes = [HandshakeBit() for _ in range(workers)]
        self.errors: list[BaseException] = []
        self.error_lock = threading.Lock()

    def report_error(self, exc: BaseException) -> None:
        with self.error_lock:
            self.errors.append(exc)

    def abort_barriers(self) -> None:
        self.dbarrier.abort()
        self.continue_barrier.abort()
        self.flush_barrier.abort()


def _insert_worker(
    ctx: BuildContext, shared: _BuildShared, worker: int
) -> None:
    """Algorithm 2 (InsertWorker) with Algorithms 3-4 as its flush phase."""
    is_flush_coordinator = worker == 0
    batched = ctx.config.batched_inserts
    claim = ctx.config.effective_claim_size
    toggle = 0
    try:
        while not shared.dbuffer[toggle].finished.get():
            half = shared.dbuffer[toggle]
            region_has_space = ctx.hbuffer.free_slots(worker) >= half.size
            if region_has_space and batched:
                # Claim index *ranges* instead of single positions: one
                # FetchAdd and one insert_batch per ``claim`` series.
                pos = half.counter.fetch_add(claim)
                while pos < half.size:
                    end = min(pos + claim, half.size)
                    insert_batch(ctx, worker, half.data[pos:end])
                    pos = half.counter.fetch_add(claim)
            elif region_has_space:
                pos = half.counter.fetch_add(1)
                while pos < half.size:
                    insert_series(ctx, worker, half.data[pos])
                    pos = half.counter.fetch_add(1)
            shared.dbarrier.wait()
            if is_flush_coordinator:
                _flush_coordinator(ctx, shared, worker)
            else:
                _flush_worker(ctx, shared, worker)
            toggle = 1 - toggle
    except threading.BrokenBarrierError:
        return  # another thread failed; its error is already recorded
    except BaseException as exc:  # noqa: BLE001 - propagate to the caller
        shared.report_error(exc)
        shared.abort_barriers()


def _flush_coordinator(
    ctx: BuildContext, shared: _BuildShared, worker: int
) -> None:
    """Algorithm 3: decide whether to flush, then do it."""
    config = ctx.config
    with obs.span("build.flush.coordinator", worker=worker) as sp:
        shared.handshakes[worker].raise_bit()
        for bit in shared.handshakes:
            # Escape hatch: if a peer died before raising its bit, fail
            # this worker too instead of waiting forever (its error is
            # recorded).
            while not bit.await_raised(timeout=0.5):
                if shared.errors:
                    raise RuntimeError(
                        "flush handshake aborted: a worker failed"
                    )
        my_region_full = ctx.hbuffer.free_slots(worker) < config.db_size
        if (
            my_region_full
            or shared.flush_counter.load() >= config.flush_threshold
        ):
            shared.flush_order.set(True)
            shared.flush_counter.store(0)
        shared.continue_barrier.wait()
        shared.handshakes[worker].lower_bit()
        flushed = shared.flush_order.get()
        sp.set("flushed", flushed)
        if flushed:
            materialize_flush(ctx)
            shared.flush_barrier.wait()
            shared.flush_order.clear()


def _flush_worker(ctx: BuildContext, shared: _BuildShared, worker: int) -> None:
    """Algorithm 4: hand-shake with the coordinator, wait out a flush."""
    with obs.span("build.flush.worker", worker=worker) as sp:
        if ctx.hbuffer.free_slots(worker) < ctx.config.db_size:
            shared.flush_counter.fetch_add(1)
        shared.handshakes[worker].raise_bit()
        shared.continue_barrier.wait()
        shared.handshakes[worker].lower_bit()
        waited = shared.flush_order.get()
        sp.set("waited_for_flush", waited)
        if waited:
            shared.flush_barrier.wait()


# ---------------------------------------------------------------------------
# Algorithm 1: BuildHerculesIndex (the coordinator)
# ---------------------------------------------------------------------------


def build_tree(
    dataset: Dataset,
    config: HerculesConfig,
    spill: SeriesFile,
    context: Optional[BuildContext] = None,
) -> BuildContext:
    """Build the Hercules tree over ``dataset``; returns the build context.

    Leaves hold their series as HBuffer slots plus spill extents; the
    index-writing phase (:mod:`repro.core.writing`) turns this into
    LRDFile/LSDFile/HTree.
    """
    ctx = context if context is not None else new_build_context(dataset, config, spill)
    logger.info(
        "building tree over %d series x %d points (%d thread(s), "
        "HBuffer %d series)",
        dataset.num_series,
        dataset.series_length,
        config.num_build_threads,
        ctx.hbuffer.capacity,
    )
    with obs.span(
        "build.tree",
        num_series=dataset.num_series,
        num_threads=config.num_build_threads,
    ) as sp:
        if config.num_build_threads == 1:
            _build_sequential(ctx, dataset)
        else:
            _build_parallel(ctx, dataset)
        sp.set_attrs(splits=ctx.splits.load(), flushes=ctx.flushes.load())
        sp.set_attrs(
            **{
                f"{phase}_seconds": round(seconds, 6)
                for phase, seconds in ctx.timers.seconds().items()
            }
        )
    logger.info(
        "tree built: %d splits, %d flushes",
        ctx.splits.load(),
        ctx.flushes.load(),
    )
    return ctx


def _build_sequential(ctx: BuildContext, dataset: Dataset) -> None:
    """Single-thread path: same inserts and flushes, no protocol."""
    config = ctx.config
    claim = config.effective_claim_size
    batches = dataset.iter_batches(config.db_size)
    while True:
        # The batch read happens lazily inside the generator; pulling it
        # under an explicit span keeps the buffering phase visible in
        # traces of the sequential path too.
        with obs.span("build.buffering") as sp:
            item = next(batches, None)
            if item is not None:
                sp.set_attrs(position=item[0], count=item[1].shape[0])
        if item is None:
            break
        _, batch = item
        if ctx.hbuffer.free_slots(0) < batch.shape[0]:
            materialize_flush(ctx)
        # One check per batch instead of one store-time check per row: a
        # flush (or the initial sizing) must have left room for the whole
        # batch, including the boundary case of an exactly-full region.
        assert ctx.hbuffer.free_slots(0) >= batch.shape[0], (
            f"HBuffer region cannot absorb a {batch.shape[0]}-series batch "
            f"after flushing ({ctx.hbuffer.free_slots(0)} slots free)"
        )
        if config.batched_inserts:
            for start in range(0, batch.shape[0], claim):
                insert_batch(ctx, 0, batch[start : start + claim])
        else:
            for row in batch:
                insert_series(ctx, 0, row)


def _build_parallel(ctx: BuildContext, dataset: Dataset) -> None:
    """The coordinator of Algorithm 1 plus its InsertWorker threads."""
    config = ctx.config
    shared = _BuildShared(config, dataset.series_length)
    total = dataset.num_series

    toggle = 0
    first = min(config.db_size, total)
    with obs.span("build.buffering", position=0, count=first):
        shared.dbuffer[toggle].fill(dataset.read_batch(0, first))
    toggle = 1 - toggle

    # Worker threads start with an empty span stack, so the tree-build
    # span is captured here and attached to each worker span explicitly.
    parent = obs.current_span()

    def run_worker(worker: int) -> None:
        with obs.span("build.insert_worker", parent=parent, worker=worker):
            _insert_worker(ctx, shared, worker)

    threads = [
        threading.Thread(
            target=run_worker,
            args=(worker,),
            name=f"hercules-insert-{worker}",
            daemon=True,
        )
        for worker in range(config.num_insert_workers)
    ]
    for thread in threads:
        thread.start()

    try:
        position = first
        while position < total:
            count = min(config.db_size, total - position)
            with obs.span("build.buffering", position=position, count=count):
                shared.dbuffer[toggle].fill(
                    dataset.read_batch(position, count)
                )
            toggle = 1 - toggle
            shared.dbarrier.wait()
            # Workers just finished the half filled one iteration earlier,
            # which after the flip is the current ``toggle`` half.
            _check_batch_consumed(shared, toggle)
            position += count
        shared.dbuffer[toggle].finished.set(True)
        shared.dbarrier.wait()
        _check_batch_consumed(shared, 1 - toggle)
    except threading.BrokenBarrierError:
        pass
    finally:
        for thread in threads:
            thread.join()
    if shared.errors:
        raise shared.errors[0]


def _check_batch_consumed(shared: _BuildShared, toggle: int) -> None:
    """Safety net: a batch left unconsumed would mean silent data loss.

    Cannot happen while flush_threshold < num_insert_workers (at least one
    worker always has room for a batch), but a violated invariant must
    fail loudly rather than drop series.
    """
    half = shared.dbuffer[toggle]
    if half.counter.load() < half.size:
        shared.abort_barriers()
        raise RuntimeError(
            "index building dropped a batch: every InsertWorker region was "
            "full; this indicates a flush-protocol bug"
        )
