"""In-RAM iSAX fingerprint pre-filter: whole-array screening before descent.

Filter-and-refine designs (VA+file, the in-memory SIMD summary scans of
ParIS+) show that a cheap, memory-resident first stage can prune the
vast majority of candidates before any tree descent or disk touch.  This
module adds that tier to Hercules: a bit-packed **signature array** of
per-series iSAX words — every series' full-resolution SAX symbols
reduced to a small uniform cardinality (``prefilter_bits`` per segment)
— materialized at build time as a checksummed manifest artifact
(``signatures.bin``) and loaded whole into memory on ``open``.

A query runs one vectorized LB_SAX (mindist) pass over the *entire*
array against the live BSF², using the VA-file lookup-table trick: per
segment a ``2^bits``-entry table of squared gaps from the query's PAA
value to each reduced-symbol region is built once (O(2^bits)), then the
N signatures index into it, keeping the scan at O(N·segments) regardless
of cardinality.  An optional Hamming pre-screen lower-bounds that table
sum with one uint8 mismatch matmul and restricts the exact gather to its
survivors.

Soundness: a reduced-cardinality region contains the full-resolution
region, so the screen's bound is ≤ the full-resolution LB_SAX ≤ the true
Euclidean distance.  Pruning with any valid lower bound against the
monotonically decreasing BSF never changes exact answers — the screened
pipeline is parity-gated bit-for-bit against the unfiltered one.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import StorageError
from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE, SYMBOL_DTYPE

__all__ = [
    "SIGNATURES_FILENAME",
    "SIGNATURES_FORMAT_VERSION",
    "SignatureArray",
    "pack_signatures",
    "reduce_symbols",
    "unpack_signatures",
]

SIGNATURES_FILENAME = "signatures.bin"
SIGNATURES_FORMAT_VERSION = 1

_MAGIC = b"HSIG"
#: magic + (format_version, bits, segments, alphabet, num_series) as u32.
_HEADER = struct.Struct("<4sIIIII")


def reduce_symbols(
    full_symbols: np.ndarray, space: SaxSpace, bits: int
) -> np.ndarray:
    """Full-resolution SAX symbols reduced to ``bits`` of cardinality.

    The reduced value is the top ``bits`` bits of each symbol — exactly
    the iSAX prefix an :class:`~repro.summarization.isax.IsaxWord` at
    uniform cardinality ``bits`` would carry.
    """
    if not 1 <= bits <= space.bits_per_symbol:
        raise ValueError(
            f"bits must be in [1, {space.bits_per_symbol}], got {bits}"
        )
    sym = np.asarray(full_symbols)
    shift = space.bits_per_symbol - bits
    return (sym >> shift).astype(SYMBOL_DTYPE)


def pack_signatures(reduced: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack reduced symbols row-major, MSB-first, padded per row.

    Each row packs ``segments * bits`` bits into ``ceil(.../8)`` bytes,
    so rows stay byte-aligned and the file is seekable by row.
    """
    reduced = np.asarray(reduced, dtype=np.uint8)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint8)
    # (rows, segments, bits) of 0/1, MSB of each symbol first.
    expanded = (reduced[:, :, None] >> shifts[None, None, :]) & 1
    flat = expanded.reshape(reduced.shape[0], -1)
    return np.packbits(flat, axis=1)


def unpack_signatures(
    packed: np.ndarray, segments: int, bits: int
) -> np.ndarray:
    """Invert :func:`pack_signatures` back to a reduced-symbol matrix."""
    packed = np.asarray(packed, dtype=np.uint8)
    flat = np.unpackbits(packed, axis=1)[:, : segments * bits]
    expanded = flat.reshape(packed.shape[0], segments, bits)
    weights = (1 << np.arange(bits - 1, -1, -1, dtype=np.uint16))
    return (expanded * weights[None, None, :]).sum(axis=2).astype(SYMBOL_DTYPE)


class SignatureArray:
    """The memory-resident signature array of one index (or shard).

    Holds the N×segments reduced-symbol matrix plus the precomputed
    breakpoint-edge indices of each reduced symbol's region, so a query
    pays only the per-segment table build and the gathers.
    """

    def __init__(self, reduced: np.ndarray, space: SaxSpace, bits: int) -> None:
        reduced = np.ascontiguousarray(reduced, dtype=np.uint8)
        if reduced.ndim != 2 or reduced.shape[1] != space.segments:
            raise ValueError(
                f"expected a (N, {space.segments}) reduced-symbol matrix, "
                f"got shape {reduced.shape}"
            )
        self.reduced = reduced
        self.space = space
        self.bits = bits
        self.num_series = reduced.shape[0]
        cardinality = 1 << bits
        full = space.alphabet_size
        # Region of reduced symbol v: full symbols [v*w, (v+1)*w) with
        # w = 2^(B-bits); the value region is bounded by the extended
        # breakpoints at those indices (clamped for non-power-of-two
        # alphabets, where the last region is narrower).
        width = 1 << (space.bits_per_symbol - bits)
        values = np.arange(cardinality, dtype=np.int64)
        self._lower_idx = np.minimum(values * width, full)
        self._upper_idx = np.minimum((values + 1) * width, full)
        self._edges = np.concatenate(
            ([-np.inf], space.breakpoints, [np.inf])
        ).astype(DISTANCE_DTYPE)
        # Cached per-(bits, space) table machinery: the region edge
        # values every gap table is built from, and the flattened
        # (segment, symbol) gather index of the signature matrix.  Both
        # depend only on the array itself, so they are materialized once
        # at load instead of once per ``screen()`` call.
        self._lower_edges = self._edges[self._lower_idx]  # (2^bits,)
        self._upper_edges = self._edges[self._upper_idx]
        segment_base = (
            np.arange(space.segments, dtype=np.int64) * cardinality
        )
        self._flat_index = (
            segment_base[None, :] + reduced.astype(np.int64)
        )  # (N, segments): row i gathers tables.ravel()[flat_index[i]]

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_full_symbols(
        cls, full_symbols: np.ndarray, space: SaxSpace, bits: int
    ) -> "SignatureArray":
        """Build from a full-resolution LSD symbol matrix."""
        return cls(reduce_symbols(full_symbols, space, bits), space, bits)

    # -- persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the checksummable ``signatures.bin`` artifact (fsynced)."""
        path = Path(path)
        header = _HEADER.pack(
            _MAGIC,
            SIGNATURES_FORMAT_VERSION,
            self.bits,
            self.space.segments,
            self.space.alphabet_size,
            self.num_series,
        )
        payload = pack_signatures(self.reduced, self.bits)
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(payload.tobytes())
            handle.flush()
            os.fsync(handle.fileno())

    @classmethod
    def load(cls, path: Union[str, Path], space: SaxSpace) -> "SignatureArray":
        """Load and decode an artifact written by :meth:`save`.

        The packed payload is memory-mapped and decoded once into the
        resident reduced-symbol matrix; validation errors raise
        :class:`~repro.errors.StorageError` naming the file.
        """
        path = Path(path)
        try:
            raw = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot read signatures at {path}: {exc}") from exc
        if raw.shape[0] < _HEADER.size:
            raise StorageError(f"{path}: truncated signature header")
        magic, version, bits, segments, alphabet, num_series = _HEADER.unpack(
            raw[: _HEADER.size].tobytes()
        )
        if magic != _MAGIC:
            raise StorageError(f"{path}: bad magic {magic!r}")
        if version != SIGNATURES_FORMAT_VERSION:
            raise StorageError(
                f"{path}: unsupported signature format version {version}"
            )
        if segments != space.segments or alphabet != space.alphabet_size:
            raise StorageError(
                f"{path}: signatures for a {segments}-segment/{alphabet}-symbol "
                f"space, index uses {space.segments}/{space.alphabet_size}"
            )
        row_bytes = (segments * bits + 7) // 8
        expected = _HEADER.size + num_series * row_bytes
        if raw.shape[0] != expected:
            raise StorageError(
                f"{path}: payload holds {raw.shape[0] - _HEADER.size} bytes, "
                f"expected {num_series * row_bytes}"
            )
        packed = np.asarray(raw[_HEADER.size :]).reshape(num_series, row_bytes)
        reduced = unpack_signatures(packed, segments, bits)
        return cls(reduced, space, bits)

    # -- screening ------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Resident size of the decoded signature matrix."""
        return self.reduced.nbytes

    def _gap_tables(self, query_paa: np.ndarray) -> np.ndarray:
        """Per-segment squared-gap lookup tables, shape (segments, 2^bits).

        ``tables[j, v]`` is the squared distance from the query's PAA
        value in segment j to the value region of reduced symbol v (zero
        when the value falls inside).
        """
        q = np.asarray(query_paa, dtype=DISTANCE_DTYPE)
        if q.shape != (self.space.segments,):
            raise ValueError(
                f"query PAA must have shape ({self.space.segments},), "
                f"got {q.shape}"
            )
        lower = self._lower_edges  # cached at load, (2^bits,)
        upper = self._upper_edges
        gap = np.maximum(
            np.maximum(lower[None, :] - q[:, None], q[:, None] - upper[None, :]),
            0.0,
        )
        return gap * gap

    def _gap_tables_batch(self, queries_paa: np.ndarray) -> np.ndarray:
        """Gap tables for a whole query block, shape (Q, segments, 2^bits).

        One vectorized build over the cached region edges — the batched
        analog of :meth:`_gap_tables`, bit-identical per query.
        """
        qs = np.asarray(queries_paa, dtype=DISTANCE_DTYPE)
        if qs.ndim != 2 or qs.shape[1] != self.space.segments:
            raise ValueError(
                f"queries PAA must have shape (Q, {self.space.segments}), "
                f"got {qs.shape}"
            )
        lower = self._lower_edges[None, None, :]
        upper = self._upper_edges[None, None, :]
        gap = np.maximum(
            np.maximum(lower - qs[:, :, None], qs[:, :, None] - upper), 0.0
        )
        return gap * gap

    def _gap_sq_sums(
        self, tables: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Σ_j tables[j, reduced[i, j]] for every row (or the given rows)."""
        reduced = self.reduced if rows is None else self.reduced[rows]
        total = np.zeros(reduced.shape[0], dtype=DISTANCE_DTYPE)
        for j in range(self.space.segments):
            total += tables[j, reduced[:, j]]
        return total

    def lower_bounds(
        self, query_paa: np.ndarray, series_length: int
    ) -> np.ndarray:
        """LB_SAX at reduced cardinality for every series (linear space).

        Matches ``SaxSpace.mindist`` evaluated on the reduced regions:
        always ≤ the full-resolution mindist ≤ the true distance.
        """
        tables = self._gap_tables(query_paa)
        scale = series_length / self.space.segments
        return np.sqrt(scale * self._gap_sq_sums(tables))

    def screen(
        self,
        query_paa: np.ndarray,
        bsf_squared: float,
        series_length: int,
        prune_factor: float = 1.0,
        hamming: bool = True,
    ) -> np.ndarray:
        """Survivor mask: True where the series may still beat the BSF.

        A row survives iff ``scale·gap²·prune_factor² < bsf_squared`` —
        entirely in squared space, no square roots.  With ``hamming`` a
        cheaper sound pre-screen runs first: per segment the weight
        ``w_j = min over v ≠ query-symbol of tables[j, v]`` (the squared
        distance from the query's PAA value to the nearest edge of its
        own reduced cell) lower-bounds every mismatching table entry, so
        ``Σ_j w_j·mismatch`` lower-bounds the exact table sum and the
        exact gather runs only over its survivors.
        """
        if not np.isfinite(bsf_squared):
            return np.ones(self.num_series, dtype=bool)
        tables = self._gap_tables(query_paa)
        scale = series_length / self.space.segments
        factor_sq = scale * prune_factor * prune_factor
        # survive ⇔ factor_sq · total < bsf² ⇔ total < cutoff
        cutoff = bsf_squared / factor_sq
        mask = np.zeros(self.num_series, dtype=bool)
        if hamming and tables.shape[1] > 1:
            q_reduced = reduce_symbols(
                self.space.symbolize(np.asarray(query_paa)), self.space, self.bits
            ).astype(np.uint8)
            others = np.ma.masked_array(tables, mask=np.zeros_like(tables, bool))
            others.mask[np.arange(self.space.segments), q_reduced] = True
            weights = others.min(axis=1).filled(0.0).astype(DISTANCE_DTYPE)
            mismatch = self.reduced != q_reduced[None, :]
            lb_ham = mismatch @ weights
            alive = np.nonzero(lb_ham < cutoff)[0]
        else:
            alive = np.arange(self.num_series)
        if alive.shape[0]:
            totals = self._gap_sq_sums(tables, rows=alive)
            mask[alive[totals < cutoff]] = True
        return mask

    def screen_batch(
        self,
        queries_paa: np.ndarray,
        bsf_squared: np.ndarray,
        series_length: int,
        prune_factor: float = 1.0,
        chunk_rows: int = 0,
    ) -> np.ndarray:
        """One whole-workload screen: a (Q, N) survivor mask in one pass.

        The batched analog of :meth:`screen`: all Q gap tables are built
        in one vectorized op over the cached region edges, then the
        cached flat gather index pulls every (query, series, segment)
        entry in one fancy-indexing gather per row chunk and a matmul
        with the all-ones segment vector reduces it to the (Q, N) exact
        table sums — one gather + one matmul instead of Q independent
        passes.  ``bsf_squared`` is the per-query BSF² vector; rows with
        an infinite BSF survive wholesale without being screened.

        The bound computed per (query, series) pair is the same sound
        LB_SAX the serial screen uses, so batch answers stay value-
        identical to serial ones; ``chunk_rows`` (0 = auto) bounds the
        transient gather to a fixed memory budget.
        """
        qs = np.asarray(queries_paa, dtype=DISTANCE_DTYPE)
        bsf = np.asarray(bsf_squared, dtype=DISTANCE_DTYPE)
        if qs.ndim != 2 or bsf.shape != (qs.shape[0],):
            raise ValueError(
                f"expected (Q, segments) PAA block and (Q,) BSF² vector, "
                f"got {qs.shape} and {bsf.shape}"
            )
        num_queries = qs.shape[0]
        mask = np.ones((num_queries, self.num_series), dtype=bool)
        active = np.nonzero(np.isfinite(bsf))[0]
        if active.shape[0] == 0 or self.num_series == 0:
            return mask
        tables = self._gap_tables_batch(qs[active])
        flat_tables = np.ascontiguousarray(
            tables.reshape(active.shape[0], -1)
        )
        scale = series_length / self.space.segments
        factor_sq = scale * prune_factor * prune_factor
        cutoffs = bsf[active] / factor_sq  # (A,)
        segments = self.space.segments
        if chunk_rows <= 0:
            # Bound the transient (A, rows, segments) gather to ~32 MB.
            budget = 4 * 1024 * 1024
            chunk_rows = max(256, budget // max(1, active.shape[0] * segments))
        ones = np.ones(segments, dtype=DISTANCE_DTYPE)
        survive = np.empty((active.shape[0], self.num_series), dtype=bool)
        for start in range(0, self.num_series, chunk_rows):
            end = min(start + chunk_rows, self.num_series)
            idx = self._flat_index[start:end].ravel()
            gathered = flat_tables[:, idx].reshape(
                active.shape[0], end - start, segments
            )
            totals = gathered @ ones  # (A, rows)
            survive[:, start:end] = totals < cutoffs[:, None]
        mask[active] = survive
        return mask
