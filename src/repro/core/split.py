"""Split-policy selection (``getBestSplitPolicy`` of Algorithm 5).

When a leaf exceeds its capacity τ, Hercules — like DSTree — picks among
horizontal and vertical candidate splits on every segment, routing either
on the segment mean or on its standard deviation (Section 3.2).

Every series of the overflowing leaf is in memory at split time, so we
evaluate candidates against the *actual* series statistics (the original
DSTree scores hypothetical children from synopsis ranges only; using exact
statistics at the leaf is a behaviour-preserving refinement documented in
DESIGN.md).  The quality measure is the EAPCA *box diameter*

    D = Σ_i ℓ_i · ((μ_i^max − μ_i^min)² + (σ_i^max − σ_i^min)²),

the squared width of the node's synopsis box, which upper-bounds how far
apart two members of the node can appear to LB_EAPCA.  Each candidate is
scored by the diameter reduction it achieves *measured under its own child
segmentation* — ``D(all series) − size-weighted mean D(children)`` — and
the largest reduction wins.  Measuring parent and children under the same
segmentation is essential: a coarse segmentation hides structure (every
series looks alike under one segment), so comparing candidates across
different segmentations would systematically favour splits that reveal
the least.

Candidates considered for a node with m segments:

* H-split of segment i on mean or stddev (2m candidates);
* V-split of segment i, routing on the mean or stddev of either half
  (up to 4m candidates; halves shorter than one point are skipped).

Thresholds are the midrange of the observed routing statistic, so any
candidate whose statistic is not constant yields two non-empty children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.node import SplitPolicy
from repro.summarization.eapca import Segmentation
from repro.types import DISTANCE_DTYPE


class LeafStats:
    """Cumulative sums over a leaf's data matrix for O(1) range statistics.

    One O(k·n) pass supports per-series (mean, std) over any point range —
    every split candidate and every child segmentation reuses it.  The
    prefix arithmetic is bit-identical to :func:`segment_stats` (and the
    EAPCA sketches): the statistics seeded into child synopses at split
    time must *exactly* bound what a query recomputes for the same rows.
    """

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D leaf matrix, got ndim={arr.ndim}")
        self.count, self.length = arr.shape
        # In-place construction: the sums accumulate straight off the
        # raw rows (``dtype=`` widens each addend, the same chain as a
        # pre-cast cumsum), the squares land in the cumsq buffer after
        # an explicit widening copy — squaring float32 rows straight
        # into a float64 output would run the float32 loop and only
        # cast the result.
        self._cumsum = np.empty(
            (self.count, self.length + 1), dtype=DISTANCE_DTYPE
        )
        self._cumsum[:, 0] = 0.0
        np.cumsum(arr, axis=1, dtype=DISTANCE_DTYPE, out=self._cumsum[:, 1:])
        self._cumsq = np.empty_like(self._cumsum)
        self._cumsq[:, 0] = 0.0
        self._cumsq[:, 1:] = arr
        np.square(self._cumsq[:, 1:], out=self._cumsq[:, 1:])
        np.cumsum(self._cumsq[:, 1:], axis=1, out=self._cumsq[:, 1:])

    def range_stats(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-series (means, stds) over ``[start, end)``."""
        if not 0 <= start < end <= self.length:
            raise ValueError(f"invalid range [{start}, {end})")
        size = end - start
        sums = self._cumsum[:, end] - self._cumsum[:, start]
        sq_sums = self._cumsq[:, end] - self._cumsq[:, start]
        means = sums / size
        variances = sq_sums / size - means * means
        np.maximum(variances, 0.0, out=variances)
        return means, np.sqrt(variances)

    def segmentation_stats(
        self, segmentation: Segmentation
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-series per-segment (means, stds) under ``segmentation``."""
        ends = np.asarray(segmentation.ends, dtype=np.int64)
        starts = np.asarray(segmentation.starts, dtype=np.int64)
        sums = self._cumsum[:, ends] - self._cumsum[:, starts]
        sq_sums = self._cumsq[:, ends] - self._cumsq[:, starts]
        lengths = segmentation.lengths
        means = sums / lengths
        variances = sq_sums / lengths - means * means
        np.maximum(variances, 0.0, out=variances)
        return means, np.sqrt(variances)


def box_diameter(
    means: np.ndarray, stds: np.ndarray, lengths: np.ndarray
) -> float:
    """EAPCA box diameter of a set of series (see module docstring)."""
    mu_range = means.max(axis=0) - means.min(axis=0)
    sd_range = stds.max(axis=0) - stds.min(axis=0)
    return float(np.dot(lengths, mu_range * mu_range + sd_range * sd_range))


@dataclass(frozen=True)
class SplitDecision:
    """The winning split with everything needed to execute it."""

    policy: SplitPolicy
    #: Boolean mask over the leaf's series: True → left child.
    left_mask: np.ndarray
    #: Per-series (means, stds) under the child segmentation, reusable to
    #: build both children's synopses without another data pass.
    child_means: np.ndarray
    child_stds: np.ndarray


def _candidate_routes(
    stats: LeafStats, start: int, end: int, allow_std: bool
) -> list[tuple[bool, float, np.ndarray]]:
    """Valid (use_std, threshold, left_mask) routings over one range."""
    means, stds = stats.range_stats(start, end)
    statistics = [(False, means)]
    if allow_std:
        statistics.append((True, stds))
    routes = []
    for use_std, values in statistics:
        low, high = float(values.min()), float(values.max())
        if low == high:
            continue  # constant statistic cannot separate the series
        threshold = (low + high) / 2.0
        routes.append((use_std, threshold, values < threshold))
    return routes


def choose_split(
    segmentation: Segmentation,
    data: np.ndarray,
    allow_vertical: bool = True,
    allow_std: bool = True,
) -> Optional[SplitDecision]:
    """Pick the best split for a leaf holding ``data``.

    ``allow_vertical`` / ``allow_std`` restrict the candidate set to
    horizontal splits or mean-only routing — the ablation switches for
    the paper's Section 3.2 claim that adapting resolution along *both*
    dimensions (and on both statistics) is what EAPCA trees gain over
    fixed-split indexes.

    Returns ``None`` when no candidate separates the series (all series
    identical under every candidate statistic); the caller then lets the
    leaf exceed its capacity, which is the only sound option.

    Scoring is vectorized across candidates that share a child
    segmentation (every H-split does; each segment's V-splits do): the
    candidate masks stack into one boolean matrix and both children's
    box diameters come out of a handful of whole-stack reductions, so
    the cost per split is a few dozen NumPy calls instead of a dozen
    *per candidate*.  Splits sit on both the batched and the per-row
    construction paths, so this is shared-phase time.
    """
    stats = LeafStats(data)
    total = stats.count

    # Collect candidates in the canonical order of the reference loop
    # (per segment: H on mean/std, then V per half on mean/std); ties in
    # benefit break toward the earliest candidate.
    candidates: list[tuple] = []
    for index in range(segmentation.num_segments):
        seg_start, seg_end = segmentation.segment_range(index)
        for use_std, threshold, left_mask in _candidate_routes(
            stats, seg_start, seg_end, allow_std
        ):
            candidates.append(
                (index, False, segmentation, seg_start, seg_end,
                 use_std, threshold, left_mask)
            )
        if allow_vertical and seg_end - seg_start >= 2:
            child_seg = segmentation.split_vertically(index)
            mid = (seg_start + seg_end) // 2
            for half_start, half_end in ((seg_start, mid), (mid, seg_end)):
                for use_std, threshold, left_mask in _candidate_routes(
                    stats, half_start, half_end, allow_std
                ):
                    candidates.append(
                        (index, True, child_seg, half_start, half_end,
                         use_std, threshold, left_mask)
                    )
    if not candidates:
        return None

    # Candidate segmentations are few (the node's own, plus one V-split
    # per segment); cache their per-series stats and whole-leaf diameter.
    seg_stats_cache: dict[
        Segmentation, tuple[np.ndarray, np.ndarray, float]
    ] = {}

    def stats_for(seg: Segmentation) -> tuple[np.ndarray, np.ndarray, float]:
        cached = seg_stats_cache.get(seg)
        if cached is None:
            means, stds = stats.segmentation_stats(seg)
            parent_d = box_diameter(means, stds, seg.lengths)
            cached = (means, stds, parent_d)
            seg_stats_cache[seg] = cached
        return cached

    groups: dict[Segmentation, list[int]] = {}
    for i, cand in enumerate(candidates):
        groups.setdefault(cand[2], []).append(i)

    benefits = np.full(len(candidates), -np.inf)
    for child_seg, members in groups.items():
        child_means, child_stds, parent_d = stats_for(child_seg)
        lengths = child_seg.lengths
        # One composite (2m, series) matrix lets a single min/max pass
        # cover both statistics; the diameter weights repeat accordingly.
        # Scoring happens in float32: the masked reductions are memory
        # bound, and the diameter is only a *ranking* heuristic — the
        # winning candidate's synopsis statistics stay float64.
        composite = np.ascontiguousarray(
            np.concatenate([child_means, child_stds], axis=1).T,
            dtype=np.float32,
        )
        weights = np.concatenate([lengths, lengths]).astype(np.float32)
        masks = np.stack([candidates[i][7] for i in members])
        n_left = masks.sum(axis=1)
        n_right = total - n_left
        d_left, d_right = _stacked_diameters(masks, composite, weights)
        weighted = (n_left * d_left + n_right * d_right) / total
        scores = parent_d - weighted
        # A candidate with an empty child separates nothing (the routes
        # already guarantee non-empty children; this is belt-and-braces).
        scores[(n_left == 0) | (n_right == 0)] = -np.inf
        benefits[members] = scores

    best = -1
    best_benefit = 0.0
    for i, benefit in enumerate(benefits):
        if benefit > best_benefit:
            best_benefit = float(benefit)
            best = i
    if best < 0:
        return None
    index, vertical, child_seg, route_start, route_end, use_std, threshold, \
        left_mask = candidates[best]
    child_means, child_stds, _ = stats_for(child_seg)
    policy = SplitPolicy(
        split_segment=index,
        vertical=vertical,
        use_std=use_std,
        threshold=threshold,
        route_start=route_start,
        route_end=route_end,
        child_segmentation=child_seg,
    )
    return SplitDecision(
        policy=policy,
        left_mask=left_mask,
        child_means=child_means,
        child_stds=child_stds,
    )


def _stacked_diameters(
    masks: np.ndarray, composite: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Box diameters of both children for a stack of candidate masks.

    ``masks`` has shape ``(candidates, series)`` (True → left child);
    ``composite`` holds the per-series means and stds side by side,
    *statistic-major* (``(2m, series)``), with ``weights`` the segment
    lengths repeated to match.  Returns (left, right) diameters, one
    per candidate.

    Two tricks keep this on NumPy's fast paths.  Instead of masking
    against ±inf (which needs a separate temporary for min and for
    max), the unselected series are overwritten with one that *is*
    selected — a member's values never move a min or a max — so a
    single materialized ``(candidates, 2m, series)`` array serves both
    reductions, and the right side reuses the same selection with the
    ``where`` arguments swapped.  And the statistic-major layout puts
    the long series axis innermost, so the ``where`` and the reductions
    run contiguous k-length inner loops instead of 2m-length ones.
    """
    # First True / first False series per candidate; with an empty side
    # the index degenerates to 0 but the caller scores that side -inf.
    fill_left = composite[:, masks.argmax(axis=1)].T[:, :, None]
    fill_right = composite[:, masks.argmin(axis=1)].T[:, :, None]
    sel = masks[:, None, :]
    stacked = composite[None]
    diameters = []
    for member_values in (
        np.where(sel, stacked, fill_left),
        np.where(sel, fill_right, stacked),
    ):
        rng = member_values.max(axis=2)
        rng -= member_values.min(axis=2)
        diameters.append((rng * rng) @ weights)
    return diameters[0], diameters[1]
