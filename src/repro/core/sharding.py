"""Shard-parallel engine: IndexShard partitioning + scatter-gather.

Python's GIL caps the single-process Hercules build at one core of
useful CPU work (the paper's 24-thread numbers assume real parallelism).
This module scales past it the way ParIS+/MESSI scale distance-series
indexes across cores: partition the dataset into ``N`` disjoint row
ranges, build one *complete, self-contained* Hercules index per range
(an **index shard** — its own DBuffer space, tree, LRDFile/LSDFile and
MANIFEST under ``shard-XXXX/``), and coordinate queries scatter-gather.

Correctness rests on two facts:

* exact k-NN over a disjoint union is exact by construction — the global
  top-k is a subset of the union of per-shard top-k sets;
* the min over shards of *local* k-th-best distances is, at every
  moment, an upper bound on the final *global* k-th best — so shards may
  prune against a shared global BSF² (broadcast through
  :class:`~repro.core.results.LinkedResultSet`) and a stale bound only
  weakens pruning, never the answer.

Layout on disk::

    index-dir/
      SHARDS.json          top-level manifest: generation, shard list
      shard-0000/          a complete single-index directory
        MANIFEST.json  htree.bin  lrd.bin  lsd.bin
      shard-0001/
        ...

``num_shards=1`` never takes this path: :meth:`ShardedIndex.build`
delegates to the classic :meth:`~repro.core.index.HerculesIndex.build`,
keeping today's single-directory layout byte-identical.  Global answer
positions are ``shard row_base + shard-local LRDFile position``.
"""

from __future__ import annotations

import bisect
import dataclasses
import functools
import logging
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.core.batch_query import BatchAnswer, BatchStats
from repro.core.config import HerculesConfig
from repro.core.index import BuildReport, HerculesIndex
from repro.core.query import QueryAnswer, QueryProfile
from repro.core.results import LinkedResultSet, SharedBsf
from repro.core.shard_worker import (
    GatherOutcome,
    ShardQueryPool,
    build_shards_in_processes,
)
from repro.errors import (
    ConfigError,
    IndexStateError,
    ManifestError,
    ReproError,
    ShardError,
    ShardTimeoutError,
    StorageError,
)
from repro.retry import RetryPolicy
from repro.storage import manifest as manifest_mod
from repro.storage.dataset import Dataset
from repro.storage.iostats import IOSnapshot

logger = logging.getLogger(__name__)

__all__ = [
    "ShardedBuildReport",
    "ShardedIndex",
    "ShardedQueryAnswer",
    "open_index",
    "partition_rows",
    "record_sharded_profile",
]


def partition_rows(num_series: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` row ranges, one per shard.

    The first ``num_series % num_shards`` shards get one extra row, so
    shard sizes differ by at most 1.  Contiguity is what makes the
    global position space trivial (``row_base + local position``) and
    keeps ``--shards 1`` equal to the unpartitioned input order.
    """
    if num_shards < 1:
        raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
    if num_series < num_shards:
        raise ConfigError(
            f"cannot partition {num_series} series into {num_shards} shards "
            "(each shard needs at least one series)"
        )
    base, extra = divmod(num_series, num_shards)
    ranges = []
    start = 0
    for shard_id in range(num_shards):
        stop = start + base + (1 if shard_id < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclass(frozen=True)
class ShardedBuildReport:
    """Aggregate timings of one sharded construction.

    Field-compatible with :class:`~repro.core.index.BuildReport` (so
    :func:`repro.obs.record_build` works on either): per-phase seconds
    are the **max over shards** — the critical path of a parallel build
    — while the work counters (series, splits, flushes, I/O) sum.
    ``wall_seconds`` is the coordinator's end-to-end wall-clock, which
    is what shard-scaling benchmarks should compare.
    """

    wall_seconds: float
    build_seconds: float
    write_seconds: float
    num_series: int
    num_leaves: int
    splits: int
    flushes: int
    io: IOSnapshot
    route_seconds: float = 0.0
    store_seconds: float = 0.0
    split_seconds: float = 0.0
    flush_seconds: float = 0.0
    #: Per-shard reports in shard-id order.
    shard_reports: tuple = ()
    #: Supervision interventions (all zero on a healthy build): worker
    #: processes respawned after dying, shard tasks requeued off dead
    #: workers, and shard builds retried after in-worker errors.
    worker_restarts: int = 0
    requeued_tasks: int = 0
    task_retries: int = 0

    @property
    def total_seconds(self) -> float:
        return self.wall_seconds

    @property
    def series_per_sec(self) -> float:
        """End-to-end construction throughput (wall-clock based).

        Unlike the single-index report this divides by *wall* time, not
        the phase-1 critical path: wall-clock is the honest number for a
        multi-process build (it includes the SharedMemory publish and
        worker startup the single-process path does not pay).
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_series / self.wall_seconds


@dataclass
class ShardedQueryAnswer(QueryAnswer):
    """A merged scatter-gather answer plus every shard's own answer.

    ``shard_answers`` holds ``(shard_id, QueryAnswer)`` pairs in shard
    order, positions already global — ``repro explain`` renders one row
    per shard from them.

    Degradation is never silent: ``coverage`` is the fraction of indexed
    series actually searched (1.0 on a healthy query), ``degraded`` is
    True when any shard was dropped under partial-results mode,
    ``shard_errors`` names every dropped shard with the reason, and
    ``retries`` counts the dispatch retries the answer cost.  A degraded
    answer is exact over the covered rows: it equals the fault-free
    answer restricted to the surviving shards.
    """

    shard_answers: tuple = ()
    coverage: float = 1.0
    degraded: bool = False
    shard_errors: tuple = ()
    retries: int = 0


def _merge_pairs(
    k: int,
    pairs: list,
    num_leaves: int,
    num_series: int,
    wall_seconds: float,
    coverage: float = 1.0,
    shard_errors: tuple = (),
    retries: int = 0,
) -> ShardedQueryAnswer:
    """One global answer from per-shard answers (positions global).

    Distances concatenate and the k smallest win (ties broken by
    position, like a stable single-index heap drain).  The aggregate
    profile sums work counters, takes per-phase times as the max over
    shards (phases run concurrently), and recomputes pruning ratios
    against the *global* leaf/series counts.
    """
    distances = np.concatenate([answer.distances for _, answer in pairs])
    positions = np.concatenate([answer.positions for _, answer in pairs])
    order = np.lexsort((positions, distances))[:k]
    profile = QueryProfile(path="sharded", time_total=wall_seconds)
    sax_ran = False
    io_parts = []
    for _, answer in pairs:
        p = answer.profile
        profile.approx_leaves += p.approx_leaves
        profile.candidate_leaves += p.candidate_leaves
        profile.candidate_series += p.candidate_series
        profile.prefilter_screened += p.prefilter_screened
        profile.prefilter_survivors += p.prefilter_survivors
        profile.distance_computations += p.distance_computations
        profile.points_compared += p.points_compared
        profile.points_total += p.points_total
        profile.series_accessed += p.series_accessed
        profile.cache_hits += p.cache_hits
        profile.cache_misses += p.cache_misses
        profile.time_approx = max(profile.time_approx, p.time_approx)
        profile.time_candidates = max(profile.time_candidates, p.time_candidates)
        profile.time_refine = max(profile.time_refine, p.time_refine)
        if p.sax_pruning is not None:
            sax_ran = True
        if p.io is not None:
            io_parts.append(p.io)
    profile.eapca_pruning = (
        1.0 - profile.candidate_leaves / num_leaves if num_leaves else 0.0
    )
    if sax_ran and num_series:
        profile.sax_pruning = 1.0 - profile.candidate_series / num_series
    if io_parts:
        profile.io = functools.reduce(lambda a, b: a + b, io_parts)
    return ShardedQueryAnswer(
        distances=distances[order],
        positions=positions[order],
        profile=profile,
        shard_answers=tuple(pairs),
        coverage=coverage,
        degraded=bool(shard_errors),
        shard_errors=tuple(shard_errors),
        retries=retries,
    )


def _revive_report(doc: dict) -> BuildReport:
    """A BuildReport back from the dict a build worker shipped home."""
    fields = dict(doc)
    fields["io"] = IOSnapshot(**fields["io"])
    return BuildReport(**fields)


class ShardedIndex:
    """N disjoint index shards behind one scatter-gather facade.

    Query answering defaults to one coordinator *thread* per shard —
    query phases release the GIL inside NumPy kernels, and threads share
    the global BSF² at memory speed.  Opening with ``workers > 0``
    instead keeps a persistent pool of worker *processes* (each owning a
    subset of shards, caches staying warm across queries) for workloads
    whose per-query Python overhead dominates.
    """

    def __init__(
        self,
        directory: Path,
        shards: list[HerculesIndex],
        row_bases: list[int],
        manifest,
        config: HerculesConfig,
        build_report: Optional[ShardedBuildReport] = None,
        owns_directory: bool = False,
        pool: Optional[ShardQueryPool] = None,
        worker_metric_states: Optional[list] = None,
    ) -> None:
        self.directory = directory
        self.shards = shards
        self.row_bases = row_bases
        self.manifest = manifest
        self.config = config
        self.build_report = build_report
        self._owns_directory = owns_directory
        self._pool = pool
        self._worker_metric_states = worker_metric_states or []
        self._closed = False

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: Union[np.ndarray, Dataset],
        config: Optional[HerculesConfig] = None,
        directory: Optional[Union[str, Path]] = None,
        cache_bytes: int = 0,
    ):
        """Build a sharded index (or a plain one when ``num_shards=1``).

        ``config.num_shards`` selects the partition count and
        ``config.shard_workers`` the build processes (``None`` →
        ``min(num_shards, cpu_count)``; ``0``/``1`` builds the shards
        sequentially in this process, which is what deterministic tests
        use).  With one shard this delegates to
        :meth:`HerculesIndex.build` — same files, same bytes.
        """
        config = config if config is not None else HerculesConfig()
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        n = config.num_shards
        if n <= 1:
            if directory is not None:
                # A leftover SHARDS.json would shadow the plain layout.
                Path(directory).mkdir(parents=True, exist_ok=True)
                (Path(directory) / manifest_mod.SHARDS_FILENAME).unlink(
                    missing_ok=True
                )
            return HerculesIndex.build(
                dataset, config, directory=directory, cache_bytes=cache_bytes
            )

        owns_directory = directory is None
        directory = (
            Path(tempfile.mkdtemp(prefix="hercules-shards-"))
            if directory is None
            else Path(directory)
        )
        directory.mkdir(parents=True, exist_ok=True)
        generation = manifest_mod.next_generation(directory)
        ranges = partition_rows(dataset.num_series, n)
        shard_dirs = [
            directory / manifest_mod.shard_dirname(i) for i in range(n)
        ]
        shard_config = config.with_options(num_shards=1, shard_workers=None)
        workers = (
            config.shard_workers
            if config.shard_workers is not None
            else min(n, os.cpu_count() or 1)
        )

        reports: list[BuildReport] = []
        worker_metric_states: list = []
        supervision = None
        wall_started = time.perf_counter()
        trace = obs.get_trace()
        with obs.span(
            "build.sharded", num_shards=n, workers=workers
        ) as parent_span:
            if workers > 1:
                replies, supervision = build_shards_in_processes(
                    dataset.load_all(),
                    ranges,
                    shard_dirs,
                    shard_config,
                    workers,
                    trace_enabled=trace is not None,
                )
                hub = obs.get_hub()
                for shard_id in range(n):
                    payload = replies[shard_id]
                    reports.append(_revive_report(payload["report"]))
                    worker_metric_states.append(payload["metrics"])
                    if trace is not None and payload["spans"]:
                        trace.absorb_spans(
                            payload["spans"],
                            thread_prefix=f"shard{shard_id}/",
                            parent=parent_span,
                        )
                    if hub is not None and payload.get("events"):
                        hub.journal.merge_state(
                            payload["events"], shard=shard_id
                        )
            else:
                for shard_id, (start, stop) in enumerate(ranges):
                    rows = dataset.read_batch(start, stop - start)
                    with obs.span("build.shard", shard=shard_id):
                        shard = HerculesIndex.build(
                            rows, shard_config, directory=shard_dirs[shard_id]
                        )
                    reports.append(shard.build_report)
                    worker_metric_states.append(None)
                    shard.close()
        wall_seconds = time.perf_counter() - wall_started

        records = []
        for shard_id, (start, _) in enumerate(ranges):
            shard_dir = shard_dirs[shard_id]
            sub = manifest_mod.load_manifest(shard_dir)
            crc = manifest_mod.stream_crc32(
                shard_dir / manifest_mod.MANIFEST_FILENAME
            )
            records.append(
                manifest_mod.ShardRecord(
                    name=manifest_mod.shard_dirname(shard_id),
                    row_base=start,
                    num_series=sub.num_series,
                    num_leaves=sub.num_leaves,
                    manifest_crc32=crc,
                )
            )
        shard_manifest = manifest_mod.ShardManifest(
            num_shards=n,
            num_series=dataset.num_series,
            series_length=dataset.series_length,
            generation=generation,
            config_digest=manifest_mod.config_digest(
                dataclasses.asdict(config)
            ),
            shards=records,
        )
        manifest_mod.save_shard_manifest(directory, shard_manifest)
        # The directory is now authoritatively sharded: drop a leftover
        # plain-layout manifest and any shard dirs beyond the new count.
        (directory / manifest_mod.MANIFEST_FILENAME).unlink(missing_ok=True)
        _prune_stale_shards(directory, n)

        report = ShardedBuildReport(
            wall_seconds=wall_seconds,
            build_seconds=max(r.build_seconds for r in reports),
            write_seconds=max(r.write_seconds for r in reports),
            num_series=dataset.num_series,
            num_leaves=sum(r.num_leaves for r in reports),
            splits=sum(r.splits for r in reports),
            flushes=sum(r.flushes for r in reports),
            io=functools.reduce(
                lambda a, b: a + b, (r.io for r in reports)
            ),
            route_seconds=max(r.route_seconds for r in reports),
            store_seconds=max(r.store_seconds for r in reports),
            split_seconds=max(r.split_seconds for r in reports),
            flush_seconds=max(r.flush_seconds for r in reports),
            shard_reports=tuple(reports),
            worker_restarts=supervision.worker_restarts if supervision else 0,
            requeued_tasks=supervision.requeued_tasks if supervision else 0,
            task_retries=supervision.task_retries if supervision else 0,
        )
        logger.info(
            "sharded index ready: %d shards over %d series in %.2fs wall "
            "(%.0f series/s)",
            n,
            dataset.num_series,
            wall_seconds,
            report.series_per_sec,
        )
        obs.emit_event(
            "build_phase",
            phase="sharded_build",
            seconds=round(wall_seconds, 6),
            shards=n,
            num_series=dataset.num_series,
            worker_restarts=report.worker_restarts,
            requeued_tasks=report.requeued_tasks,
        )
        shards = [
            HerculesIndex.open(d, verify="off", cache_bytes=cache_bytes // n)
            for d in shard_dirs
        ]
        return cls(
            directory=directory,
            shards=shards,
            row_bases=[start for start, _ in ranges],
            manifest=shard_manifest,
            config=config,
            build_report=report,
            owns_directory=owns_directory,
            worker_metric_states=worker_metric_states,
        )

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        verify: str = "quick",
        cache_bytes: int = 0,
        workers: Optional[int] = None,
    ) -> "ShardedIndex":
        """Open a sharded directory (``SHARDS.json`` + shard sub-dirs).

        ``verify`` levels mirror :meth:`HerculesIndex.open` and recurse:
        ``quick``/``full`` first validate each shard sub-manifest against
        the committed top-level record (mixed generations and swapped
        shards are caught here), then verify the shard's own artifacts at
        the same level.  Every failure names the shard.

        The leaf-cache budget is **split evenly**: each shard gets
        ``cache_bytes // num_shards``.  ``workers > 0`` starts that many
        persistent query worker processes; ``None``/``0`` answers with
        in-process threads.
        """
        directory = Path(directory)
        if verify not in manifest_mod.VERIFY_LEVELS:
            raise ValueError(
                f"verify must be one of {manifest_mod.VERIFY_LEVELS}, "
                f"got {verify!r}"
            )
        manifest = manifest_mod.load_shard_manifest(directory)
        per_shard_cache = cache_bytes // max(manifest.num_shards, 1)
        shards: list[HerculesIndex] = []
        row_bases: list[int] = []
        try:
            for record in manifest.shards:
                if verify != "off":
                    manifest_mod.verify_shard_record(directory, record)
                try:
                    shard = HerculesIndex.open(
                        directory / record.name,
                        verify=verify,
                        cache_bytes=per_shard_cache,
                    )
                except ReproError as exc:
                    raise type(exc)(f"shard {record.name}: {exc}") from exc
                shards.append(shard)
                row_bases.append(record.row_base)
            total = sum(shard.num_series for shard in shards)
            if total != manifest.num_series:
                raise ManifestError(
                    f"shards hold {total} series but SHARDS.json records "
                    f"{manifest.num_series}: mixed generations"
                )
            expected_base = 0
            for record in manifest.shards:
                if record.row_base != expected_base:
                    raise ManifestError(
                        f"shard {record.name}: row_base {record.row_base} "
                        f"breaks the contiguous position space (expected "
                        f"{expected_base})"
                    )
                expected_base += record.num_series
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        config = shards[0].config.with_options(
            num_shards=manifest.num_shards
        )
        pool = None
        if workers is not None and workers > 0:
            specs = [
                (i, directory / record.name, record.row_base)
                for i, record in enumerate(manifest.shards)
            ]
            # Shards were just verified above; workers re-open cheaply.
            pool = ShardQueryPool(
                specs,
                workers,
                per_shard_cache,
                verify="off",
                max_worker_restarts=config.max_worker_restarts,
                join_timeout=config.query_join_timeout,
            )
        return cls(
            directory=directory,
            shards=shards,
            row_bases=row_bases,
            manifest=manifest,
            config=config,
            pool=pool,
        )

    # -- querying ------------------------------------------------------------

    def knn(
        self,
        query: np.ndarray,
        k: int = 1,
        config: Optional[HerculesConfig] = None,
        partial_results: Optional[bool] = None,
    ) -> ShardedQueryAnswer:
        """Exact k-NN, scatter-gather over every shard.

        Value-identical to a single index over the same rows: each shard
        runs the ordinary four-phase search pruning against the shared
        global BSF², and the coordinator keeps the k smallest of the
        union.

        Shard failures are retried per the configuration's
        :meth:`~repro.core.config.HerculesConfig.retry_policy`.  A shard
        that still fails raises :class:`ShardError` naming it — an exact
        query refuses to silently degrade — unless ``partial_results``
        (argument, else ``config.partial_results``) allows dropping it,
        in which case the answer comes back with ``degraded=True``,
        ``coverage`` < 1 and the dropped shards in ``shard_errors``.
        """
        return self._query(query, k, "exact", config, None, partial_results)

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        config: Optional[HerculesConfig] = None,
        partial_results: Optional[bool] = None,
    ) -> BatchAnswer:
        """Exact k-NN for a whole query batch: one scatter per shard.

        Each shard answers the complete batch through its own
        :meth:`HerculesIndex.knn_batch` (shared-leaf scans, matrix
        kernels) in a single dispatch — one pool round-trip per worker
        per batch instead of one per query — and per-query BSF² bounds
        broadcast across shards through a vector of shared cells, so a
        tight bound found by any shard prunes that query everywhere
        without ever crossing queries.  The merged result is per-query
        value-identical to :meth:`knn` run serially; batches larger than
        the pool's BSF-vector capacity are chunked transparently.

        Returns a :class:`~repro.core.batch_query.BatchAnswer` whose
        entries are :class:`ShardedQueryAnswer`s (list-compatible with
        the serial loop this replaces) and whose ``stats`` aggregate the
        shards' leaf-sharing metrics.  Failure policy matches
        :meth:`knn`, applied batch-wide: a dropped shard degrades every
        query in the batch (same coverage), a refused degradation
        raises for the whole batch.
        """
        self._check_open()
        arr = np.asarray(queries)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D query batch, got ndim={arr.ndim}")
        effective = config if config is not None else self.config
        policy = effective.retry_policy()
        allow_partial = (
            partial_results
            if partial_results is not None
            else effective.partial_results
        )
        if arr.shape[0] == 0:
            return BatchAnswer([], BatchStats())
        limit = (
            self._pool.batch_capacity
            if self._pool is not None
            else arr.shape[0]
        )
        answers: list = []
        stats = BatchStats(num_queries=arr.shape[0])
        for start in range(0, arr.shape[0], limit):
            chunk = arr[start : start + limit]
            batch = self._query_batch(chunk, k, config, policy, allow_partial)
            answers.extend(batch.answers)
            stats.unique_leaf_reads += batch.stats.unique_leaf_reads
            stats.leaf_uses += batch.stats.leaf_uses
            stats.kernel_rows += batch.stats.kernel_rows
            stats.screen_seconds += batch.stats.screen_seconds
            stats.total_seconds += batch.stats.total_seconds
        return BatchAnswer(answers, stats)

    def _query_batch(
        self,
        arr: np.ndarray,
        k: int,
        config: Optional[HerculesConfig],
        policy: RetryPolicy,
        allow_partial: bool,
    ) -> BatchAnswer:
        """Scatter one capacity-bounded chunk; settle into answers."""
        started = time.perf_counter()
        if self._pool is not None:
            outcome = self._pool.query_batch(arr, k, config=config, policy=policy)
        else:
            outcome = self._scatter_threads_batch(
                arr, k, config=config, policy=policy
            )
        wall = time.perf_counter() - started
        return self._settle_batch(arr.shape[0], k, outcome, allow_partial, wall)

    def knn_approx(
        self,
        query: np.ndarray,
        k: int = 1,
        l_max: Optional[int] = None,
        partial_results: Optional[bool] = None,
    ) -> ShardedQueryAnswer:
        """Approximate k-NN: each shard's best-first probe, merged.

        ``l_max`` bounds the leaves visited *per shard*, so an N-shard
        approximate search examines up to N·l_max leaves total — more
        work than a single index at the same setting, and at least as
        good an answer.  Failure handling matches :meth:`knn`.
        """
        return self._query(query, k, "approx", None, l_max, partial_results)

    def _query(
        self,
        query: np.ndarray,
        k: int,
        mode: str,
        config: Optional[HerculesConfig],
        l_max: Optional[int],
        partial_results: Optional[bool],
    ) -> ShardedQueryAnswer:
        """Scatter, gather, then apply the degradation policy."""
        self._check_open()
        effective = config if config is not None else self.config
        policy = effective.retry_policy()
        allow_partial = (
            partial_results
            if partial_results is not None
            else effective.partial_results
        )
        started = time.perf_counter()
        if self._pool is not None:
            outcome = self._pool.query(
                query, k, mode=mode, config=config, l_max=l_max, policy=policy
            )
        else:
            outcome = self._scatter_threads(
                query, k, mode=mode, config=config, l_max=l_max, policy=policy
            )
        wall = time.perf_counter() - started
        return self._settle(k, outcome, allow_partial, wall)

    def _settle(
        self, k: int, outcome: GatherOutcome, allow_partial: bool, wall: float
    ) -> ShardedQueryAnswer:
        """Turn a raw gather outcome into an answer or a refusal.

        Without partial-results the first failed shard raises (a
        :class:`ShardTimeoutError` stays one); with it, failed shards
        are dropped and the answer is flagged degraded with ``coverage``
        equal to the searched row fraction.  Losing *every* shard always
        raises — an empty answer is not a degraded answer.
        """
        coverage = self._degrade_or_raise(outcome, allow_partial)
        obs.observe_query(
            wall, coverage=coverage, degraded=bool(outcome.shard_errors)
        )
        return _merge_pairs(
            k,
            outcome.pairs,
            self.num_leaves,
            self.num_series,
            wall,
            coverage=coverage,
            shard_errors=tuple(
                (sid, _first_line(reason))
                for sid, reason in outcome.shard_errors
            ),
            retries=outcome.retries,
        )

    def _settle_batch(
        self,
        num_queries: int,
        k: int,
        outcome: GatherOutcome,
        allow_partial: bool,
        wall: float,
    ) -> BatchAnswer:
        """Per-query merge of a batched gather (pairs hold BatchAnswers).

        The degradation policy is applied once for the whole chunk —
        every query shares the scatter's coverage and dropped-shard set.
        Each query is then merged exactly as the serial path merges it
        (:func:`_merge_pairs` over that query's per-shard answers); wall
        time is amortized evenly, and the chunk's dispatch retries are
        attributed to the first query so workload-level retry counts
        stay accurate.  Shard-level :class:`BatchStats` (leaf reads and
        uses, kernel rows, screen time) sum across shards.
        """
        coverage = self._degrade_or_raise(outcome, allow_partial)
        degraded = bool(outcome.shard_errors)
        shard_errors = tuple(
            (sid, _first_line(reason))
            for sid, reason in outcome.shard_errors
        )
        per_query_wall = wall / num_queries if num_queries else 0.0
        merged = []
        for qi in range(num_queries):
            obs.observe_query(
                per_query_wall, coverage=coverage, degraded=degraded
            )
            merged.append(
                _merge_pairs(
                    k,
                    [(sid, batch[qi]) for sid, batch in outcome.pairs],
                    self.num_leaves,
                    self.num_series,
                    per_query_wall,
                    coverage=coverage,
                    shard_errors=shard_errors,
                    retries=outcome.retries if qi == 0 else 0,
                )
            )
        stats = BatchStats(num_queries=num_queries, total_seconds=wall)
        for _, batch in outcome.pairs:
            stats.unique_leaf_reads += batch.stats.unique_leaf_reads
            stats.leaf_uses += batch.stats.leaf_uses
            stats.kernel_rows += batch.stats.kernel_rows
            stats.screen_seconds += batch.stats.screen_seconds
        return BatchAnswer(merged, stats)

    def _degrade_or_raise(
        self, outcome: GatherOutcome, allow_partial: bool
    ) -> float:
        """Apply the failure policy; returns coverage or raises."""
        if outcome.shard_errors:
            names = sorted(sid for sid, _ in outcome.shard_errors)
            detail = "; ".join(
                f"shard {sid}: {reason}" for sid, reason in outcome.shard_errors
            )
            if not allow_partial:
                exc_type = (
                    ShardTimeoutError
                    if all(
                        "timeout" in reason or "deadline" in reason
                        for _, reason in outcome.shard_errors
                    )
                    else ShardError
                )
                raise exc_type(
                    f"shard(s) {names} failed after retries and "
                    "partial results are not allowed "
                    f"(pass partial_results=True to degrade): {detail}"
                )
            if not outcome.pairs:
                raise ShardError(
                    f"every shard failed; nothing to answer from: {detail}"
                )
            logger.warning(
                "degraded answer: dropped shard(s) %s after %d retries: %s",
                names, outcome.retries, detail,
            )
        coverage = self._coverage(outcome.pairs)
        if outcome.shard_errors:
            with obs.span(
                "query.degraded",
                coverage=round(coverage, 6),
                dropped=[sid for sid, _ in outcome.shard_errors],
            ):
                pass
            for sid, reason in outcome.shard_errors:
                obs.emit_event(
                    "shard_dropped", shard=sid, reason=_first_line(reason)
                )
            obs.emit_event(
                "query_degraded",
                coverage=round(coverage, 6),
                dropped=[sid for sid, _ in outcome.shard_errors],
                retries=outcome.retries,
            )
        return coverage

    def _coverage(self, pairs: list) -> float:
        """Fraction of indexed series the answering shards hold."""
        if not self.num_series:
            return 1.0
        answered = {shard_id for shard_id, _ in pairs}
        covered = sum(
            record.num_series
            for shard_id, record in enumerate(self.manifest.shards)
            if shard_id in answered
        )
        return covered / self.num_series

    def _scatter_threads(
        self,
        query: np.ndarray,
        k: int,
        mode: str,
        config: Optional[HerculesConfig] = None,
        l_max: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> GatherOutcome:
        """One thread per shard, all linked to one shared BSF² cell.

        Each thread retries its shard per ``policy`` (only storage/OS
        faults are retryable — a bad argument propagates immediately).
        The whole-query ``policy.deadline`` bounds the join: a thread
        still running past it is abandoned and its shard reported as
        timed out.  Per-attempt ``shard_timeout`` is advisory on the
        thread path (a running attempt cannot be interrupted in-thread;
        it stops further retries once exceeded) — the process pool
        enforces it preemptively.
        """
        policy = policy if policy is not None else RetryPolicy()
        link = SharedBsf()

        def attempt(shard_id: int, parent) -> tuple:
            shard = self.shards[shard_id]
            base = self.row_bases[shard_id]
            with obs.span("query.shard", parent=parent, shard=shard_id):
                io_before = shard.query_io.snapshot()
                results = LinkedResultSet(k, link)
                if mode == "approx":
                    answer = shard.knn_approx(
                        query, k=k, l_max=l_max, results=results
                    )
                else:
                    answer = shard.knn(
                        query, k=k, config=config, results=results
                    )
                answer.profile.io = shard.query_io.snapshot() - io_before
                answer.positions = answer.positions + base
                return (shard_id, answer)

        return self._run_scatter(
            attempt,
            policy,
            "query.sharded",
            k=k,
            shards=len(self.shards),
            mode=mode,
        )

    def _scatter_threads_batch(
        self,
        queries: np.ndarray,
        k: int,
        config: Optional[HerculesConfig] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> GatherOutcome:
        """One thread per shard, each answering the *whole* batch.

        Every query gets its own :class:`SharedBsf` cell; each shard
        thread links one :class:`LinkedResultSet` per query to the
        matching cell, so bounds broadcast across shards per query
        without ever leaking between queries.  Retry/deadline handling
        is the shared scatter scaffolding — a retried shard re-runs its
        whole batch against the (already tightened) bound vector, which
        only strengthens pruning and never the answers.
        """
        policy = policy if policy is not None else RetryPolicy()
        num_queries = int(queries.shape[0])
        links = [SharedBsf() for _ in range(num_queries)]

        def attempt(shard_id: int, parent) -> tuple:
            shard = self.shards[shard_id]
            base = self.row_bases[shard_id]
            with obs.span(
                "query.shard",
                parent=parent,
                shard=shard_id,
                queries=num_queries,
            ):
                results = [
                    LinkedResultSet(k, links[qi]) for qi in range(num_queries)
                ]
                batch = shard.knn_batch(
                    queries, k=k, config=config, results=results
                )
                for answer in batch:
                    answer.positions = answer.positions + base
                return (shard_id, batch)

        return self._run_scatter(
            attempt,
            policy,
            "query.batch.sharded",
            k=k,
            shards=len(self.shards),
            queries=num_queries,
        )

    def _run_scatter(
        self,
        attempt,
        policy: RetryPolicy,
        span_name: str,
        **span_attrs,
    ) -> GatherOutcome:
        """Thread-per-shard fan-out with retries, deadline, and gather.

        ``attempt(shard_id, parent_span)`` performs one dispatch and
        returns the ``(shard_id, payload)`` pair to gather; only
        storage/OS faults are retryable (a bad argument propagates
        immediately).  The whole-call ``policy.deadline`` bounds the
        join: a thread still running past it is abandoned and its shard
        reported as timed out.
        """
        pairs: list = [None] * len(self.shards)
        errors: list = [None] * len(self.shards)
        fatal: list[BaseException] = []
        outcome = GatherOutcome()
        retry_lock = threading.Lock()
        started = time.monotonic()
        with obs.span(span_name, **span_attrs):
            parent = obs.current_span()

            def out_of_time(attempt_started: float) -> bool:
                now = time.monotonic()
                if policy.deadline is not None and (
                    now - started >= policy.deadline
                ):
                    return True
                return policy.shard_timeout is not None and (
                    now - attempt_started >= policy.shard_timeout
                )

            def run(shard_id: int) -> None:
                for attempt_no in range(1, policy.attempts + 1):
                    attempt_started = time.monotonic()
                    try:
                        pairs[shard_id] = attempt(shard_id, parent)
                        return
                    except (StorageError, ShardError, OSError) as exc:
                        errors[shard_id] = (
                            f"{type(exc).__name__}: {exc} "
                            f"(after {attempt_no} attempts)"
                        )
                        if attempt_no >= policy.attempts or out_of_time(
                            attempt_started
                        ):
                            return
                        with retry_lock:
                            outcome.retries += 1
                        with obs.span(
                            "shard.retry",
                            parent=parent,
                            shard=shard_id,
                            attempt=attempt_no,
                        ):
                            time.sleep(
                                policy.delay(
                                    attempt_no, key=f"shard-{shard_id}"
                                )
                            )
                    except BaseException as exc:  # not a shard fault
                        fatal.append(exc)
                        return

            threads = [
                threading.Thread(
                    target=run,
                    args=(i,),
                    name=f"shard-query-{i}",
                    daemon=True,  # an abandoned (past-deadline) thread
                    # must not block interpreter exit
                )
                for i in range(len(self.shards))
            ]
            for thread in threads:
                thread.start()
            timed_out = set()
            for shard_id, thread in enumerate(threads):
                if policy.deadline is None:
                    thread.join()
                    continue
                remaining = policy.deadline - (time.monotonic() - started)
                thread.join(timeout=max(remaining, 0.0))
                if thread.is_alive():
                    timed_out.add(shard_id)
        if fatal:
            raise fatal[0]
        for shard_id in range(len(self.shards)):
            if shard_id in timed_out:
                outcome.shard_errors.append(
                    (
                        shard_id,
                        f"shard {shard_id} ran past the "
                        f"{policy.deadline:.2f}s query deadline",
                    )
                )
            elif pairs[shard_id] is not None:
                outcome.pairs.append(pairs[shard_id])
            elif errors[shard_id] is not None:
                outcome.shard_errors.append((shard_id, errors[shard_id]))
        return outcome

    def get_series(self, position: int) -> np.ndarray:
        """Fetch the raw series at a *global* position."""
        self._check_open()
        if not 0 <= position < self.num_series:
            raise ValueError(
                f"position {position} outside [0, {self.num_series})"
            )
        shard_id = bisect.bisect_right(self.row_bases, position) - 1
        return self.shards[shard_id].get_series(
            position - self.row_bases[shard_id]
        )

    # -- introspection -------------------------------------------------------

    @property
    def num_series(self) -> int:
        return self.manifest.num_series

    @property
    def num_leaves(self) -> int:
        return sum(shard.num_leaves for shard in self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def series_length(self) -> int:
        return self.manifest.series_length

    @property
    def generation(self) -> int:
        return self.manifest.generation

    def bind_metrics(self, registry) -> None:
        """Attach per-shard leaf-cache gauges (``cache.leaf.shard<i>.*``)."""
        for shard_id, shard in enumerate(self.shards):
            if shard.leaf_cache is not None:
                shard.leaf_cache.bind_registry(
                    registry, prefix=f"cache.leaf.shard{shard_id}"
                )

    def merge_worker_metrics(self, registry) -> None:
        """Fold build-worker registries into ``registry`` as ``shard.<i>.*``.

        Populated only after a multi-process :meth:`build` in this
        session; each worker's counters/gauges/histograms were flushed
        home with the shard's build reply.
        """
        for shard_id, state in enumerate(self._worker_metric_states):
            if state:
                registry.merge_state(state, prefix=f"shard.{shard_id}.")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers, release every shard (and the temp dir if ours)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for shard in self.shards:
            shard.close()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def _check_open(self) -> None:
        if self._closed:
            raise IndexStateError("sharded index is closed")

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedIndex({len(self.shards)} shards, "
            f"{self.num_series} series, dir={self.directory})"
        )


def open_index(
    directory: Union[str, Path],
    verify: str = "quick",
    cache_bytes: int = 0,
    workers: Optional[int] = None,
) -> Union[HerculesIndex, ShardedIndex]:
    """Open whichever index layout ``directory`` holds.

    A ``SHARDS.json`` marks a sharded directory (→
    :class:`ShardedIndex`); anything else opens as a plain
    :class:`HerculesIndex` (``workers`` is then ignored — there is
    nothing to scatter).
    """
    if manifest_mod.is_sharded_directory(directory):
        return ShardedIndex.open(
            directory, verify=verify, cache_bytes=cache_bytes, workers=workers
        )
    return HerculesIndex.open(directory, verify=verify, cache_bytes=cache_bytes)


def _first_line(text: str) -> str:
    """The first non-empty line of a (possibly multi-line) reason."""
    for line in str(text).splitlines():
        if line.strip():
            return line.strip()
    return str(text)


def record_sharded_profile(
    registry,
    answer: ShardedQueryAnswer,
    num_series: Optional[int] = None,
) -> None:
    """Record a scatter-gather answer: global + per-shard instruments.

    The merged profile lands under the usual ``query.*`` names; each
    shard's own profile additionally lands under
    ``shard.<i>.query.*`` so per-shard skew stays visible.  Resilience
    events ride along — ``query.coverage`` (histogram),
    ``query.degraded`` / ``shard.dropped`` / ``shard.retries``
    (counters) — so no retry or degradation is ever silent.
    """
    obs.record_profile(registry, answer.profile, num_series=num_series)
    registry.histogram("query.coverage").observe(answer.coverage)
    if answer.retries:
        registry.counter("shard.retries").inc(answer.retries)
    if answer.degraded:
        registry.counter("query.degraded").inc()
        registry.counter("shard.dropped").inc(len(answer.shard_errors))
    for shard_id, shard_answer in answer.shard_answers:
        obs.record_profile(
            registry,
            shard_answer.profile,
            prefix=f"shard.{shard_id}.query",
        )


def _prune_stale_shards(directory: Path, num_shards: int) -> None:
    """Remove ``shard-*`` directories beyond the just-committed count."""
    keep = {manifest_mod.shard_dirname(i) for i in range(num_shards)}
    for child in directory.glob("shard-*"):
        if child.is_dir() and child.name not in keep:
            shutil.rmtree(child, ignore_errors=True)
