"""Index introspection: structural statistics of a Hercules tree.

Used by the ``repro inspect`` CLI command, the test suite's invariants,
and anyone tuning leaf capacity or the initial segmentation: the shape of
an EAPCA tree (depth spread, leaf fill, split mix) is what determines
pruning quality, and the paper's design discussion (Sections 3.2-3.3) is
in terms of exactly these quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.node import Node


@dataclass(frozen=True)
class TreeStatistics:
    """Structural summary of one index tree."""

    num_nodes: int
    num_leaves: int
    num_internal: int
    num_series: int
    max_depth: int
    mean_leaf_depth: float
    min_leaf_size: int
    max_leaf_size: int
    mean_leaf_size: float
    #: mean_leaf_size / leaf_capacity; None when capacity is unknown.
    fill_factor: float | None
    horizontal_splits: int
    vertical_splits: int
    mean_routed_splits: int
    std_routed_splits: int
    min_segments: int
    max_segments: int
    mean_leaf_segments: float

    def format(self) -> str:
        lines = [
            f"nodes              {self.num_nodes} "
            f"({self.num_leaves} leaves, {self.num_internal} internal)",
            f"series             {self.num_series}",
            f"depth              max {self.max_depth}, "
            f"mean leaf depth {self.mean_leaf_depth:.1f}",
            f"leaf sizes         min {self.min_leaf_size}, "
            f"max {self.max_leaf_size}, mean {self.mean_leaf_size:.1f}",
        ]
        if self.fill_factor is not None:
            lines.append(f"leaf fill factor   {self.fill_factor:.1%}")
        lines.extend(
            [
                f"splits             {self.horizontal_splits} horizontal, "
                f"{self.vertical_splits} vertical",
                f"split statistics   {self.mean_routed_splits} on mean, "
                f"{self.std_routed_splits} on stddev",
                f"segments per node  min {self.min_segments}, "
                f"max {self.max_segments}, "
                f"mean over leaves {self.mean_leaf_segments:.1f}",
            ]
        )
        return "\n".join(lines)


def to_networkx(root: Node):
    """Export a tree as a ``networkx.DiGraph`` for offline analysis.

    Node attributes: ``is_leaf``, ``size``, ``segments``, ``depth``; edge
    attribute ``side`` ("left"/"right").  Requires networkx (an optional
    analysis dependency, not needed by the library itself).
    """
    import networkx as nx

    graph = nx.DiGraph()
    stack: list[tuple[Node, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        graph.add_node(
            node.node_id,
            is_leaf=node.is_leaf,
            size=node.size,
            segments=node.segmentation.num_segments,
            depth=depth,
        )
        if not node.is_leaf:
            for side, child in (("left", node.left), ("right", node.right)):
                graph.add_edge(node.node_id, child.node_id, side=side)
                stack.append((child, depth + 1))
    return graph


def tree_statistics(
    root: Node, leaf_capacity: int | None = None
) -> TreeStatistics:
    """Collect :class:`TreeStatistics` for the tree rooted at ``root``."""
    leaf_sizes: list[int] = []
    leaf_depths: list[int] = []
    leaf_segments: list[int] = []
    num_internal = 0
    horizontal = vertical = 0
    on_mean = on_std = 0
    min_segments = root.segmentation.num_segments
    max_segments = root.segmentation.num_segments
    max_depth = 0

    stack: list[tuple[Node, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        max_depth = max(max_depth, depth)
        m = node.segmentation.num_segments
        min_segments = min(min_segments, m)
        max_segments = max(max_segments, m)
        if node.is_leaf:
            leaf_sizes.append(node.size)
            leaf_depths.append(depth)
            leaf_segments.append(m)
        else:
            num_internal += 1
            policy = node.policy
            if policy is not None:
                if policy.vertical:
                    vertical += 1
                else:
                    horizontal += 1
                if policy.use_std:
                    on_std += 1
                else:
                    on_mean += 1
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))

    sizes = np.asarray(leaf_sizes, dtype=np.int64)
    mean_size = float(sizes.mean()) if sizes.size else 0.0
    return TreeStatistics(
        num_nodes=len(leaf_sizes) + num_internal,
        num_leaves=len(leaf_sizes),
        num_internal=num_internal,
        num_series=int(sizes.sum()),
        max_depth=max_depth,
        mean_leaf_depth=float(np.mean(leaf_depths)) if leaf_depths else 0.0,
        min_leaf_size=int(sizes.min()) if sizes.size else 0,
        max_leaf_size=int(sizes.max()) if sizes.size else 0,
        mean_leaf_size=mean_size,
        fill_factor=(mean_size / leaf_capacity) if leaf_capacity else None,
        horizontal_splits=horizontal,
        vertical_splits=vertical,
        mean_routed_splits=on_mean,
        std_routed_splits=on_std,
        min_segments=min_segments,
        max_segments=max_segments,
        mean_leaf_segments=(
            float(np.mean(leaf_segments)) if leaf_segments else 0.0
        ),
    )
