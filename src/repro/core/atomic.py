"""Concurrency primitives mirroring the paper's synchronization vocabulary.

The index-building protocol (Algorithms 1-4) is written in terms of
FetchAdd counters, Barrier objects, and per-worker handshake bits.  This
module provides those primitives on top of :mod:`threading` so the
construction code reads like the paper's pseudocode.  The busy-wait
handshake loop of Algorithm 3 is realized with events instead of spinning;
the synchronization structure (who waits for whom, and when) is unchanged.
"""

from __future__ import annotations

import threading


class FetchAdd:
    """An integer counter with an atomic fetch-and-add operation."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, amount: int = 1) -> int:
        """Add ``amount`` and return the value *before* the addition."""
        with self._lock:
            old = self._value
            self._value += amount
            return old

    def load(self) -> int:
        with self._lock:
            return self._value

    def store(self, value: int) -> None:
        with self._lock:
            self._value = value


class HandshakeBit:
    """The per-worker ContinueHandShake bit of Algorithms 3-4.

    A worker *raises* its bit to signal the flush coordinator; the
    coordinator *awaits* all bits, makes its decision, and each worker
    lowers its own bit afterwards.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def raise_bit(self) -> None:
        self._event.set()

    def lower_bit(self) -> None:
        self._event.clear()

    def await_raised(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    @property
    def is_raised(self) -> bool:
        return self._event.is_set()


class Flag:
    """A boolean shared flag with locked access (FlushOrder, Finished[])."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: bool = False) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def set(self, value: bool = True) -> None:
        with self._lock:
            self._value = value

    def clear(self) -> None:
        self.set(False)

    def get(self) -> bool:
        with self._lock:
            return self._value


#: Re-export: the paper's Barrier object is exactly threading.Barrier.
Barrier = threading.Barrier
