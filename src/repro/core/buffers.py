"""Two-level buffer management (Section 3.3, Figure 3).

* :class:`HBuffer` — one large pre-allocated memory buffer holding the raw
  series of *all* leaves, carved into per-InsertWorker regions.  Each leaf
  keeps an SBuffer (a plain list of slot ids on the node) pointing into
  HBuffer.  Allocating once up front, instead of per-leaf buffers that die
  on every split, is one of the paper's measured wins: fewer system calls
  and no memory-manager churn during the split-heavy start of indexing.

* :class:`DoubleBuffer` — the DBuffer: two halves that let the coordinator
  overlap reading the next batch from disk with the InsertWorkers draining
  the previous one.  Workers claim series with a FetchAdd counter per half.
"""

from __future__ import annotations

import numpy as np

from repro.core.atomic import FetchAdd, Flag
from repro.errors import ConfigError
from repro.types import SERIES_DTYPE


class HBuffer:
    """Pre-allocated series buffer with one region per InsertWorker.

    Slot ids are global row indices into the backing matrix, so a leaf's
    SBuffer can reference series written by any worker.  Regions are
    reset wholesale by the flush protocol once every leaf's in-memory
    series have been spilled.
    """

    def __init__(self, capacity: int, series_length: int, num_workers: int) -> None:
        if capacity < num_workers:
            raise ConfigError(
                f"HBuffer capacity {capacity} cannot host {num_workers} regions"
            )
        self.capacity = capacity
        self.series_length = series_length
        self.num_workers = num_workers
        self._data = np.empty((capacity, series_length), dtype=SERIES_DTYPE)
        base, extra = divmod(capacity, num_workers)
        sizes = [base + (1 if w < extra else 0) for w in range(num_workers)]
        starts = [0]
        for size in sizes[:-1]:
            starts.append(starts[-1] + size)
        self._region_start = starts
        self._region_size = sizes
        self._fill = [0] * num_workers  # slots used per region (owner-written)

    def region_capacity(self, worker: int) -> int:
        return self._region_size[worker]

    def free_slots(self, worker: int) -> int:
        return self._region_size[worker] - self._fill[worker]

    def store(self, worker: int, series: np.ndarray) -> int:
        """Copy one series into the worker's region; returns its slot id.

        Only the owning worker calls this, so no lock is needed.
        """
        fill = self._fill[worker]
        if fill >= self._region_size[worker]:
            raise ConfigError(
                f"worker {worker} region overflow: the flush protocol must "
                f"run before the region fills"
            )
        slot = self._region_start[worker] + fill
        self._data[slot] = series
        self._fill[worker] = fill + 1
        return slot

    def store_batch(self, worker: int, rows: np.ndarray) -> int:
        """Copy a batch of series contiguously into the worker's region.

        Returns the slot id of the first row; the batch occupies slots
        ``[start, start + len(rows))``.  One region copy replaces
        ``len(rows)`` :meth:`store` calls.  Only the owning worker calls
        this, so no lock is needed.
        """
        count = rows.shape[0]
        fill = self._fill[worker]
        if fill + count > self._region_size[worker]:
            raise ConfigError(
                f"worker {worker} region overflow: {count} series do not fit "
                f"in {self._region_size[worker] - fill} free slots; the "
                f"flush protocol must run before the region fills"
            )
        start = self._region_start[worker] + fill
        self._data[start : start + count] = rows
        self._fill[worker] = fill + count
        return start

    def get_rows(self, slots, out: np.ndarray = None) -> np.ndarray:
        """Copy of the series at the given slot ids, one per row.

        ``out`` (shape ``(len(slots), series_length)``, matching dtype)
        receives the rows in place, avoiding an allocation.
        """
        index = np.asarray(slots, dtype=np.int64)
        if out is None:
            return self._data[index]
        np.take(self._data, index, axis=0, out=out)
        return out

    def reset_regions(self) -> None:
        """Mark every region empty (run with all workers quiescent)."""
        for worker in range(self.num_workers):
            self._fill[worker] = 0

    @property
    def used_slots(self) -> int:
        return sum(self._fill)


class BufferHalf:
    """One half of the DBuffer: a batch plus its FetchAdd claim counter."""

    def __init__(self, max_size: int, series_length: int) -> None:
        self.data = np.empty((max_size, series_length), dtype=SERIES_DTYPE)
        self.size = 0
        self.counter = FetchAdd(0)
        self.finished = Flag(False)

    def fill(self, batch: np.ndarray) -> None:
        """Load a batch and reset the claim counter (coordinator only)."""
        count = batch.shape[0]
        self.data[:count] = batch
        self.size = count
        self.counter.store(0)


class DoubleBuffer:
    """The two-part DBuffer of Algorithm 1."""

    def __init__(self, max_size: int, series_length: int) -> None:
        self.halves = (
            BufferHalf(max_size, series_length),
            BufferHalf(max_size, series_length),
        )

    def __getitem__(self, toggle: int) -> BufferHalf:
        return self.halves[toggle]
