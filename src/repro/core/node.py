"""The Hercules index tree node (Section 3.2, Figure 2).

Each node carries the size ρ of the series below it, a segmentation
``SG = {r_1, ..., r_m}``, and a synopsis ``Z`` holding, per segment, the
min/max mean and min/max standard deviation over every series that
traversed the node.  A leaf additionally owns an SBuffer (pointers into
HBuffer), a list of spill extents (ranges of a spill file written by
flushes), and — once the index is written — a FilePosition into LRDFile.

An internal node carries the :class:`SplitPolicy` that routes series to
its children.  Both H-splits and V-splits route on the mean (or standard
deviation) of a contiguous point range: for an H-split the range is the
split segment itself; for a V-split it is one half of it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distance.lower_bounds import MU_MAX, MU_MIN, SD_MAX, SD_MIN, lb_eapca
from repro.summarization.eapca import Segmentation, SeriesSketch
from repro.types import DISTANCE_DTYPE


@dataclass(frozen=True)
class SpillExtent:
    """A contiguous run of a leaf's series inside the spill file."""

    position: int
    count: int


@dataclass(frozen=True)
class SplitPolicy:
    """How an internal node routes series to its two children.

    ``split_segment`` indexes the segment of the *node's own* segmentation
    that was split.  For a vertical split the children gain one segment
    (``child_segmentation``) and the routing statistic is computed over
    one half of the split segment; for a horizontal split the children
    share the node's segmentation and the statistic covers the whole
    segment.  A series routes left when its statistic is strictly below
    ``threshold``.
    """

    split_segment: int
    vertical: bool
    use_std: bool
    threshold: float
    route_start: int
    route_end: int
    child_segmentation: Segmentation

    def route_left(self, sketch: SeriesSketch) -> bool:
        """Route one series (via its sketch): True → left child."""
        mean, std = sketch.range_stats(self.route_start, self.route_end)
        value = std if self.use_std else mean
        return value < self.threshold

    def route_left_batch(
        self, means: np.ndarray, stds: np.ndarray
    ) -> np.ndarray:
        """Vectorized routing given per-series stats over the route range."""
        values = stds if self.use_std else means
        return values < self.threshold


def empty_synopsis(num_segments: int) -> np.ndarray:
    """A synopsis absorbing any update: mins at +inf, maxes at -inf."""
    syn = np.empty((num_segments, 4), dtype=DISTANCE_DTYPE)
    syn[:, MU_MIN] = np.inf
    syn[:, MU_MAX] = -np.inf
    syn[:, SD_MIN] = np.inf
    syn[:, SD_MAX] = -np.inf
    return syn


def synopsis_from_stats(means: np.ndarray, stds: np.ndarray) -> np.ndarray:
    """Exact synopsis of a set of series given their per-segment stats."""
    syn = np.empty((means.shape[1], 4), dtype=DISTANCE_DTYPE)
    syn[:, MU_MIN] = means.min(axis=0)
    syn[:, MU_MAX] = means.max(axis=0)
    syn[:, SD_MIN] = stds.min(axis=0)
    syn[:, SD_MAX] = stds.max(axis=0)
    return syn


class Node:
    """One node of the Hercules tree.

    The node lock serializes leaf appends and the leaf→internal transition
    (Algorithm 5); during the index-writing phase the same lock protects
    concurrent synopsis merges from different WriteIndexWorkers
    (Algorithms 8-9).
    """

    __slots__ = (
        "node_id",
        "segmentation",
        "synopsis",
        "size",
        "is_leaf",
        "parent",
        "left",
        "right",
        "policy",
        "lock",
        "sbuffer",
        "spill_extents",
        "file_position",
        "sax_words",
        "write_cache",
        "processed",
        "written",
    )

    def __init__(
        self,
        node_id: int,
        segmentation: Segmentation,
        parent: Optional["Node"] = None,
    ) -> None:
        self.node_id = node_id
        self.segmentation = segmentation
        self.synopsis = empty_synopsis(segmentation.num_segments)
        self.size = 0
        self.is_leaf = True
        self.parent = parent
        self.left: Optional[Node] = None
        self.right: Optional[Node] = None
        self.policy: Optional[SplitPolicy] = None
        self.lock = threading.Lock()
        #: HBuffer slot ids of the leaf's in-memory series (the SBuffer).
        self.sbuffer: list[int] = []
        #: Extents of the leaf's series in the spill file, oldest first.
        self.spill_extents: list[SpillExtent] = []
        #: First position of the leaf's data in LRDFile (set when written).
        self.file_position: int = -1
        #: iSAX words of the leaf's series (populated by index writing).
        self.sax_words: Optional[np.ndarray] = None
        #: Raw data staged by ProcessLeaf for WriteLeafData to materialize.
        self.write_cache: Optional[np.ndarray] = None
        #: Write-phase handshakes (Algorithm 7 lines 7-8).
        self.processed = threading.Event()
        self.written = threading.Event()

    # -- synopsis maintenance ----------------------------------------------

    def update_synopsis(self, means: np.ndarray, stds: np.ndarray) -> None:
        """Absorb one series' per-segment statistics (caller holds lock)."""
        syn = self.synopsis
        np.minimum(syn[:, MU_MIN], means, out=syn[:, MU_MIN])
        np.maximum(syn[:, MU_MAX], means, out=syn[:, MU_MAX])
        np.minimum(syn[:, SD_MIN], stds, out=syn[:, SD_MIN])
        np.maximum(syn[:, SD_MAX], stds, out=syn[:, SD_MAX])

    def update_synopsis_batch(self, means: np.ndarray, stds: np.ndarray) -> None:
        """Absorb a whole group's statistics at once (caller holds lock).

        ``means``/``stds`` are ``(k, m)`` matrices; the column-wise min/max
        collapse followed by the min/max merge is exactly equivalent to k
        sequential :meth:`update_synopsis` calls (min/max are associative
        and commutative), so batched and per-row builds produce identical
        synopses.
        """
        syn = self.synopsis
        np.minimum(syn[:, MU_MIN], means.min(axis=0), out=syn[:, MU_MIN])
        np.maximum(syn[:, MU_MAX], means.max(axis=0), out=syn[:, MU_MAX])
        np.minimum(syn[:, SD_MIN], stds.min(axis=0), out=syn[:, SD_MIN])
        np.maximum(syn[:, SD_MAX], stds.max(axis=0), out=syn[:, SD_MAX])

    def merge_synopsis_rows(
        self, own_rows: np.ndarray, other: np.ndarray, other_rows: np.ndarray
    ) -> None:
        """Merge selected synopsis rows of another node into this one.

        Used by HSplitSynopsis: ``own_rows``/``other_rows`` are matching
        segment indices in this node and in ``other`` (a child).  The
        caller must hold this node's lock.  Fancy-indexed assignment (not
        ``out=``) is required: ``syn[rows, col]`` is a copy.
        """
        syn = self.synopsis
        syn[own_rows, MU_MIN] = np.minimum(
            syn[own_rows, MU_MIN], other[other_rows, MU_MIN]
        )
        syn[own_rows, MU_MAX] = np.maximum(
            syn[own_rows, MU_MAX], other[other_rows, MU_MAX]
        )
        syn[own_rows, SD_MIN] = np.minimum(
            syn[own_rows, SD_MIN], other[other_rows, SD_MIN]
        )
        syn[own_rows, SD_MAX] = np.maximum(
            syn[own_rows, SD_MAX], other[other_rows, SD_MAX]
        )

    def merge_segment_interval(
        self,
        segment: int,
        mu_lo: float,
        mu_hi: float,
        sd_lo: float,
        sd_hi: float,
    ) -> None:
        """Widen one segment's synopsis box (VSplitSynopsis merge step).

        The caller must hold this node's lock.
        """
        row = self.synopsis[segment]
        row[MU_MIN] = min(row[MU_MIN], mu_lo)
        row[MU_MAX] = max(row[MU_MAX], mu_hi)
        row[SD_MIN] = min(row[SD_MIN], sd_lo)
        row[SD_MAX] = max(row[SD_MAX], sd_hi)

    # -- pruning -------------------------------------------------------------

    def lower_bound(self, sketch: SeriesSketch) -> float:
        """LB_EAPCA between a query (via its sketch) and this node."""
        means, stds = sketch.stats(self.segmentation)
        return lb_eapca(means, stds, self.synopsis, self.segmentation.lengths)

    # -- routing -------------------------------------------------------------

    def route(self, sketch: SeriesSketch) -> "Node":
        """The child a series belongs to (RouteToLeaf takes one step)."""
        if self.is_leaf or self.policy is None:
            raise ValueError(f"node {self.node_id} is a leaf; cannot route")
        return self.left if self.policy.route_left(sketch) else self.right

    # -- traversal helpers ----------------------------------------------------

    def iter_leaves_inorder(self):
        """Yield the leaves below this node in inorder (= LRDFile order)."""
        stack: list[tuple[Node, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node.is_leaf:
                yield node
            elif expanded:
                continue
            else:
                # Inorder on a binary tree where only leaves hold data
                # reduces to left-to-right leaf order.
                stack.append((node.right, False))
                stack.append((node.left, False))

    def iter_nodes_preorder(self):
        """Yield every node below (and including) this one, parent first."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def num_leaves(self) -> int:
        return sum(1 for _ in self.iter_leaves_inorder())

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return (
            f"Node(id={self.node_id}, {kind}, size={self.size}, "
            f"segments={self.segmentation.num_segments})"
        )


def segment_correspondence(parent: "Node") -> tuple[np.ndarray, np.ndarray]:
    """Child→parent segment index mapping for synopsis H-merging.

    Returns ``(child_rows, parent_rows)``: child segment ``child_rows[i]``
    maps onto parent segment ``parent_rows[i]``.  For an H-split parent the
    mapping is the identity.  For a V-split parent the two half-segments
    produced by the split are *excluded* — their union's statistics cannot
    be derived from the halves and are computed from raw data by
    VSplitSynopsis (Algorithm 8) instead.
    """
    policy = parent.policy
    if policy is None:
        raise ValueError("segment correspondence requires an internal node")
    m_parent = parent.segmentation.num_segments
    if not policy.vertical:
        idx = np.arange(m_parent)
        return idx, idx
    i = policy.split_segment
    child_rows = np.concatenate(
        [np.arange(0, i), np.arange(i + 2, m_parent + 1)]
    )
    parent_rows = np.concatenate([np.arange(0, i), np.arange(i + 1, m_parent)])
    return child_rows, parent_rows
