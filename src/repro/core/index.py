"""The Hercules index facade: build → write → query, plus persistence.

Typical usage::

    from repro import HerculesIndex, HerculesConfig

    index = HerculesIndex.build(data, HerculesConfig(leaf_capacity=100),
                                directory="./my_index")
    answer = index.knn(query, k=10)
    index.close()

    index = HerculesIndex.open("./my_index")   # later, from disk

``build`` runs the two construction stages of Section 3.3 (index building
and index writing); the returned object is immediately queryable.  ``open``
reconstructs a queryable index from the three materialized files (HTree,
LRDFile, LSDFile).
"""

from __future__ import annotations

import dataclasses
import logging
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.core.batch_query import BatchAnswer, exact_knn_batch
from repro.core.config import HerculesConfig
from repro.core.construction import build_tree, new_build_context
from repro.core.node import Node
from repro.core.prefilter import (
    SIGNATURES_FILENAME,
    SIGNATURES_FORMAT_VERSION,
    SignatureArray,
)
from repro.core.query import (
    QueryAnswer,
    approximate_knn,
    exact_knn,
    progressive_knn,
)
from repro.core.writing import (
    HTREE_FILENAME,
    LRD_FILENAME,
    LSD_FILENAME,
    write_index,
)
from repro.errors import (
    ConfigError,
    IndexStateError,
    ManifestError,
    StorageError,
)
from repro.storage import htree
from repro.storage import manifest as manifest_mod
from repro.storage.cache import LeafCache
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile, SymbolFile
from repro.storage.iostats import IOSnapshot, IOStats
from repro.summarization.sax import SaxSpace

logger = logging.getLogger(__name__)

_SPILL_FILENAME = "spill.bin"
_SETTINGS_KEY_CONFIG = "config"


@dataclass(frozen=True)
class BuildReport:
    """Timing and work counters of one index construction."""

    build_seconds: float
    write_seconds: float
    num_series: int
    num_leaves: int
    splits: int
    flushes: int
    io: IOSnapshot
    #: Phase-1 wall time by phase (Table 4): group routing, HBuffer
    #: stores + synopsis updates, leaf splits, and flush spills.  The
    #: per-row reference path only accounts split and flush time.
    route_seconds: float = 0.0
    store_seconds: float = 0.0
    split_seconds: float = 0.0
    flush_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.write_seconds

    @property
    def series_per_sec(self) -> float:
        """Phase-1 construction throughput."""
        if self.build_seconds <= 0.0:
            return 0.0
        return self.num_series / self.build_seconds


class HerculesIndex:
    """A materialized Hercules index over one dataset."""

    def __init__(
        self,
        root: Node,
        config: HerculesConfig,
        directory: Path,
        lrd: SeriesFile,
        lsd_words: np.ndarray,
        num_series: int,
        build_report: Optional[BuildReport] = None,
        owns_directory: bool = False,
        signatures: Optional[SignatureArray] = None,
    ) -> None:
        self.root = root
        self.config = config
        self.directory = directory
        self._lrd = lrd
        self._lsd_words = lsd_words
        self._signatures = signatures
        self.num_series = num_series
        self.build_report = build_report
        self._owns_directory = owns_directory
        self._closed = False
        self.sax_space = SaxSpace(config.sax_segments, config.sax_alphabet)
        self._leaves = list(root.iter_leaves_inorder())

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: Union[np.ndarray, Dataset],
        config: Optional[HerculesConfig] = None,
        directory: Optional[Union[str, Path]] = None,
        stats: Optional[IOStats] = None,
        cache_bytes: int = 0,
    ) -> "HerculesIndex":
        """Build and materialize an index over ``data``.

        ``data`` may be an in-memory batch or a :class:`Dataset`.  When
        ``directory`` is None a temporary directory is created and removed
        on :meth:`close`.  ``stats`` receives the I/O of construction.
        ``cache_bytes`` > 0 attaches a byte-budgeted LRU leaf cache to
        LRDFile for query answering (0 disables caching entirely).
        """
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series == 0:
            raise ConfigError("cannot index an empty dataset")
        config = config if config is not None else HerculesConfig()

        owns_directory = directory is None
        directory = (
            Path(tempfile.mkdtemp(prefix="hercules-"))
            if directory is None
            else Path(directory)
        )
        directory.mkdir(parents=True, exist_ok=True)
        build_stats = stats if stats is not None else IOStats()
        sax_space = SaxSpace(config.sax_segments, config.sax_alphabet)

        spill = SeriesFile(
            directory / _SPILL_FILENAME, dataset.series_length, stats=build_stats
        )
        try:
            with obs.span(
                "build",
                num_series=dataset.num_series,
                series_length=dataset.series_length,
            ):
                started = time.perf_counter()
                with obs.io_span("build.phase1", build_stats):
                    ctx = build_tree(
                        dataset,
                        config,
                        spill,
                        context=new_build_context(dataset, config, spill),
                    )
                build_seconds = time.perf_counter() - started
                obs.emit_event(
                    "build_phase",
                    phase="tree",
                    seconds=round(build_seconds, 6),
                    num_series=dataset.num_series,
                )

                settings = {
                    _SETTINGS_KEY_CONFIG: dataclasses.asdict(config),
                    "num_series": dataset.num_series,
                    "series_length": dataset.series_length,
                }
                started = time.perf_counter()
                with obs.io_span("build.phase2", build_stats):
                    result = write_index(
                        ctx, directory, sax_space, settings, build_stats
                    )
                write_seconds = time.perf_counter() - started
                obs.emit_event(
                    "build_phase",
                    phase="write",
                    seconds=round(write_seconds, 6),
                    num_leaves=result.num_leaves,
                )
        finally:
            spill.close()
        (directory / _SPILL_FILENAME).unlink(missing_ok=True)

        if result.num_series != dataset.num_series:
            raise IndexStateError(
                f"index holds {result.num_series} series but the dataset has "
                f"{dataset.num_series}; series were lost during construction"
            )

        phases = ctx.timers.seconds()
        report = BuildReport(
            build_seconds=build_seconds,
            write_seconds=write_seconds,
            num_series=result.num_series,
            num_leaves=result.num_leaves,
            splits=ctx.splits.load(),
            flushes=ctx.flushes.load(),
            io=build_stats.snapshot(),
            route_seconds=phases["route"],
            store_seconds=phases["store"],
            split_seconds=phases["split"],
            flush_seconds=phases["flush"],
        )

        logger.info(
            "index ready: %d leaves over %d series in %.2fs "
            "(build %.2fs + write %.2fs)",
            result.num_leaves,
            result.num_series,
            report.total_seconds,
            report.build_seconds,
            report.write_seconds,
        )
        query_stats = IOStats()
        lrd = SeriesFile(
            directory / LRD_FILENAME,
            dataset.series_length,
            stats=query_stats,
            read_only=True,
            cache=_make_cache(cache_bytes),
        )
        lsd_words = _load_lsd(directory, sax_space)
        return cls(
            root=ctx.root,
            config=config,
            directory=directory,
            lrd=lrd,
            lsd_words=lsd_words,
            num_series=result.num_series,
            build_report=report,
            owns_directory=owns_directory,
            signatures=_load_signatures(
                directory, sax_space, config, result.num_series
            ),
        )

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        verify: str = "quick",
        cache_bytes: int = 0,
    ) -> "HerculesIndex":
        """Open a previously materialized index.

        ``cache_bytes`` > 0 attaches a byte-budgeted LRU leaf cache to
        LRDFile for query answering (0, the default, disables caching —
        identical behaviour to the uncached pipeline).

        ``verify`` selects how much of the directory is validated before
        any query is served:

        * ``"quick"`` (default) — the manifest must be present and pass
          its own integrity checksum, and every artifact must exist with
          the committed byte size and a supported format version;
        * ``"full"`` — additionally recomputes each artifact's CRC32 and
          checks cross-file invariants (record counts agree across
          LRDFile, LSDFile, and the tree; every leaf extent in bounds);
        * ``"off"`` — the legacy permissive behaviour: only the HTree
          header is validated.

        Damage raises :class:`~repro.errors.ManifestError` or
        :class:`~repro.errors.ChecksumError` naming the broken artifact.
        Pre-manifest directories still open (with a logged warning).
        """
        directory = Path(directory)
        if verify not in manifest_mod.VERIFY_LEVELS:
            raise ValueError(
                f"verify must be one of {manifest_mod.VERIFY_LEVELS}, "
                f"got {verify!r}"
            )
        manifest = None
        if verify != "off":
            if not (directory / manifest_mod.MANIFEST_FILENAME).exists():
                logger.warning(
                    "no MANIFEST.json in %s: legacy pre-manifest index "
                    "directory, opening without artifact verification",
                    directory,
                )
            else:
                manifest = manifest_mod.load_manifest(directory)
                manifest_mod.verify_directory(
                    directory,
                    manifest,
                    level=verify,
                    expected_versions={
                        LRD_FILENAME: manifest_mod.LRD_FORMAT_VERSION,
                        LSD_FILENAME: manifest_mod.LSD_FORMAT_VERSION,
                        HTREE_FILENAME: htree.FORMAT_VERSION,
                        SIGNATURES_FILENAME: SIGNATURES_FORMAT_VERSION,
                    },
                )
        htree_path = directory / HTREE_FILENAME
        if not htree_path.exists():
            raise StorageError(f"no HTree file at {htree_path}")
        root, settings = htree.load_tree(htree_path)
        config = HerculesConfig(**settings[_SETTINGS_KEY_CONFIG])
        sax_space = SaxSpace(config.sax_segments, config.sax_alphabet)
        query_stats = IOStats()
        lrd = SeriesFile(
            directory / LRD_FILENAME,
            settings["series_length"],
            stats=query_stats,
            read_only=True,
            cache=_make_cache(cache_bytes),
        )
        lsd_words = _load_lsd(directory, sax_space)
        num_series = settings["num_series"]
        if manifest is not None and manifest.num_series != num_series:
            raise ManifestError(
                f"manifest records {manifest.num_series} series but the "
                f"HTree settings record {num_series}: mixed generations"
            )
        if verify == "full":
            _check_cross_invariants(root, num_series, lrd, lsd_words)
        return cls(
            root=root,
            config=config,
            directory=directory,
            lrd=lrd,
            lsd_words=lsd_words,
            num_series=num_series,
            signatures=_load_signatures(
                directory, sax_space, config, num_series
            ),
        )

    # -- querying --------------------------------------------------------------

    def knn(
        self,
        query: np.ndarray,
        k: int = 1,
        config: Optional[HerculesConfig] = None,
        results=None,
    ) -> QueryAnswer:
        """Exact k-NN search (Algorithm 10).

        ``config`` overrides query-time settings (threads, thresholds,
        ablation switches) without rebuilding the index.  ``results``
        optionally supplies the :class:`~repro.core.results.ResultSet`
        searched into — the shard scatter-gather coordinator passes a
        linked set so this index prunes against the global BSF².
        """
        self._check_open()
        effective = config if config is not None else self.config
        return exact_knn(
            query,
            k,
            effective,
            self.root,
            self._lrd,
            self._lsd_words,
            self.sax_space,
            num_leaves=len(self._leaves),
            num_series=self.num_series,
            results=results,
            signatures=self._signatures if effective.prefilter else None,
        )

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        config: Optional[HerculesConfig] = None,
        results=None,
    ) -> BatchAnswer:
        """Answer a whole query set together (batched execution engine).

        Plans the workload as one unit: a single (Q×N) signature screen
        against the per-query BSF² vector, a leaf→{query set} access
        plan reading every surviving leaf once, and multi-query matrix
        kernels sharing each leaf's rows across the queries that need
        it.  Per-query answers are value-identical to calling
        :meth:`knn` once per query; the returned
        :class:`~repro.core.batch_query.BatchAnswer` iterates like the
        per-query answer list and carries batch-level
        :class:`~repro.core.batch_query.BatchStats` (leaf-share factor,
        kernel rows per read, screen time).

        ``results`` optionally supplies one result set per query — the
        shard scatter-gather coordinator passes linked sets so each
        query here prunes against its own global BSF².
        """
        self._check_open()
        effective = config if config is not None else self.config
        return exact_knn_batch(
            queries,
            k,
            effective,
            self.root,
            self._lrd,
            self._lsd_words,
            self.sax_space,
            num_leaves=len(self._leaves),
            num_series=self.num_series,
            results=results,
            signatures=self._signatures if effective.prefilter else None,
        )

    def knn_approx(
        self,
        query: np.ndarray,
        k: int = 1,
        l_max: Optional[int] = None,
        results=None,
    ) -> QueryAnswer:
        """Approximate k-NN (Algorithm 11 alone; see the paper's §5).

        Visits at most ``l_max`` leaves (default: the configured value)
        and returns the best-so-far answers without the exact phases.
        ``results`` plays the same role as in :meth:`knn`.
        """
        self._check_open()
        config = self.config
        if l_max is not None:
            config = config.with_options(l_max=l_max)
        return approximate_knn(
            query,
            k,
            config,
            self.root,
            self._lrd,
            self._lsd_words,
            self.sax_space,
            num_leaves=len(self._leaves),
            num_series=self.num_series,
            results=results,
        )

    def knn_progressive(
        self,
        query: np.ndarray,
        k: int = 1,
        config: Optional[HerculesConfig] = None,
    ):
        """Progressive k-NN: a generator of improving answers.

        Yields a refined :class:`QueryAnswer` after every leaf the
        best-first search visits and finishes with the exact answer —
        the interactive-analysis interaction model the paper's workloads
        represent.  Stop consuming at any time to trade accuracy for
        latency.
        """
        self._check_open()
        effective = config if config is not None else self.config
        return progressive_knn(
            query,
            k,
            effective,
            self.root,
            self._lrd,
            self._lsd_words,
            self.sax_space,
            num_leaves=len(self._leaves),
            num_series=self.num_series,
        )

    def get_series(self, position: int) -> np.ndarray:
        """Fetch the raw series stored at an LRDFile position."""
        self._check_open()
        return self._lrd.read_series(position)

    # -- introspection -----------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def series_length(self) -> int:
        return self._lrd.series_length

    @property
    def query_io(self) -> IOStats:
        """I/O counters of all queries served by this index object."""
        return self._lrd.stats

    @property
    def leaf_cache(self) -> Optional[LeafCache]:
        """The LRU leaf cache under LRDFile (None when disabled)."""
        return self._lrd.cache

    @property
    def leaves(self) -> list[Node]:
        """Leaves in inorder (= LRDFile order)."""
        return list(self._leaves)

    @property
    def signatures(self) -> Optional[SignatureArray]:
        """The in-RAM signature array (None when the tier is off)."""
        return self._signatures

    @property
    def prefilter_active(self) -> bool:
        """Whether queries will run the whole-array signature screen."""
        return self.config.prefilter and self._signatures is not None

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release file handles (and the temp directory if we created it)."""
        if self._closed:
            return
        self._closed = True
        self._lrd.close()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def _check_open(self) -> None:
        if self._closed:
            raise IndexStateError("index is closed")

    def __enter__(self) -> "HerculesIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"HerculesIndex({self.num_series} series, {self.num_leaves} "
            f"leaves, dir={self.directory})"
        )


def _make_cache(cache_bytes: int) -> Optional[LeafCache]:
    """A LeafCache for the given byte budget; None (disabled) for 0."""
    if cache_bytes < 0:
        raise ConfigError(f"cache_bytes must be >= 0, got {cache_bytes}")
    return LeafCache(cache_bytes) if cache_bytes else None


def _check_cross_invariants(
    root: Node, num_series: int, lrd: SeriesFile, lsd_words: np.ndarray
) -> None:
    """Cross-file consistency of a full verification pass.

    The three artifacts describe one dataset three ways; any count that
    disagrees means the directory holds a torn or mixed-generation index
    even though each file is individually well-formed.
    """
    if lrd.num_series != num_series:
        raise StorageError(
            f"lrd.bin holds {lrd.num_series} series but the index records "
            f"{num_series}"
        )
    if lsd_words.shape[0] != num_series:
        raise StorageError(
            f"lsd.bin holds {lsd_words.shape[0]} words but the index "
            f"records {num_series} series"
        )
    leaves = list(root.iter_leaves_inorder())
    total = sum(leaf.size for leaf in leaves)
    if total != num_series:
        raise StorageError(
            f"htree.bin leaf sizes sum to {total} but the index records "
            f"{num_series} series"
        )
    for leaf in leaves:
        position = leaf.file_position
        if position < 0 or position + leaf.size > num_series:
            raise StorageError(
                f"htree.bin leaf {leaf.node_id}: extent "
                f"[{position}, {position + leaf.size}) outside LRDFile "
                f"with {num_series} series"
            )


def _load_signatures(
    directory: Path,
    sax_space: SaxSpace,
    config: HerculesConfig,
    num_series: int,
) -> Optional[SignatureArray]:
    """The signature array of a prefiltered index, if one can serve.

    Returns None (and the query pipeline falls back to the unfiltered
    path, answers unchanged) when the configuration has the tier off or
    when a legacy directory predates the artifact.
    """
    if not config.prefilter:
        return None
    path = directory / SIGNATURES_FILENAME
    if not path.exists():
        logger.warning(
            "index at %s is configured with the signature pre-filter but "
            "has no %s (legacy pre-prefilter directory): opening with the "
            "pre-filter disabled, queries take the unfiltered path",
            directory,
            SIGNATURES_FILENAME,
        )
        return None
    signatures = SignatureArray.load(path, sax_space)
    if signatures.num_series != num_series:
        raise StorageError(
            f"{path} holds {signatures.num_series} signatures but the "
            f"index records {num_series} series: mixed generations"
        )
    return signatures


def _load_lsd(directory: Path, sax_space: SaxSpace) -> np.ndarray:
    """Pre-load LSDFile into memory (kept there during query answering)."""
    lsd = SymbolFile(
        directory / LSD_FILENAME, sax_space.segments, read_only=True
    )
    try:
        return lsd.read_all()
    finally:
        lsd.close()
