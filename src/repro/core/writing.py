"""Index writing (Section 3.3.3, Algorithms 6-9, Figure 4).

After index building, leaves hold their raw series (HBuffer slots plus
spill extents) and exact synopses, but internal nodes carry only the
statistics they had when they were split — updating ancestors on every
insert would serialize workers on root-path locks (the DSTree*P ablation
shows exactly that cost).  The writing phase therefore:

1. post-processes every leaf (``ProcessLeaf``): computes the iSAX words of
   its series and pushes the leaf's statistics up the tree —
   ``VSplitSynopsis`` (Algorithm 8) recomputes vertically-split segments
   from raw data, ``HSplitSynopsis`` (Algorithm 9) merges every other
   segment child-into-parent; and
2. materializes LRDFile (raw series in leaf-inorder), LSDFile (iSAX words
   in the same order), and HTree.

With ``parallel_writing`` a pool of WriteIndexWorkers processes leaves
claimed through a FetchAdd counter while the coordinator streams finished
leaves to disk (``WriteLeafData``); the per-leaf processed/written
handshake of Algorithm 7 bounds how many post-processed leaves wait in
memory.  Algorithm 8 is applied per leaf in one vectorized pass (batch
mean/std over the split segment's range, then a single locked min/max
merge), which computes exactly the same synopsis as the per-series loop.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro import obs
from repro.core.atomic import FetchAdd
from repro.core.construction import BuildContext, leaf_data
from repro.core.node import Node, segment_correspondence
from repro.core.prefilter import (
    SIGNATURES_FILENAME,
    SIGNATURES_FORMAT_VERSION,
    SignatureArray,
)
from repro.errors import IndexStateError
from repro.storage import htree
from repro.storage import manifest as manifest_mod
from repro.storage.files import SeriesFile, SymbolFile
from repro.storage.iostats import IOStats
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace

logger = logging.getLogger(__name__)

LRD_FILENAME = "lrd.bin"
LSD_FILENAME = "lsd.bin"
HTREE_FILENAME = "htree.bin"


@dataclass
class WriteResult:
    """Artifacts of a completed index-writing phase."""

    directory: Path
    num_series: int
    num_leaves: int
    series_length: int


#: Artifact publication order; the manifest commits the generation last.
ARTIFACT_NAMES = (LRD_FILENAME, LSD_FILENAME, HTREE_FILENAME)


def write_index(
    ctx: BuildContext,
    directory: Path,
    sax_space: SaxSpace,
    settings: dict,
    stats: Optional[IOStats] = None,
) -> WriteResult:
    """Materialize the index built in ``ctx`` into ``directory``.

    Crash-safe commit protocol: every artifact is streamed to a staging
    name (``<name>.tmp``), fsynced, and fingerprinted (size + CRC32);
    the staged files are then published with atomic renames and the
    generation is committed by atomically publishing ``MANIFEST.json``.
    A crash before the manifest lands leaves either the previous
    generation intact or a mix that open-time verification rejects —
    never a silently torn index.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    leaves = list(ctx.root.iter_leaves_inorder())
    config = ctx.config
    logger.info(
        "writing index: %d leaves into %s (%s)",
        len(leaves),
        directory,
        "parallel" if config.parallel_writing and config.num_write_threads > 1
        else "sequential",
    )

    manifest_mod.clear_staging(
        directory, list(ARTIFACT_NAMES) + [SIGNATURES_FILENAME]
    )
    lrd_staged = manifest_mod.staging_path(directory / LRD_FILENAME)
    lsd_staged = manifest_mod.staging_path(directory / LSD_FILENAME)
    htree_staged = manifest_mod.staging_path(directory / HTREE_FILENAME)

    lrd = SeriesFile(lrd_staged, ctx.hbuffer.series_length, stats=stats)
    lsd = SymbolFile(lsd_staged, sax_space.segments, stats=stats)
    try:
        with obs.io_span("build.write", stats, num_leaves=len(leaves)):
            if config.parallel_writing and config.num_write_threads > 1:
                _write_parallel(ctx, leaves, sax_space, lrd, lsd)
            else:
                _write_sequential(ctx, leaves, sax_space, lrd, lsd)
            lrd.sync()
            lsd.sync()
    finally:
        lrd.close()
        lsd.close()

    num_series = sum(leaf.size for leaf in leaves)
    htree.write_tree_file(htree_staged, ctx.root, settings, stats=stats)

    artifact_names = list(ARTIFACT_NAMES)
    extra_artifacts = {}
    if config.prefilter:
        # Signatures derive from the LSD words as staged: reading the
        # artifact back (rather than re-symbolizing) guarantees the
        # screen and phase 3 prune from the very same symbols.
        signatures_staged = manifest_mod.staging_path(
            directory / SIGNATURES_FILENAME
        )
        lsd_read = SymbolFile(lsd_staged, sax_space.segments, read_only=True)
        try:
            full_symbols = lsd_read.read_all()
        finally:
            lsd_read.close()
        bits = min(config.prefilter_bits, sax_space.bits_per_symbol)
        SignatureArray.from_full_symbols(full_symbols, sax_space, bits).save(
            signatures_staged
        )
        extra_artifacts[SIGNATURES_FILENAME] = manifest_mod.record_artifact(
            signatures_staged, SIGNATURES_FORMAT_VERSION
        )
        artifact_names.append(SIGNATURES_FILENAME)
    else:
        # A stale signature file from a previous prefiltered build would
        # outlive this generation's manifest; drop it.
        (directory / SIGNATURES_FILENAME).unlink(missing_ok=True)

    manifest = manifest_mod.Manifest(
        num_series=num_series,
        series_length=ctx.hbuffer.series_length,
        num_leaves=len(leaves),
        config_digest=manifest_mod.config_digest(
            settings.get("config", settings)
        ),
        artifacts={
            LRD_FILENAME: manifest_mod.record_artifact(
                lrd_staged, manifest_mod.LRD_FORMAT_VERSION
            ),
            LSD_FILENAME: manifest_mod.record_artifact(
                lsd_staged, manifest_mod.LSD_FORMAT_VERSION
            ),
            HTREE_FILENAME: manifest_mod.record_artifact(
                htree_staged, htree.FORMAT_VERSION
            ),
            **extra_artifacts,
        },
    )
    for name in artifact_names:
        manifest_mod.publish(
            manifest_mod.staging_path(directory / name), directory / name
        )
    manifest_mod.save_manifest(directory, manifest)
    return WriteResult(
        directory=directory,
        num_series=num_series,
        num_leaves=len(leaves),
        series_length=ctx.hbuffer.series_length,
    )


# ---------------------------------------------------------------------------
# Leaf post-processing (ProcessLeaf + Algorithms 8-9)
# ---------------------------------------------------------------------------


def process_leaf(ctx: BuildContext, leaf: Node, sax_space: SaxSpace) -> None:
    """Compute a leaf's iSAX words and push its statistics to ancestors."""
    data = leaf_data(ctx, leaf)
    if data.shape[0] != leaf.size:
        raise IndexStateError(
            f"leaf {leaf.node_id} holds {data.shape[0]} series but recorded "
            f"size {leaf.size}"
        )
    leaf.write_cache = data
    if data.shape[0]:
        leaf.sax_words = sax_space.symbolize(paa(data, sax_space.segments))
    else:
        leaf.sax_words = np.empty((0, sax_space.segments), dtype=np.uint8)
    _vsplit_synopsis(leaf, data)
    _hsplit_synopsis(leaf)


def _vsplit_synopsis(leaf: Node, data: np.ndarray) -> None:
    """Algorithm 8, vectorized per leaf.

    For every ancestor whose split was vertical, the statistics of the
    split segment (in the *ancestor's* segmentation) cannot be derived
    from its children's half-segments; they are recomputed here over the
    leaf's raw series and merged into the ancestor under its lock.
    """
    if data.shape[0] == 0:
        return
    node = leaf.parent
    arr = data.astype(np.float64, copy=False)
    while node is not None:
        policy = node.policy
        if policy is not None and policy.vertical:
            start, end = node.segmentation.segment_range(policy.split_segment)
            segment = arr[:, start:end]
            means = segment.mean(axis=1)
            stds = segment.std(axis=1)
            with node.lock:
                node.merge_segment_interval(
                    policy.split_segment,
                    float(means.min()),
                    float(means.max()),
                    float(stds.min()),
                    float(stds.max()),
                )
        node = node.parent


def _hsplit_synopsis(leaf: Node) -> None:
    """Algorithm 9: merge each node's synopsis into its parent, leaf→root.

    Each leaf's walk pushes its own box all the way up, so ancestors end
    up exact regardless of how concurrent walks interleave (min/max
    merging is monotone and every walk re-propagates what it merged).
    """
    child = leaf
    parent = leaf.parent
    while parent is not None:
        child_rows, parent_rows = segment_correspondence(parent)
        with parent.lock:
            parent.merge_synopsis_rows(parent_rows, child.synopsis, child_rows)
        child = parent
        parent = parent.parent


# ---------------------------------------------------------------------------
# Algorithm 6/7: coordinator + WriteIndexWorkers
# ---------------------------------------------------------------------------


def _write_sequential(
    ctx: BuildContext,
    leaves: list[Node],
    sax_space: SaxSpace,
    lrd: SeriesFile,
    lsd: SymbolFile,
) -> None:
    """NoWPara path: process and materialize leaves one by one."""
    for leaf in leaves:
        process_leaf(ctx, leaf, sax_space)
        _write_leaf(leaf, lrd, lsd)


def _write_parallel(
    ctx: BuildContext,
    leaves: list[Node],
    sax_space: SaxSpace,
    lrd: SeriesFile,
    lsd: SymbolFile,
) -> None:
    """Algorithm 6: workers post-process, the coordinator streams to disk."""
    counter = FetchAdd(0)
    abort = threading.Event()
    errors: list[BaseException] = []
    error_lock = threading.Lock()

    def worker() -> None:
        # Algorithm 7: claim leaves through the shared counter; wait for
        # the coordinator to write each processed leaf before taking the
        # next one, bounding staged memory.
        try:
            while not abort.is_set():
                j = counter.fetch_add(1)
                if j >= len(leaves):
                    return
                leaf = leaves[j]
                process_leaf(ctx, leaf, sax_space)
                leaf.processed.set()
                while not leaf.written.wait(timeout=0.1):
                    if abort.is_set():
                        return
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            with error_lock:
                errors.append(exc)
            abort.set()

    # Write workers start on fresh threads; parent their spans to the
    # enclosing build.write span captured on this (coordinator) thread.
    parent = obs.current_span()

    def run_worker(index: int) -> None:
        with obs.span("build.write.worker", parent=parent, worker=index):
            worker()

    threads = [
        threading.Thread(
            target=run_worker,
            args=(i,),
            name=f"hercules-write-{i}",
            daemon=True,
        )
        for i in range(ctx.config.num_write_threads)
    ]
    for thread in threads:
        thread.start()

    # WriteLeafData: materialize leaves in inorder as they become ready.
    try:
        with obs.span("build.write.coordinator", num_leaves=len(leaves)):
            for leaf in leaves:
                while not leaf.processed.wait(timeout=0.1):
                    if abort.is_set():
                        break
                if abort.is_set():
                    break
                _write_leaf(leaf, lrd, lsd)
    except BaseException as exc:  # noqa: BLE001
        with error_lock:
            errors.append(exc)
        abort.set()
    finally:
        if not abort.is_set():
            abort.set()  # release workers idling in written.wait loops
        for leaf in leaves:
            leaf.written.set()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]


def _write_leaf(leaf: Node, lrd: SeriesFile, lsd: SymbolFile) -> None:
    """Append one processed leaf's raw data and iSAX words to disk."""
    data = leaf.write_cache
    if data is None:
        raise IndexStateError(f"leaf {leaf.node_id} written before processing")
    if data.shape[0]:
        position = lrd.append_batch(data)
        lsd.append_batch(leaf.sax_words)
    else:
        position = lrd.num_series
    leaf.file_position = position
    leaf.write_cache = None
    leaf.written.set()
