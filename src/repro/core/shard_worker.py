"""Process workers behind the sharded engine.

Two worker kinds live here, both plain top-level functions so they are
picklable under every ``multiprocessing`` start method:

* **build workers** (:func:`build_worker_main`) pull ``(shard_id, row
  range, directory)`` tasks off a queue, attach to the dataset published
  once in :class:`~multiprocessing.shared_memory.SharedMemory` (zero
  copies per worker beyond the one slice each shard owns), run the
  ordinary single-index :meth:`HerculesIndex.build`, and ship a
  picklable reply home: the :class:`~repro.core.index.BuildReport` plus
  the worker's metrics registry state and trace spans, which the
  coordinator folds into its own registry/trace for cross-process
  attribution;

* **query workers** (:func:`query_worker_main`) are *persistent*: each
  owns a subset of the opened shards for the life of the pool and
  answers ``("query", ...)`` requests over a pipe.  They prune against
  the coordinator's global BSF² through :class:`ProcessBsf` — a raw
  shared double guarded by a process-shared lock, read through the same
  throttled :class:`~repro.core.results.LinkedResultSet` the thread path
  uses — and reply with shard answers whose positions are already
  globalized (``row_base`` added).

The start method defaults to ``fork`` where available (cheap, and
``repro.obs`` re-initializes its locks in forked children); set
``REPRO_MP_START=spawn`` to override.  Everything shipped between
processes is a plain dict/ndarray — no live index objects ever cross
the boundary.
"""

from __future__ import annotations

import ctypes
import dataclasses
import math
import os
import traceback
from pathlib import Path
from typing import Optional

import numpy as np

from repro import obs
from repro.core.config import HerculesConfig
from repro.core.results import LinkedResultSet
from repro.errors import ShardError

__all__ = [
    "ProcessBsf",
    "ShardQueryPool",
    "build_shards_in_processes",
    "build_worker_main",
    "mp_context",
    "query_worker_main",
]

#: Seconds without any worker progress before a build is declared dead.
_BUILD_STALL_TIMEOUT = 600.0


def mp_context():
    """The multiprocessing context sharded workers run under.

    ``fork`` when the platform offers it (Linux/macOS; child inherits
    the parent's pages so SharedMemory attach is instant), else
    ``spawn``.  ``REPRO_MP_START`` forces a specific method — the test
    suite uses it to exercise spawn-compatibility on fork platforms.
    """
    import multiprocessing as mp

    method = os.environ.get("REPRO_MP_START")
    if method:
        return mp.get_context(method)
    return mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )


class ProcessBsf:
    """A process-shared global BSF² cell (the cross-process link).

    Same contract as :class:`~repro.core.results.SharedBsf`, backed by a
    raw shared ``double`` plus a process-shared lock.  A raw value (not
    the synchronized ``multiprocessing.Value`` wrapper) keeps reads from
    paying a semaphore acquire *twice*; the explicit lock on both sides
    rules out torn reads of the 8-byte cell on exotic platforms.  The
    :class:`~repro.core.results.LinkedResultSet` read throttle keeps the
    lock off the hot path.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, ctx=None) -> None:
        ctx = ctx if ctx is not None else mp_context()
        self._value = ctx.RawValue(ctypes.c_double, math.inf)
        self._lock = ctx.Lock()

    def get(self) -> float:
        with self._lock:
            return self._value.value

    def publish(self, value: float) -> None:
        with self._lock:
            if value < self._value.value:
                self._value.value = value

    def reset(self) -> None:
        with self._lock:
            self._value.value = math.inf


# ---------------------------------------------------------------------------
# Build workers
# ---------------------------------------------------------------------------


def build_worker_main(
    task_queue,
    result_queue,
    shm_name: str,
    shape: tuple,
    dtype_str: str,
    config_fields: dict,
    trace_enabled: bool,
) -> None:
    """Entry point of one build worker process.

    Consumes ``(shard_id, start, stop, shard_dir)`` tasks until the
    ``None`` sentinel.  Each reply is ``("ok", shard_id, payload)`` or
    ``("error", shard_id, traceback_text)``; the payload carries the
    build report as a dict plus the worker's observability state.
    """
    from multiprocessing import shared_memory

    from repro.core.index import HerculesIndex

    config = HerculesConfig(**config_fields)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        data = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        while True:
            task = task_queue.get()
            if task is None:
                break
            shard_id, start, stop, shard_dir = task
            try:
                registry = obs.MetricsRegistry()
                trace = obs.Trace(f"shard-{shard_id}") if trace_enabled else None
                if trace is not None:
                    with obs.use_trace(trace):
                        report = _build_one_shard(
                            HerculesIndex, data, start, stop, shard_dir, config
                        )
                else:
                    report = _build_one_shard(
                        HerculesIndex, data, start, stop, shard_dir, config
                    )
                obs.record_build(registry, report)
                result_queue.put(
                    (
                        "ok",
                        shard_id,
                        {
                            "report": dataclasses.asdict(report),
                            "metrics": registry.export_state(),
                            "spans": trace.export_spans() if trace else [],
                            "pid": os.getpid(),
                        },
                    )
                )
            except BaseException:
                result_queue.put(("error", shard_id, traceback.format_exc()))
    finally:
        shm.close()


def _build_one_shard(index_cls, data, start, stop, shard_dir, config):
    """Build one shard from its SharedMemory slice; returns the report."""
    # Copy the slice out of shared memory: the build keeps references to
    # its input rows, and they must outlive the SharedMemory mapping.
    rows = np.array(data[start:stop])
    with obs.span("build.shard", rows=int(stop - start)):
        index = index_cls.build(rows, config, directory=Path(shard_dir))
    report = index.build_report
    index.close()
    return report


def build_shards_in_processes(
    data: np.ndarray,
    ranges: list,
    shard_dirs: list,
    config: HerculesConfig,
    workers: int,
    trace_enabled: bool,
) -> dict:
    """Build every shard in worker processes; returns id → reply payload.

    The dataset is published once in SharedMemory; ``workers`` processes
    pull shard tasks off a queue (so N shards load-balance over fewer
    workers).  Raises :class:`~repro.errors.ShardError` with the worker
    traceback if any shard fails, or if all workers die without
    finishing.
    """
    from multiprocessing import shared_memory
    from queue import Empty

    ctx = mp_context()
    data = np.ascontiguousarray(data)
    shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
    procs = []
    try:
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[:] = data
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        n_workers = max(1, min(workers, len(ranges)))
        for _ in range(n_workers):
            proc = ctx.Process(
                target=build_worker_main,
                args=(
                    task_queue,
                    result_queue,
                    shm.name,
                    data.shape,
                    str(data.dtype),
                    dataclasses.asdict(config),
                    trace_enabled,
                ),
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        for shard_id, ((start, stop), shard_dir) in enumerate(
            zip(ranges, shard_dirs)
        ):
            task_queue.put((shard_id, start, stop, str(shard_dir)))
        for _ in procs:
            task_queue.put(None)

        replies: dict[int, dict] = {}
        waited = 0.0
        while len(replies) < len(ranges):
            try:
                status, shard_id, payload = result_queue.get(timeout=1.0)
                waited = 0.0
            except Empty:
                waited += 1.0
                if not any(p.is_alive() for p in procs):
                    raise ShardError(
                        "all shard build workers exited before every shard "
                        f"reported ({len(replies)}/{len(ranges)} done)"
                    ) from None
                if waited > _BUILD_STALL_TIMEOUT:
                    raise ShardError(
                        f"shard build stalled: no worker progress for "
                        f"{_BUILD_STALL_TIMEOUT:.0f}s"
                    ) from None
                continue
            if status == "error":
                raise ShardError(
                    f"shard {shard_id} build failed in worker:\n{payload}"
                )
            replies[shard_id] = payload
        for proc in procs:
            proc.join(timeout=30.0)
        return replies
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


# ---------------------------------------------------------------------------
# Query workers
# ---------------------------------------------------------------------------


def query_worker_main(
    conn,
    specs: list,
    cache_bytes_per_shard: int,
    verify: str,
    bsf_link: ProcessBsf,
) -> None:
    """Entry point of one persistent query worker process.

    ``specs`` is a list of ``(shard_id, directory, row_base)`` this
    worker owns.  The protocol over ``conn``:

    * ``("query", query, k, mode, config_fields_or_None, l_max)`` →
      ``("ok", [(shard_id, answer), ...])`` with globalized positions,
      or ``("error", traceback_text)``;
    * ``("close",)`` (or EOF) → clean shutdown.

    Every request prunes through a fresh
    :class:`~repro.core.results.LinkedResultSet` per shard, all linked
    to the coordinator's shared BSF² cell — so a tight bound found by
    any process prunes every other process's remaining work.
    """
    from repro.core.index import HerculesIndex

    indexes = []
    try:
        for shard_id, directory, row_base in specs:
            index = HerculesIndex.open(
                directory, verify=verify, cache_bytes=cache_bytes_per_shard
            )
            indexes.append((shard_id, row_base, index))
        conn.send(("ready", os.getpid()))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "close":
                break
            if kind != "query":  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown request {kind!r}"))
                continue
            _, query, k, mode, config_fields, l_max = message
            try:
                config = (
                    HerculesConfig(**config_fields) if config_fields else None
                )
                out = []
                for shard_id, row_base, index in indexes:
                    results = LinkedResultSet(k, bsf_link)
                    if mode == "approx":
                        answer = index.knn_approx(
                            query, k=k, l_max=l_max, results=results
                        )
                    else:
                        answer = index.knn(
                            query, k=k, config=config, results=results
                        )
                    answer.positions = answer.positions + row_base
                    answer.profile.io = index.query_io.snapshot()
                    index.query_io.reset()
                    out.append((shard_id, answer))
                conn.send(("ok", out))
            except BaseException:
                conn.send(("error", traceback.format_exc()))
    except BaseException:  # pragma: no cover - open failure surfaces below
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        for _, _, index in indexes:
            index.close()
        conn.close()


class ShardQueryPool:
    """A persistent pool of query worker processes over opened shards.

    Shards are distributed round-robin over ``workers`` processes; each
    worker opens its shards once (cold) and keeps them — and their leaf
    caches — warm across queries, matching the paper's asynchronous
    warm-cache workload model.  One :class:`ProcessBsf` cell links every
    worker's pruning to the global best-so-far; the coordinator resets
    it before each scatter.
    """

    def __init__(
        self,
        shard_specs: list,
        workers: int,
        cache_bytes_per_shard: int,
        verify: str,
    ) -> None:
        ctx = mp_context()
        self.bsf = ProcessBsf(ctx)
        self._conns = []
        self._procs = []
        workers = max(1, min(workers, len(shard_specs)))
        groups = [shard_specs[i::workers] for i in range(workers)]
        for group in groups:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=query_worker_main,
                args=(
                    child_conn,
                    [(sid, str(path), base) for sid, path, base in group],
                    cache_bytes_per_shard,
                    verify,
                    self.bsf,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        for conn in self._conns:
            reply = self._recv(conn)
            if reply[0] != "ready":
                self.close()
                raise ShardError(f"query worker failed to open shards:\n{reply[1]}")

    @staticmethod
    def _recv(conn):
        try:
            return conn.recv()
        except EOFError:
            raise ShardError(
                "query worker process died (pipe closed); rerun with "
                "shard workers disabled to debug in-process"
            ) from None

    def query(
        self,
        query: np.ndarray,
        k: int,
        mode: str = "exact",
        config: Optional[HerculesConfig] = None,
        l_max: Optional[int] = None,
    ) -> list:
        """Scatter one query to every worker; gather ``(shard_id, answer)``.

        Returned pairs are sorted by shard id; positions are global.
        """
        self.bsf.reset()
        payload = (
            "query",
            np.ascontiguousarray(query),
            int(k),
            mode,
            dataclasses.asdict(config) if config is not None else None,
            l_max,
        )
        for conn in self._conns:
            conn.send(payload)
        pairs = []
        errors = []
        for conn in self._conns:
            reply = self._recv(conn)
            if reply[0] == "error":
                errors.append(reply[1])
            else:
                pairs.extend(reply[1])
        if errors:
            raise ShardError(
                "shard query failed in worker:\n" + "\n".join(errors)
            )
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
