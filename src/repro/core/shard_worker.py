"""Process workers behind the sharded engine, plus their supervision.

Two worker kinds live here, both plain top-level functions so they are
picklable under every ``multiprocessing`` start method:

* **build workers** (:func:`build_worker_main`) pull ``(shard_id, row
  range, directory)`` tasks off a queue, attach to the dataset published
  once in :class:`~multiprocessing.shared_memory.SharedMemory` (zero
  copies per worker beyond the one slice each shard owns), run the
  ordinary single-index :meth:`HerculesIndex.build`, and ship a
  picklable reply home: the :class:`~repro.core.index.BuildReport` plus
  the worker's metrics registry state and trace spans, which the
  coordinator folds into its own registry/trace for cross-process
  attribution;

* **query workers** (:func:`query_worker_main`) are *persistent*: each
  owns a subset of the opened shards for the life of the pool and
  answers ``("query", ...)`` requests over a pipe.  They prune against
  the coordinator's global BSF² through :class:`ProcessBsf` — a raw
  shared double guarded by a process-shared lock, read through the same
  throttled :class:`~repro.core.results.LinkedResultSet` the thread path
  uses — and reply with shard answers whose positions are already
  globalized (``row_base`` added).

Both coordinators *supervise* their workers (ParIS+/MESSI treat worker
failure as a first-class concern, and so does this engine):

* the build coordinator tracks which worker claimed which shard, detects
  dead workers by liveness polling, **requeues** a dead worker's
  unfinished shards onto survivors, and **respawns** replacements up to
  ``config.max_worker_restarts`` before failing — one OOM-killed worker
  no longer wastes a multi-hour build;
* the query pool retries a failed dispatch per its
  :class:`~repro.retry.RetryPolicy` (exponential backoff, deterministic
  per-shard jitter, per-dispatch timeout and whole-query deadline),
  restarts dead or timed-out workers within the same restart budget, and
  reports per-shard errors to the caller instead of failing closed —
  :class:`~repro.core.sharding.ShardedIndex` decides whether to degrade
  or raise;
* shutdown never hangs: workers that ignore the join timeout are
  escalated ``terminate()`` → ``kill()`` with a logged warning.

Workers honour fault plans shipped through the
:data:`repro.storage.faults.PLANS_ENV` channel (see
:func:`repro.storage.faults.worker_injection`), which is how the chaos
matrix kills workers mid-build and injects flaky reads mid-query.

The start method defaults to ``fork`` where available (cheap, and
``repro.obs`` re-initializes its locks in forked children); set
``REPRO_MP_START=spawn`` to override.  Everything shipped between
processes is a plain dict/ndarray — no live index objects ever cross
the boundary.
"""

from __future__ import annotations

import ctypes
import dataclasses
import logging
import math
import os
import shutil
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro import obs
from repro.core.config import HerculesConfig
from repro.core.results import LinkedResultSet
from repro.errors import ShardError, ShardTimeoutError, WorkerSupervisionError
from repro.retry import RetryPolicy
from repro.storage import faults

logger = logging.getLogger(__name__)

__all__ = [
    "GatherOutcome",
    "ProcessBsf",
    "ProcessBsfVector",
    "ShardQueryPool",
    "SupervisionReport",
    "build_shards_in_processes",
    "build_worker_main",
    "mp_context",
    "query_worker_main",
    "reap_processes",
]

#: Grace period after terminate() before escalating to kill().
_ESCALATION_GRACE = 5.0

#: Cells in the pool's shared per-query BSF² vector; batches larger than
#: this are chunked by the coordinator (one scatter per chunk).
_BSF_VECTOR_CAPACITY = 256


def mp_context():
    """The multiprocessing context sharded workers run under.

    ``fork`` when the platform offers it (Linux/macOS; child inherits
    the parent's pages so SharedMemory attach is instant), else
    ``spawn``.  ``REPRO_MP_START`` forces a specific method — the test
    suite uses it to exercise spawn-compatibility on fork platforms.
    """
    import multiprocessing as mp

    method = os.environ.get("REPRO_MP_START")
    if method:
        return mp.get_context(method)
    return mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )


def reap_processes(procs, timeout: float, label: str) -> int:
    """Join every process, escalating terminate() → kill() on stragglers.

    A worker that never exits used to hang shutdown forever: ``join``
    with a timeout *returns* on a stuck process but nothing followed up.
    Now a process still alive after ``timeout`` seconds is terminated,
    given :data:`_ESCALATION_GRACE` to die, then SIGKILLed; every
    escalation is logged.  Returns the number of escalated workers.
    """
    deadline = time.monotonic() + timeout
    for proc in procs:
        proc.join(timeout=max(deadline - time.monotonic(), 0.0))
    escalated = 0
    for proc in procs:
        if not proc.is_alive():
            continue
        escalated += 1
        logger.warning(
            "%s worker pid %s ignored shutdown for %.1fs; terminating",
            label, proc.pid, timeout,
        )
        proc.terminate()
        proc.join(timeout=_ESCALATION_GRACE)
        if proc.is_alive():  # pragma: no cover - needs an unkillable child
            logger.warning(
                "%s worker pid %s survived terminate(); killing",
                label, proc.pid,
            )
            proc.kill()
            proc.join(timeout=_ESCALATION_GRACE)
    return escalated


class ProcessBsf:
    """A process-shared global BSF² cell (the cross-process link).

    Same contract as :class:`~repro.core.results.SharedBsf`, backed by a
    raw shared ``double`` plus a process-shared lock.  A raw value (not
    the synchronized ``multiprocessing.Value`` wrapper) keeps reads from
    paying a semaphore acquire *twice*; the explicit lock on both sides
    rules out torn reads of the 8-byte cell on exotic platforms.  The
    :class:`~repro.core.results.LinkedResultSet` read throttle keeps the
    lock off the hot path.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, ctx=None) -> None:
        ctx = ctx if ctx is not None else mp_context()
        self._value = ctx.RawValue(ctypes.c_double, math.inf)
        self._lock = ctx.Lock()

    def get(self) -> float:
        with self._lock:
            return self._value.value

    def publish(self, value: float) -> None:
        with self._lock:
            if value < self._value.value:
                self._value.value = value

    def reset(self) -> None:
        with self._lock:
            self._value.value = math.inf


class _BsfCell:
    """One query's view into a :class:`ProcessBsfVector` slot.

    Duck-typed to the :class:`~repro.core.results.SharedBsf` contract
    (``get``/``publish``/``reset``) so a
    :class:`~repro.core.results.LinkedResultSet` can link to one slot of
    the batch vector exactly as it links to a scalar cell.
    """

    __slots__ = ("_vector", "_index")

    def __init__(self, vector: "ProcessBsfVector", index: int) -> None:
        self._vector = vector
        self._index = index

    def get(self) -> float:
        return self._vector.get(self._index)

    def publish(self, value: float) -> None:
        self._vector.publish(self._index, value)

    def reset(self) -> None:
        self._vector.reset_cell(self._index)


class ProcessBsfVector:
    """A process-shared vector of per-query BSF² cells (batch broadcast).

    The batched scatter needs one global bound *per query in flight*:
    a single :class:`ProcessBsf` would let query A's tight bound prune
    query B's candidates, which is wrong.  One ``RawArray`` of doubles
    under one process-shared lock keeps the whole vector in a single
    shared mapping created once at pool start (pipes never carry BSF
    traffic); workers address individual slots through :meth:`cell`
    views.  Capacity is fixed at creation — coordinators chunk larger
    batches.
    """

    __slots__ = ("_values", "_lock", "capacity")

    def __init__(self, ctx=None, capacity: int = _BSF_VECTOR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        ctx = ctx if ctx is not None else mp_context()
        self.capacity = capacity
        self._values = ctx.RawArray(ctypes.c_double, [math.inf] * capacity)
        self._lock = ctx.Lock()

    def get(self, index: int) -> float:
        with self._lock:
            return self._values[index]

    def publish(self, index: int, value: float) -> None:
        with self._lock:
            if value < self._values[index]:
                self._values[index] = value

    def reset_cell(self, index: int) -> None:
        with self._lock:
            self._values[index] = math.inf

    def reset(self) -> None:
        """Reset every cell (the coordinator calls this per scatter)."""
        with self._lock:
            for index in range(self.capacity):
                self._values[index] = math.inf

    def cell(self, index: int) -> _BsfCell:
        if not 0 <= index < self.capacity:
            raise IndexError(
                f"BSF cell {index} outside capacity {self.capacity}"
            )
        return _BsfCell(self, index)


# ---------------------------------------------------------------------------
# Build workers
# ---------------------------------------------------------------------------


def build_worker_main(
    task_queue,
    result_queue,
    shm_name: str,
    shape: tuple,
    dtype_str: str,
    config_fields: dict,
    trace_enabled: bool,
) -> None:
    """Entry point of one build worker process.

    Consumes ``(shard_id, start, stop, shard_dir)`` tasks until the
    ``None`` sentinel.  Each task is announced with a ``("claim",
    shard_id, pid)`` message *before* any work happens, so the
    supervisor knows which shards to requeue if this process dies; the
    reply is ``("ok", shard_id, payload)`` or ``("error", shard_id,
    traceback_text)``, the payload carrying the build report as a dict
    plus the worker's observability state.  Shipped fault plans (the
    chaos channel) are installed around each shard's build so operation
    counts restart per shard.
    """
    from multiprocessing import shared_memory

    from repro.core.index import HerculesIndex

    config = HerculesConfig(**config_fields)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        data = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        while True:
            task = task_queue.get()
            if task is None:
                break
            shard_id, start, stop, shard_dir = task
            result_queue.put(("claim", shard_id, os.getpid()))
            try:
                registry = obs.MetricsRegistry()
                journal = obs.EventJournal()
                hub = obs.TelemetryHub(registry=registry, journal=journal)
                trace = obs.Trace(f"shard-{shard_id}") if trace_enabled else None
                with faults.worker_injection([shard_id]), obs.use_hub(hub):
                    if trace is not None:
                        with obs.use_trace(trace):
                            report = _build_one_shard(
                                HerculesIndex, data, start, stop, shard_dir, config
                            )
                    else:
                        report = _build_one_shard(
                            HerculesIndex, data, start, stop, shard_dir, config
                        )
                obs.record_build(registry, report)
                result_queue.put(
                    (
                        "ok",
                        shard_id,
                        {
                            "report": dataclasses.asdict(report),
                            "metrics": registry.export_state(),
                            "spans": trace.export_spans() if trace else [],
                            "events": journal.export_state(),
                            "pid": os.getpid(),
                        },
                    )
                )
            except BaseException:
                result_queue.put(("error", shard_id, traceback.format_exc()))
    finally:
        shm.close()


def _build_one_shard(index_cls, data, start, stop, shard_dir, config):
    """Build one shard from its SharedMemory slice; returns the report."""
    # Copy the slice out of shared memory: the build keeps references to
    # its input rows, and they must outlive the SharedMemory mapping.
    rows = np.array(data[start:stop])
    with obs.span("build.shard", rows=int(stop - start)):
        index = index_cls.build(rows, config, directory=Path(shard_dir))
    report = index.build_report
    index.close()
    return report


@dataclass
class SupervisionReport:
    """What the build supervisor had to do to finish the build.

    All-zero on a healthy run.  ``events`` carries one human-readable
    line per intervention for ``repro build -v`` and test assertions.
    """

    worker_restarts: int = 0
    requeued_tasks: int = 0
    task_retries: int = 0
    escalations: int = 0
    events: list = field(default_factory=list)

    def note(self, message: str) -> None:
        self.events.append(message)
        logger.warning("build supervision: %s", message)


def _reset_shard_dir(shard_dir) -> None:
    """Wipe a shard directory before its build task is re-attempted.

    A worker that died mid-build leaves partial artifacts behind; the
    retry must start from clean ground or appends would corrupt it.
    """
    shutil.rmtree(shard_dir, ignore_errors=True)


def build_shards_in_processes(
    data: np.ndarray,
    ranges: list,
    shard_dirs: list,
    config: HerculesConfig,
    workers: int,
    trace_enabled: bool,
    worker_main=None,
) -> tuple:
    """Build every shard in worker processes under supervision.

    The dataset is published once in SharedMemory; ``workers`` processes
    pull shard tasks off a queue (so N shards load-balance over fewer
    workers).  The coordinator polls worker liveness every
    ``config.shard_poll_seconds`` while gathering replies:

    * a **dead worker** has its claimed-but-unfinished shards wiped and
      requeued onto survivors, and a replacement process is spawned as
      long as the ``config.max_worker_restarts`` budget lasts;
    * a shard whose build **errored** inside a live worker is wiped and
      requeued up to ``config.shard_retry_attempts`` total tries, then
      the worker traceback is raised as :class:`ShardError`;
    * no reply of any kind for ``config.build_stall_timeout`` seconds
      raises :class:`WorkerSupervisionError` (the dead-build watchdog),
      as does losing every worker with no restart budget left.

    Returns ``(replies, supervision)``: shard id → reply payload, plus
    the :class:`SupervisionReport` of every intervention.

    ``worker_main`` substitutes the worker entry point (same signature
    as :func:`build_worker_main`) — the supervision tests inject
    scripted workers that die, stall, or answer out of protocol.
    """
    from multiprocessing import shared_memory
    from queue import Empty

    if worker_main is None:
        worker_main = build_worker_main
    ctx = mp_context()
    data = np.ascontiguousarray(data)
    shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
    procs = []
    supervision = SupervisionReport()
    try:
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[:] = data
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        worker_args = (
            task_queue,
            result_queue,
            shm.name,
            data.shape,
            str(data.dtype),
            dataclasses.asdict(config),
            trace_enabled,
        )

        spawned = 0

        def spawn_worker():
            nonlocal spawned
            proc = ctx.Process(
                target=worker_main, args=worker_args, daemon=True
            )
            proc.start()
            obs.watch_process(f"shard.{spawned}", proc.pid)
            spawned += 1
            return proc

        n_workers = max(1, min(workers, len(ranges)))
        procs.extend(spawn_worker() for _ in range(n_workers))
        tasks = {}
        for shard_id, ((start, stop), shard_dir) in enumerate(
            zip(ranges, shard_dirs)
        ):
            tasks[shard_id] = (start, stop, str(shard_dir))
            task_queue.put((shard_id, start, stop, str(shard_dir)))

        replies: dict[int, dict] = {}
        claims: dict[int, set] = {}  # worker pid → claimed shard ids
        attempts = {shard_id: 1 for shard_id in tasks}
        restarts_left = config.max_worker_restarts
        waited = 0.0

        def handle_dead_worker(proc) -> None:
            nonlocal restarts_left
            unfinished = claims.pop(proc.pid, set()) - set(replies)
            for shard_id in sorted(unfinished):
                _reset_shard_dir(tasks[shard_id][2])
                start, stop, shard_dir = tasks[shard_id]
                task_queue.put((shard_id, start, stop, shard_dir))
                supervision.requeued_tasks += 1
            procs.remove(proc)
            detail = (
                f"worker pid {proc.pid} died (exitcode {proc.exitcode}) "
                f"holding shards {sorted(unfinished)}"
            )
            if restarts_left > 0:
                restarts_left -= 1
                replacement = spawn_worker()
                procs.append(replacement)
                supervision.worker_restarts += 1
                supervision.note(
                    f"{detail}; requeued and respawned as pid "
                    f"{replacement.pid} ({restarts_left} restarts left)"
                )
                with obs.span(
                    "shard.worker_restart",
                    dead_pid=proc.pid,
                    exitcode=proc.exitcode,
                    requeued=len(unfinished),
                ):
                    pass
                obs.emit_event(
                    "worker_restart",
                    kind="build",
                    dead_pid=proc.pid,
                    new_pid=replacement.pid,
                    exitcode=proc.exitcode,
                    requeued=sorted(unfinished),
                    restarts_left=restarts_left,
                )
            else:
                supervision.note(
                    f"{detail}; restart budget exhausted, "
                    f"{len(procs)} workers remain"
                )

        while len(replies) < len(ranges):
            try:
                message = result_queue.get(timeout=config.shard_poll_seconds)
            except Empty:
                waited += config.shard_poll_seconds
                for proc in [p for p in procs if not p.is_alive()]:
                    handle_dead_worker(proc)
                if not procs:
                    raise WorkerSupervisionError(
                        "all shard build workers died and the restart "
                        f"budget ({config.max_worker_restarts}) is spent "
                        f"({len(replies)}/{len(ranges)} shards done)"
                    ) from None
                if waited > config.build_stall_timeout:
                    obs.emit_event(
                        "stall_watchdog",
                        waited=round(waited, 3),
                        timeout=config.build_stall_timeout,
                        done=len(replies),
                        total=len(ranges),
                    )
                    raise WorkerSupervisionError(
                        f"shard build stalled: no worker progress for "
                        f"{config.build_stall_timeout:.0f}s "
                        f"({len(replies)}/{len(ranges)} shards done)"
                    ) from None
                continue
            waited = 0.0
            if (
                not isinstance(message, tuple)
                or len(message) != 3
                or message[0] not in ("claim", "ok", "error")
            ):
                raise ShardError(
                    f"malformed reply from build worker: {message!r}"
                )
            status, shard_id, payload = message
            if status == "claim":
                claims.setdefault(payload, set()).add(shard_id)
                continue
            for owned in claims.values():
                owned.discard(shard_id)
            if status == "ok":
                if not isinstance(payload, dict) or "report" not in payload:
                    raise ShardError(
                        f"malformed build reply for shard {shard_id}: "
                        f"{payload!r}"
                    )
                replies[shard_id] = payload
                continue
            # status == "error": the shard failed inside a live worker.
            if attempts[shard_id] < config.shard_retry_attempts:
                attempts[shard_id] += 1
                supervision.task_retries += 1
                _reset_shard_dir(tasks[shard_id][2])
                start, stop, shard_dir = tasks[shard_id]
                task_queue.put((shard_id, start, stop, shard_dir))
                supervision.note(
                    f"shard {shard_id} build failed (attempt "
                    f"{attempts[shard_id] - 1}/{config.shard_retry_attempts});"
                    " wiped and requeued"
                )
            else:
                raise ShardError(
                    f"shard {shard_id} build failed in worker after "
                    f"{attempts[shard_id]} attempts:\n{payload}"
                )
        for _ in procs:
            task_queue.put(None)
        supervision.escalations += reap_processes(
            procs, config.build_join_timeout, "build"
        )
        return replies, supervision
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


# ---------------------------------------------------------------------------
# Query workers
# ---------------------------------------------------------------------------


def query_worker_main(
    conn,
    specs: list,
    cache_bytes_per_shard: int,
    verify: str,
    bsf_link: ProcessBsf,
    bsf_vector: Optional[ProcessBsfVector] = None,
) -> None:
    """Entry point of one persistent query worker process.

    ``specs`` is a list of ``(shard_id, directory, row_base)`` this
    worker owns.  The protocol over ``conn``:

    * ``("query", query, k, mode, config_fields_or_None, l_max,
      shard_ids_or_None)`` → ``("ok", [(shard_id, answer), ...],
      [(shard_id, error_text), ...])`` with globalized positions —
      per-shard failures are *collected*, not fatal, so one bad shard
      does not void its siblings' work, and a retry can target just the
      failed subset via ``shard_ids``;
    * ``("query_batch", queries, k, config_fields_or_None,
      shard_ids_or_None)`` → ``("ok", [(shard_id, batch_answer), ...],
      errors)`` — ONE round-trip answers the whole batch on every owned
      shard through :meth:`~repro.core.index.HerculesIndex.knn_batch`,
      each query pruning against its own slot of the shared
      :class:`ProcessBsfVector`;
    * ``("close",)`` (or EOF) → clean shutdown.

    Every request prunes through a fresh
    :class:`~repro.core.results.LinkedResultSet` per shard, all linked
    to the coordinator's shared BSF² cell — so a tight bound found by
    any process prunes every other process's remaining work.  Shipped
    fault plans targeting any owned shard are installed for the worker's
    whole life (the chaos channel into query paths).
    """
    from repro.core.index import HerculesIndex

    indexes = []
    try:
        with faults.worker_injection([sid for sid, _, _ in specs]):
            for shard_id, directory, row_base in specs:
                index = HerculesIndex.open(
                    directory, verify=verify, cache_bytes=cache_bytes_per_shard
                )
                indexes.append((shard_id, row_base, index))
            conn.send(("ready", os.getpid()))
            while True:
                try:
                    message = conn.recv()
                except EOFError:
                    break
                kind = message[0]
                if kind == "close":
                    break
                if kind == "query_batch":
                    _serve_query_batch(conn, indexes, bsf_vector, message)
                    continue
                if kind != "query":  # pragma: no cover - protocol guard
                    conn.send(("error", f"unknown request {kind!r}"))
                    continue
                _, query, k, mode, config_fields, l_max, only = message
                try:
                    config = (
                        HerculesConfig(**config_fields) if config_fields else None
                    )
                    out = []
                    shard_errors = []
                    for shard_id, row_base, index in indexes:
                        if only is not None and shard_id not in only:
                            continue
                        try:
                            results = LinkedResultSet(k, bsf_link)
                            if mode == "approx":
                                answer = index.knn_approx(
                                    query, k=k, l_max=l_max, results=results
                                )
                            else:
                                answer = index.knn(
                                    query, k=k, config=config, results=results
                                )
                            answer.positions = answer.positions + row_base
                            answer.profile.io = index.query_io.snapshot()
                            index.query_io.reset()
                            out.append((shard_id, answer))
                        except Exception:
                            shard_errors.append(
                                (shard_id, traceback.format_exc())
                            )
                    conn.send(("ok", out, shard_errors))
                except BaseException:
                    conn.send(("error", traceback.format_exc()))
    except BaseException:  # pragma: no cover - open failure surfaces below
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        for _, _, index in indexes:
            index.close()
        conn.close()


def _serve_query_batch(conn, indexes, bsf_vector, message) -> None:
    """Answer one ``("query_batch", ...)`` request on every owned shard.

    Each query in the batch links to its own cell of the shared BSF²
    vector, so bounds broadcast across processes per query — never
    between queries.  Per-query I/O is unattributable inside a shared
    scan, so profiles ship with ``io=None`` (the merge tolerates it) and
    the per-shard I/O counters are reset for the next request.
    """
    from repro.core.results import ResultSet

    try:
        _, queries, k, config_fields, only = message
        config = HerculesConfig(**config_fields) if config_fields else None
        num_queries = int(queries.shape[0])
        out = []
        shard_errors = []
        for shard_id, row_base, index in indexes:
            if only is not None and shard_id not in only:
                continue
            try:
                if bsf_vector is not None and num_queries <= bsf_vector.capacity:
                    results = [
                        LinkedResultSet(k, bsf_vector.cell(qi))
                        for qi in range(num_queries)
                    ]
                else:  # pragma: no cover - coordinator chunks to capacity
                    results = [ResultSet(k) for _ in range(num_queries)]
                batch = index.knn_batch(
                    queries, k=k, config=config, results=results
                )
                for answer in batch:
                    answer.positions = answer.positions + row_base
                index.query_io.reset()
                out.append((shard_id, batch))
            except Exception:
                shard_errors.append((shard_id, traceback.format_exc()))
        conn.send(("ok", out, shard_errors))
    except BaseException:
        conn.send(("error", traceback.format_exc()))


@dataclass
class GatherOutcome:
    """One scatter-gather's raw outcome, before merge policy is applied.

    ``pairs`` holds the ``(shard_id, answer)`` results that arrived;
    ``shard_errors`` the ``(shard_id, reason)`` of every shard that
    failed past its retries; ``retries``/``worker_restarts`` count what
    the dispatch had to do.  :class:`~repro.core.sharding.ShardedIndex`
    turns this into a degraded answer or a :class:`ShardError`.
    """

    pairs: list = field(default_factory=list)
    shard_errors: list = field(default_factory=list)
    retries: int = 0
    worker_restarts: int = 0


class ShardQueryPool:
    """A supervised, persistent pool of query workers over opened shards.

    Shards are distributed round-robin over ``workers`` processes; each
    worker opens its shards once (cold) and keeps them — and their leaf
    caches — warm across queries, matching the paper's asynchronous
    warm-cache workload model.  One :class:`ProcessBsf` cell links every
    worker's pruning to the global best-so-far; the coordinator resets
    it before each scatter.

    Dispatch is fault-tolerant: per-shard errors reported by a live
    worker are retried per the :class:`~repro.retry.RetryPolicy`; a
    dead worker is respawned (its shards re-opened) within the
    ``max_worker_restarts`` budget and the query re-sent; a worker that
    misses its per-dispatch timeout is killed and restarted the same way
    (a late reply would poison the next query on that pipe).  Shards
    that still fail are reported in the :class:`GatherOutcome` instead
    of raising — degradation policy lives in the caller.
    """

    def __init__(
        self,
        shard_specs: list,
        workers: int,
        cache_bytes_per_shard: int,
        verify: str,
        max_worker_restarts: int = 2,
        join_timeout: float = 10.0,
    ) -> None:
        self._ctx = mp_context()
        self.bsf = ProcessBsf(self._ctx)
        self.bsf_vector = ProcessBsfVector(self._ctx)
        self._cache_bytes = cache_bytes_per_shard
        self._verify = verify
        self._join_timeout = join_timeout
        self._restarts_left = max_worker_restarts
        self.worker_restarts = 0
        workers = max(1, min(workers, len(shard_specs)))
        self._groups = [
            [
                (sid, str(path), base)
                for sid, path, base in shard_specs[i::workers]
            ]
            for i in range(workers)
        ]
        self._conns: list = [None] * workers
        self._procs: list = [None] * workers
        for i in range(workers):
            self._start_worker(i)
        for i, conn in enumerate(self._conns):
            reply = self._recv(conn, i)
            if reply[0] != "ready":
                self.close()
                raise ShardError(
                    f"query worker failed to open shards:\n{reply[1]}"
                )

    def _start_worker(self, i: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=query_worker_main,
            args=(
                child_conn,
                self._groups[i],
                self._cache_bytes,
                self._verify,
                self.bsf,
                self.bsf_vector,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[i] = parent_conn
        self._procs[i] = proc
        obs.watch_process(f"shard.{i}", proc.pid)

    def worker_pids(self) -> "list[int]":
        """Live worker pids, in worker order (for resource sampling)."""
        return [p.pid for p in self._procs if p is not None and p.is_alive()]

    def _restart_worker(self, i: int) -> bool:
        """Tear down worker ``i`` and respawn it; False when out of budget."""
        if self._restarts_left <= 0:
            return False
        self._restarts_left -= 1
        self.worker_restarts += 1
        proc, conn = self._procs[i], self._conns[i]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if proc.is_alive():
            proc.terminate()
        reap_processes([proc], timeout=1.0, label="query")
        logger.warning(
            "restarting query worker %d (shards %s); %d restarts left",
            i, [sid for sid, _, _ in self._groups[i]], self._restarts_left,
        )
        self._start_worker(i)
        reply = self._recv(self._conns[i], i)
        if reply[0] != "ready":
            raise ShardError(
                f"restarted query worker failed to open shards:\n{reply[1]}"
            )
        obs.emit_event(
            "worker_restart",
            kind="query",
            worker=i,
            dead_pid=proc.pid,
            new_pid=self._procs[i].pid,
            shards=[sid for sid, _, _ in self._groups[i]],
            restarts_left=self._restarts_left,
        )
        return True

    def _recv(self, conn, worker: int, timeout: Optional[float] = None):
        """Receive one reply; raises ShardError on death/timeout."""
        if timeout is not None and not conn.poll(timeout):
            raise ShardTimeoutError(
                f"query worker {worker} missed its {timeout:.2f}s dispatch "
                "timeout"
            )
        try:
            return conn.recv()
        except EOFError:
            raise ShardError(
                f"query worker {worker} process died (pipe closed)"
            ) from None

    def query(
        self,
        query: np.ndarray,
        k: int,
        mode: str = "exact",
        config: Optional[HerculesConfig] = None,
        l_max: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> GatherOutcome:
        """Scatter one query to every worker; gather a :class:`GatherOutcome`.

        Gathered pairs are sorted by shard id; positions are global.
        Worker failures are retried/restarted per ``policy``; whatever
        still fails lands in ``outcome.shard_errors``.
        """
        policy = policy if policy is not None else RetryPolicy()
        self.bsf.reset()
        payload = (
            "query",
            np.ascontiguousarray(query),
            int(k),
            mode,
            dataclasses.asdict(config) if config is not None else None,
            l_max,
            None,
        )
        started = time.monotonic()
        outcome = GatherOutcome()
        for conn in self._conns:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):
                pass  # death is handled during this worker's gather
        for i in range(len(self._conns)):
            self._gather_worker(i, payload, policy, started, outcome)
        outcome.pairs.sort(key=lambda pair: pair[0])
        return outcome

    @property
    def batch_capacity(self) -> int:
        """Queries one batched scatter can carry (BSF vector slots)."""
        return self.bsf_vector.capacity

    def query_batch(
        self,
        queries: np.ndarray,
        k: int,
        config: Optional[HerculesConfig] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> GatherOutcome:
        """Scatter a whole query batch: ONE round-trip per worker.

        Mirrors :meth:`query`, but the payload carries the (Q, n) block
        and gathered pairs are ``(shard_id, BatchAnswer)``.  The batch
        must fit :attr:`batch_capacity` (the coordinator chunks larger
        workloads); per-query BSF² bounds broadcast through the shared
        :class:`ProcessBsfVector`, reset here before the scatter.
        Failure handling — retries, restarts, ``only``-subset resends —
        is the same machinery the single-query path uses.
        """
        queries = np.ascontiguousarray(queries)
        if queries.shape[0] > self.batch_capacity:
            raise ValueError(
                f"batch of {queries.shape[0]} exceeds the pool's "
                f"{self.batch_capacity}-query scatter capacity"
            )
        policy = policy if policy is not None else RetryPolicy()
        self.bsf_vector.reset()
        payload = (
            "query_batch",
            queries,
            int(k),
            dataclasses.asdict(config) if config is not None else None,
            None,
        )
        started = time.monotonic()
        outcome = GatherOutcome()
        for conn in self._conns:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):
                pass  # death is handled during this worker's gather
        for i in range(len(self._conns)):
            self._gather_worker(i, payload, policy, started, outcome)
        outcome.pairs.sort(key=lambda pair: pair[0])
        return outcome

    def _gather_worker(
        self, i: int, payload, policy: RetryPolicy, started: float, outcome
    ) -> None:
        """Collect worker ``i``'s reply, retrying/restarting on failure."""
        shard_ids = [sid for sid, _, _ in self._groups[i]]
        pending = set(shard_ids)
        attempt = 1
        request = payload
        while True:
            try:
                reply = self._recv(
                    self._conns[i], i, timeout=self._wait_budget(policy, started)
                )
                if reply[0] == "error":
                    raise ShardError(
                        f"query worker {i} failed:\n{reply[1]}"
                    )
                _, pairs, shard_errors = reply
                outcome.pairs.extend(pairs)
                pending -= {sid for sid, _ in pairs}
                if not shard_errors:
                    return
                raise ShardError(
                    "; ".join(
                        f"shard {sid} query failed:\n{text}"
                        for sid, text in shard_errors
                    )
                )
            except ShardError as exc:
                desynced = isinstance(exc, ShardTimeoutError) or (
                    not self._procs[i].is_alive()
                )
                if desynced:
                    # The pipe can no longer be trusted (late replies
                    # would poison the next query): restart or disable.
                    try:
                        restarted = self._restart_worker(i)
                    except ShardError as restart_exc:
                        restarted = False
                        exc = restart_exc
                    if restarted:
                        outcome.worker_restarts += 1
                    else:
                        outcome.shard_errors.extend(
                            (sid, str(exc)) for sid in sorted(pending)
                        )
                        return
                if attempt >= policy.attempts or self._past_deadline(
                    policy, started
                ):
                    outcome.shard_errors.extend(
                        (sid, str(exc)) for sid in sorted(pending)
                    )
                    return
                time.sleep(policy.delay(attempt, key=f"worker-{i}"))
                attempt += 1
                outcome.retries += 1
                request = payload[:-1] + (sorted(pending),)
                try:
                    self._conns[i].send(request)
                except (BrokenPipeError, OSError):
                    continue  # recv will classify the death next loop

    @staticmethod
    def _past_deadline(policy: RetryPolicy, started: float) -> bool:
        return (
            policy.deadline is not None
            and time.monotonic() - started >= policy.deadline
        )

    def _wait_budget(
        self, policy: RetryPolicy, started: float
    ) -> Optional[float]:
        """How long one recv may block: per-dispatch timeout ∧ deadline."""
        budget = policy.shard_timeout
        if policy.deadline is not None:
            remaining = max(policy.deadline - (time.monotonic() - started), 0.0)
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        reap_processes(
            [p for p in self._procs if p is not None],
            self._join_timeout,
            "query",
        )
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._conns = []
        self._procs = []
