"""The Hercules index: the paper's primary contribution.

Public entry points: :class:`HerculesIndex` (build/open/knn) and
:class:`HerculesConfig` (all tunables including ablation switches).
"""

from repro.core.config import HerculesConfig
from repro.core.index import BuildReport, HerculesIndex
from repro.core.query import QueryAnswer, QueryProfile
from repro.core.results import ResultSet

__all__ = [
    "HerculesConfig",
    "HerculesIndex",
    "BuildReport",
    "QueryAnswer",
    "QueryProfile",
    "ResultSet",
]
