"""The Hercules index: the paper's primary contribution.

Public entry points: :class:`HerculesIndex` (build/open/knn),
:class:`HerculesConfig` (all tunables including ablation switches), and
the shard-parallel engine (:class:`ShardedIndex` / :func:`open_index`)
that scales construction and query answering past the GIL.
"""

from repro.core.batch_query import BatchAnswer, BatchStats
from repro.core.config import HerculesConfig
from repro.core.index import BuildReport, HerculesIndex
from repro.core.query import QueryAnswer, QueryProfile
from repro.core.results import LinkedResultSet, ResultSet, SharedBsf
from repro.core.sharding import (
    ShardedBuildReport,
    ShardedIndex,
    ShardedQueryAnswer,
    open_index,
    partition_rows,
    record_sharded_profile,
)

__all__ = [
    "BatchAnswer",
    "BatchStats",
    "HerculesConfig",
    "HerculesIndex",
    "BuildReport",
    "QueryAnswer",
    "QueryProfile",
    "ResultSet",
    "LinkedResultSet",
    "SharedBsf",
    "ShardedBuildReport",
    "ShardedIndex",
    "ShardedQueryAnswer",
    "open_index",
    "partition_rows",
    "record_sharded_profile",
]
