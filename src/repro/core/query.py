"""Exact k-NN query answering (Section 3.4, Algorithms 10-14, Figure 5).

The four phases:

1. **Approx-kNN** (Algorithm 11) — a best-first descent of the tree by
   LB_EAPCA visiting at most ``L_max`` leaves, computing real distances in
   each, to seed ``BSF_k``.
2. **FindCandidateLeaves** (Algorithm 12) — resume the same priority
   queue without touching disk, collecting the leaves that survive
   LB_EAPCA pruning into LCList, sorted by LRDFile position.
3. **FindCandidateSeries** (Algorithm 13) — multi-threaded LB_SAX pass
   over the in-memory iSAX words of the candidate leaves, producing
   per-thread candidate series lists (SCList).
4. **ComputeResults** (Algorithm 14) — multi-threaded refinement: load
   surviving series from LRDFile and compute real distances.

Adaptive access-path selection: when EAPCA pruning is weak
(``eapca_pr < EAPCA_TH``) phases 3-4 are replaced by a single-thread
skip-sequential scan of LRDFile over LCList, and when SAX pruning is weak
(``sax_pr < SAX_TH``) phase 4 is.  A skip-sequential scan pays one random
seek per surviving *leaf* (contiguous in LRDFile) instead of one per
surviving *series*, which is exactly why it wins on hard queries.

Distance kernels operate on whole leaf matrices (the SIMD analog) and the
pipeline runs end-to-end in *squared* distance space (the UCR-suite
optimization): lower bounds are ε-scaled and squared once, every pruning
comparison is against ``BSF²`` (:attr:`ResultSet.bsf_squared`), every
refinement site runs the blocked early-abandoning kernel with the live
``BSF²`` cutoff, and the one square root per answer happens in
``ResultSet.items()``.  The per-query :class:`QueryProfile` records the
path taken, pruning ratios, distance-computation / point-comparison and
I/O counts, plus leaf-cache hits, so harnesses can report the paper's
"percentage of accessed data" metric exactly.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.core.config import HerculesConfig
from repro.core.node import Node
from repro.core.results import ResultSet
from repro.distance.euclidean import early_abandon_squared
from repro.storage.files import SeriesFile
from repro.storage.iostats import IOSnapshot
from repro.summarization.eapca import SeriesSketch
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE, as_series


#: Disk parameters of the paper's testbed (Section 4.1): 10K RPM SAS
#: drives in RAID0 with 1290 MB/s sequential throughput.  Used to model
#: what the measured I/O pattern would cost on that hardware.
PAPER_SEEK_SECONDS = 0.005
PAPER_BANDWIDTH_BYTES = 1.29e9


@dataclass
class QueryProfile:
    """Per-query cost and path metrics."""

    path: str = ""
    #: Leaves visited by the approximate phase.
    approx_leaves: int = 0
    #: LCList size and the resulting EAPCA pruning ratio.
    candidate_leaves: int = 0
    eapca_pruning: float = 0.0
    #: SCList size and the resulting SAX pruning ratio (None if phase 3
    #: did not run).
    candidate_series: int = 0
    sax_pruning: Optional[float] = None
    #: Full Euclidean distance computations (series compared).  A series
    #: counts even when the early-abandoning kernel dropped it part-way
    #: through; the point-level savings show up in ``points_compared``.
    distance_computations: int = 0
    #: Individual point comparisons actually performed by the refinement
    #: kernels, and the number a no-abandon kernel would have performed.
    #: Their ratio is the UCR-suite early-abandoning savings.
    points_compared: int = 0
    points_total: int = 0
    #: Whole-array signature screen (zero/zero when the pre-filter tier
    #: is off): series screened and series surviving the LB_SAX pass.
    prefilter_screened: int = 0
    prefilter_survivors: int = 0
    #: Raw series read from LRDFile (drives "% of data accessed").
    series_accessed: int = 0
    #: Leaf-cache lookups served with / without a disk read (zero when no
    #: cache is attached to LRDFile).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds.
    time_total: float = 0.0
    #: Per-phase breakdown (approximate search; candidate-leaf collection;
    #: the third/fourth phases or the skip-sequential fallback).
    time_approx: float = 0.0
    time_candidates: float = 0.0
    time_refine: float = 0.0
    #: I/O performed by this query (filled by harnesses that wrap knn
    #: calls with IOStats snapshots; None when the data lives in memory).
    io: Optional["IOSnapshot"] = None

    def data_accessed_fraction(self, num_series: int) -> float:
        return self.series_accessed / num_series if num_series else 0.0

    @property
    def abandoned_fraction(self) -> float:
        """Fraction of point comparisons skipped by early abandoning."""
        if self.points_total <= 0:
            return 0.0
        return 1.0 - self.points_compared / self.points_total

    @property
    def prefilter_pruned_fraction(self) -> Optional[float]:
        """Fraction of series the signature screen pruned; None if it
        did not run."""
        if self.prefilter_screened <= 0:
            return None
        return 1.0 - self.prefilter_survivors / self.prefilter_screened

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Leaf-cache hit rate for this query; None without any lookups."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    def modeled_io_seconds(
        self,
        seek_seconds: float = PAPER_SEEK_SECONDS,
        bandwidth_bytes: float = PAPER_BANDWIDTH_BYTES,
        byte_scale: float = 1.0,
    ) -> float:
        """What this query's I/O pattern would cost on the paper's disks.

        Laptop-scale files sit in the OS page cache, so measured
        wall-clock underestimates disk effects; this projects the counted
        random seeks and bytes onto the paper's hardware.  Returns 0 when
        no I/O was captured.

        ``byte_scale`` maps the volumes to the paper's regime: a
        scaled-down reproduction keeps the paper's *tree shape* (leaf
        counts, candidate counts, hence seek counts) but shrinks every
        leaf by roughly (paper leaf size / configured leaf size); passing
        that ratio scales the byte term back up so the seek-vs-bandwidth
        balance matches the hardware the constants describe.  The
        default 1.0 reports the raw pattern.
        """
        if self.io is None:
            return 0.0
        return (
            self.io.random_seeks * seek_seconds
            + self.io.bytes_read * byte_scale / bandwidth_bytes
        )


@dataclass
class QueryAnswer:
    """Exact k-NN answers plus the profile of how they were computed."""

    distances: np.ndarray
    positions: np.ndarray
    profile: QueryProfile = field(default_factory=QueryProfile)

    @property
    def k(self) -> int:
        return self.distances.shape[0]


class _SearchState:
    """Mutable state threaded through the four phases of one query."""

    def __init__(
        self,
        query: np.ndarray,
        k: int,
        config: HerculesConfig,
        lrd: SeriesFile,
        lsd_words: np.ndarray,
        sax_space: SaxSpace,
        num_leaves: int,
        num_series: int,
        results: Optional[ResultSet] = None,
    ) -> None:
        self.query = as_series(query).astype(DISTANCE_DTYPE)
        self.sketch = SeriesSketch(self.query)
        self.k = k
        self.config = config
        self.lrd = lrd
        self.lsd_words = lsd_words
        self.sax_space = sax_space
        self.num_leaves = num_leaves
        self.num_series = num_series
        self._cache_before = (
            lrd.cache.snapshot() if lrd.cache is not None else None
        )
        # An externally supplied ResultSet lets a coordinator link this
        # search to others (shard scatter-gather shares the global BSF²
        # through a LinkedResultSet); the default is a private set.
        self.results = results if results is not None else ResultSet(k)
        self.profile = QueryProfile()
        # ε-approximate search tightens every pruning comparison by this
        # factor; 1.0 keeps the search exact (Algorithm 10 as published).
        # All comparisons against BSF happen in squared-distance space, so
        # the factor is applied to the (linear) lower bound and the product
        # squared once — never squared twice.
        self.prune_factor = 1.0 + config.epsilon
        self.pq: list[tuple[float, int, Node]] = []
        self._tiebreak = itertools.count()
        self.query_paa = paa(self.query, sax_space.segments)
        #: Survivor mask of the signature screen (None: tier off); phase
        #: 3 intersects per-leaf row masks with slices of it.
        self.sig_mask: Optional[np.ndarray] = None

    def scaled_squared(self, bound: float) -> float:
        """A linear-space lower bound, ε-scaled and squared for pruning.

        Comparing this against ``results.bsf_squared`` is the squared-space
        equivalent of comparing ``bound * prune_factor`` against ``bsf``
        (both sides are non-negative, so squaring preserves the order).
        """
        scaled = bound * self.prune_factor
        return scaled * scaled

    # -- priority queue helpers ---------------------------------------------

    def push(self, node: Node, bound: float) -> None:
        heapq.heappush(self.pq, (bound, next(self._tiebreak), node))

    def pop(self) -> tuple[float, Node]:
        bound, _, node = heapq.heappop(self.pq)
        return bound, node

    # -- leaf access ----------------------------------------------------------

    def read_leaf(self, leaf: Node) -> np.ndarray:
        """Raw series of a leaf from LRDFile (counted)."""
        data = self.lrd.read_range(leaf.file_position, leaf.size)
        self.profile.series_accessed += leaf.size
        return data

    def scan_leaf(self, leaf: Node) -> None:
        """Read one leaf and refine the result set with real distances.

        Refinement runs the blocked early-abandoning kernel against the
        live BSF²: a candidate abandoned here has distance ≥ the BSF at
        scan time ≥ the final BSF (it decreases monotonically), so it
        could never have entered the top-k — results are identical to a
        full evaluation, only the point comparisons are saved.  The ε
        factor never applies here: it tightens lower-bound pruning, not
        real-distance refinement.
        """
        data = self.read_leaf(leaf)
        squared, compared = early_abandon_squared(
            self.query, data, self.results.bsf_squared
        )
        self.profile.distance_computations += leaf.size
        self.profile.points_compared += compared
        self.profile.points_total += leaf.size * self.query.shape[0]
        positions = leaf.file_position + np.arange(leaf.size, dtype=np.int64)
        # Abandoned rows report inf; the batch update's pre-filter drops
        # them without ever taking the result-set lock.
        self.results.update_batch_squared(squared, positions)

    def finish_profile(self) -> None:
        """Fill the per-query cache counters from LRDFile's leaf cache."""
        cache = self.lrd.cache
        if cache is not None and self._cache_before is not None:
            delta = cache.snapshot() - self._cache_before
            self.profile.cache_hits = delta.hits
            self.profile.cache_misses = delta.misses


def exact_knn(
    query: np.ndarray,
    k: int,
    config: HerculesConfig,
    root: Node,
    lrd: SeriesFile,
    lsd_words: np.ndarray,
    sax_space: SaxSpace,
    num_leaves: int,
    num_series: int,
    results: Optional[ResultSet] = None,
    signatures=None,
) -> QueryAnswer:
    """Algorithm 10: Exact-kNN.

    ``results`` optionally supplies the result set to search into —
    shard coordinators pass a linked set whose ``bsf_squared`` reflects
    the global best-so-far, tightening every pruning site here without
    any other change to the pipeline.

    ``signatures`` optionally supplies the in-RAM
    :class:`~repro.core.prefilter.SignatureArray`: after phase 1 has
    established a finite BSF, one vectorized whole-array LB_SAX screen
    prunes rows whose ε-scaled bound cannot beat it, dropping leaves
    with no surviving rows from LCList and intersecting phase 3's
    per-leaf masks.  Screening with a valid lower bound never changes
    exact answers — they stay bit-for-bit identical to the unfiltered
    pipeline.
    """
    started = time.perf_counter()
    io_before = lrd.stats.snapshot()
    state = _SearchState(
        query, k, config, lrd, lsd_words, sax_space, num_leaves, num_series,
        results=results,
    )

    with obs.span("query", k=k) as query_span:
        with obs.span("query.phase1.approx") as sp:
            _approx_knn(state, root)
            sp.set("leaves_visited", state.profile.approx_leaves)
        state.profile.time_approx = time.perf_counter() - started

        phase2_started = time.perf_counter()
        with obs.span("query.phase2.candidates") as sp:
            lclist = _find_candidate_leaves(state)
            sp.set("candidate_leaves", len(lclist))
        state.profile.time_candidates = time.perf_counter() - phase2_started

        # The adaptive path decision below keys off the *tree's* pruning
        # quality, so it is taken from the pre-screen LCList: both the
        # filtered and unfiltered pipeline choose the same refine path,
        # and the screen can only subtract work from it.
        eapca_pr = 1.0 - (len(lclist) / num_leaves if num_leaves else 0.0)
        state.profile.eapca_pruning = eapca_pr

        # Runs even when phase 2 already emptied LCList: the pass is one
        # cheap vectorized sweep, and recording screened/survivors for
        # every filtered query keeps the pruned-fraction metric honest.
        if signatures is not None:
            with obs.span("query.prefilter") as sp:
                state.sig_mask = signatures.screen(
                    state.query_paa,
                    state.results.bsf_squared,
                    state.query.shape[0],
                    prune_factor=state.prune_factor,
                    hamming=config.prefilter_hamming,
                )
                state.profile.prefilter_screened = signatures.num_series
                state.profile.prefilter_survivors = int(
                    np.count_nonzero(state.sig_mask)
                )
                # A leaf with no surviving rows is never descended.
                lclist = [
                    (leaf, bound)
                    for leaf, bound in lclist
                    if state.sig_mask[
                        leaf.file_position : leaf.file_position + leaf.size
                    ].any()
                ]
                sp.set_attrs(
                    screened=state.profile.prefilter_screened,
                    survivors=state.profile.prefilter_survivors,
                    surviving_leaves=len(lclist),
                )

        state.profile.candidate_leaves = len(lclist)

        refine_started = time.perf_counter()
        if not lclist:
            state.profile.path = "approx-only"
        elif config.adaptive_thresholds and eapca_pr < config.eapca_th:
            with obs.span("query.refine.skipseq", reason="eapca"):
                _skip_sequential(state, lclist)
            state.profile.path = "eapca-skipseq"
        elif not config.use_sax:
            with obs.span("query.phase4.refine", mode="leaves"):
                _compute_results_from_leaves(state, lclist)
            state.profile.path = "nosax-leaves"
        else:
            with obs.span("query.phase3.filter") as sp:
                sclists = _find_candidate_series(state, lclist)
                total_candidates = sum(len(chunk[0]) for chunk in sclists)
                sp.set("candidate_series", total_candidates)
            sax_pr = 1.0 - (
                total_candidates / num_series if num_series else 0.0
            )
            state.profile.candidate_series = total_candidates
            state.profile.sax_pruning = sax_pr
            if config.adaptive_thresholds and sax_pr < config.sax_th:
                with obs.span("query.refine.skipseq", reason="sax"):
                    _skip_sequential(state, lclist)
                state.profile.path = "sax-skipseq"
            else:
                with obs.span("query.phase4.refine", mode="series"):
                    _compute_results(state, sclists)
                state.profile.path = "full-four-phase"

        state.profile.time_refine = time.perf_counter() - refine_started
        distances, positions = state.results.items()
        state.profile.time_total = time.perf_counter() - started
        state.profile.io = lrd.stats.snapshot() - io_before
        state.finish_profile()
        obs.observe_search(state.profile.time_total)
        io = state.profile.io
        query_span.set_attrs(
            path=state.profile.path,
            eapca_pruning=state.profile.eapca_pruning,
            sax_pruning=state.profile.sax_pruning,
            series_accessed=state.profile.series_accessed,
            distance_computations=state.profile.distance_computations,
            points_compared=state.profile.points_compared,
            abandoned_fraction=state.profile.abandoned_fraction,
            cache_hits=state.profile.cache_hits,
            cache_misses=state.profile.cache_misses,
            random_seeks=io.random_seeks,
            sequential_reads=io.sequential_reads,
            bytes_read=io.bytes_read,
        )
    return QueryAnswer(distances, positions, state.profile)


def approximate_knn(
    query: np.ndarray,
    k: int,
    config: HerculesConfig,
    root: Node,
    lrd: SeriesFile,
    lsd_words: np.ndarray,
    sax_space: SaxSpace,
    num_leaves: int,
    num_series: int,
    results: Optional[ResultSet] = None,
) -> QueryAnswer:
    """Approximate k-NN: Algorithm 11 alone (phase 1, then stop).

    This is the approximate-answering mode the paper's conclusion points
    to: the best-first descent visits at most ``L_max`` leaves and the
    best-so-far answers become the result.  Answers are not guaranteed
    exact; recall grows with ``L_max`` (measured in the benchmark suite).
    ``results`` plays the same role as in :func:`exact_knn`.
    """
    started = time.perf_counter()
    io_before = lrd.stats.snapshot()
    state = _SearchState(
        query, k, config, lrd, lsd_words, sax_space, num_leaves, num_series,
        results=results,
    )
    with obs.span("query", k=k, mode="approximate") as sp:
        with obs.span("query.phase1.approx"):
            _approx_knn(state, root)
        distances, positions = state.results.items()
        state.profile.path = "approximate"
        state.profile.time_total = time.perf_counter() - started
        state.profile.io = lrd.stats.snapshot() - io_before
        state.finish_profile()
        obs.observe_search(state.profile.time_total)
        sp.set_attrs(
            path=state.profile.path,
            leaves_visited=state.profile.approx_leaves,
            series_accessed=state.profile.series_accessed,
        )
    return QueryAnswer(distances, positions, state.profile)


def progressive_knn(
    query: np.ndarray,
    k: int,
    config: HerculesConfig,
    root: Node,
    lrd: SeriesFile,
    lsd_words: np.ndarray,
    sax_space: SaxSpace,
    num_leaves: int,
    num_series: int,
):
    """Progressive k-NN: yield improving answers until the exact result.

    The paper motivates indexes with interactive analysis (Section 4.1's
    asynchronous workloads; its refs [27, 28] study progressive answers
    explicitly).  This generator exposes that interaction model: it
    yields a :class:`QueryAnswer` snapshot after every leaf visited by
    the best-first descent (each strictly refining the last), and a
    final *exact* answer produced by the standard pipeline.  The
    consumer may stop iterating at any point and keep the best answer
    seen so far.

    Snapshots carry ``profile.path == "progressive-partial"``; the last
    yield carries the full exact profile.
    """
    started = time.perf_counter()
    io_before = lrd.stats.snapshot()
    state = _SearchState(
        query, k, config, lrd, lsd_words, sax_space, num_leaves, num_series
    )
    state.push(root, root.lower_bound(state.sketch))
    visited = 0
    while state.pq:
        bound, node = state.pop()
        if state.scaled_squared(bound) > state.results.bsf_squared:
            state.push(node, bound)
            break
        if node.is_leaf:
            state.scan_leaf(node)
            visited += 1
            distances, positions = state.results.items()
            snapshot = QueryProfile(
                path="progressive-partial",
                approx_leaves=visited,
                series_accessed=state.profile.series_accessed,
                distance_computations=state.profile.distance_computations,
                points_compared=state.profile.points_compared,
                points_total=state.profile.points_total,
                time_total=time.perf_counter() - started,
            )
            yield QueryAnswer(distances, positions, snapshot)
        else:
            for child in (node.left, node.right):
                child_bound = child.lower_bound(state.sketch)
                if state.scaled_squared(child_bound) < state.results.bsf_squared:
                    state.push(child, child_bound)
    state.profile.approx_leaves = visited

    # The descent above ran to pruning-exhaustion, which already makes
    # the current answers exact: the remaining phases would find nothing
    # (every queue entry was pruned).  Emit the final answer with the
    # exact-path profile for uniformity.
    distances, positions = state.results.items()
    state.profile.path = "progressive-final"
    state.profile.time_total = time.perf_counter() - started
    state.profile.io = lrd.stats.snapshot() - io_before
    state.finish_profile()
    yield QueryAnswer(distances, positions, state.profile)


# ---------------------------------------------------------------------------
# Phase 1: Algorithm 11 (Approx-kNN)
# ---------------------------------------------------------------------------


def _approx_knn(state: _SearchState, root: Node) -> None:
    state.push(root, root.lower_bound(state.sketch))
    visited = 0
    while visited < state.config.l_max and state.pq:
        bound, node = state.pop()
        if state.scaled_squared(bound) > state.results.bsf_squared:
            # Everything else in the queue is at least this far: stop.
            state.push(node, bound)  # keep it for phase 2's termination
            break
        if node.is_leaf:
            state.scan_leaf(node)
            visited += 1
        else:
            for child in (node.left, node.right):
                child_bound = child.lower_bound(state.sketch)
                if state.scaled_squared(child_bound) < state.results.bsf_squared:
                    state.push(child, child_bound)
    state.profile.approx_leaves = visited


# ---------------------------------------------------------------------------
# Phase 2: Algorithm 12 (FindCandidateLeaves)
# ---------------------------------------------------------------------------


def _find_candidate_leaves(state: _SearchState) -> list[tuple[Node, float]]:
    # BSF² is fixed for this phase; no distances are computed here.
    bsf_squared = state.results.bsf_squared
    lclist: list[tuple[Node, float]] = []
    while state.pq:
        bound, node = state.pop()
        if state.scaled_squared(bound) > bsf_squared:
            break  # priority order: all remaining nodes prune too
        if node.is_leaf:
            lclist.append((node, bound))
        else:
            for child in (node.left, node.right):
                child_bound = child.lower_bound(state.sketch)
                if state.scaled_squared(child_bound) < bsf_squared:
                    state.push(child, child_bound)
    lclist.sort(key=lambda pair: pair[0].file_position)
    return lclist


# ---------------------------------------------------------------------------
# Skip-sequential scan over LRDFile (the adaptive fallback)
# ---------------------------------------------------------------------------


def _skip_sequential(
    state: _SearchState, lclist: list[tuple[Node, float]]
) -> None:
    """Single-thread scan of candidate leaves in file order.

    Leaves are visited in increasing LRDFile position (sequential-friendly)
    and re-checked against the *current* BSF before each read, so the scan
    tightens as it progresses.
    """
    for leaf, bound in lclist:
        if state.scaled_squared(bound) >= state.results.bsf_squared:
            continue
        state.scan_leaf(leaf)


# ---------------------------------------------------------------------------
# Phase 3: Algorithm 13 (FindCandidateSeries / CSWorker)
# ---------------------------------------------------------------------------


def _find_candidate_series(
    state: _SearchState, lclist: list[tuple[Node, float]]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-thread (positions, scaled-squared lb_sax) candidate lists.

    LB_SAX comes out of ``mindist`` in linear space; it is ε-scaled and
    squared *once* here, so phase 4's re-checks compare the stored value
    straight against the live BSF² — no per-batch sqrt or re-scaling.
    """
    bsf_squared = state.results.bsf_squared  # Algorithm 13: BSF_k by value
    num_threads = state.config.num_query_threads
    counter = itertools.count()
    counter_lock = threading.Lock()
    locals_: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(num_threads)
    ]
    errors: list[BaseException] = []

    def fetch_add() -> int:
        with counter_lock:
            return next(counter)

    def cs_worker(thread_id: int) -> None:
        try:
            while True:
                j = fetch_add()
                if j >= len(lclist):
                    return
                leaf, _ = lclist[j]
                words = state.lsd_words[
                    leaf.file_position : leaf.file_position + leaf.size
                ]
                bounds = state.sax_space.mindist(
                    state.query_paa, words, state.query.shape[0]
                )
                scaled = bounds * state.prune_factor
                scaled_sq = scaled * scaled
                mask = scaled_sq < bsf_squared
                if state.sig_mask is not None:
                    mask &= state.sig_mask[
                        leaf.file_position : leaf.file_position + leaf.size
                    ]
                if mask.any():
                    positions = leaf.file_position + np.nonzero(mask)[0]
                    locals_[thread_id].append((positions, scaled_sq[mask]))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    _run_workers(
        cs_worker, num_threads, errors, span_name="query.phase3.worker"
    )

    merged: list[tuple[np.ndarray, np.ndarray]] = []
    for chunks in locals_:
        if chunks:
            merged.append(
                (
                    np.concatenate([c[0] for c in chunks]),
                    np.concatenate([c[1] for c in chunks]),
                )
            )
        else:
            merged.append(
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=DISTANCE_DTYPE))
            )
    return merged


# ---------------------------------------------------------------------------
# Phase 4: Algorithm 14 (ComputeResults / CRWorker)
# ---------------------------------------------------------------------------

#: Candidates refined per batch by each CRWorker; adjacent file positions
#: inside a batch are coalesced into single reads.
_REFINE_BATCH = 64


def _compute_results(
    state: _SearchState, sclists: list[tuple[np.ndarray, np.ndarray]]
) -> None:
    """Each CRWorker refines its own SCList[id] (Algorithm 14)."""
    errors: list[BaseException] = []
    profile_lock = threading.Lock()

    def cr_worker(thread_id: int) -> None:
        try:
            # bounds arrive ε-scaled and squared from phase 3: each
            # re-check against the live BSF² is one vector compare.
            positions, bounds_sq = sclists[thread_id]
            length = state.query.shape[0]
            read = 0
            computed = 0
            points = 0
            for start in range(0, positions.shape[0], _REFINE_BATCH):
                chunk_pos = positions[start : start + _REFINE_BATCH]
                chunk_lb_sq = bounds_sq[start : start + _REFINE_BATCH]
                alive = chunk_lb_sq < state.results.bsf_squared
                if not alive.any():
                    continue
                keep = chunk_pos[alive]
                data = state.lrd.read_positions(keep)
                read += keep.shape[0]
                squared, compared = early_abandon_squared(
                    state.query, data, state.results.bsf_squared
                )
                computed += keep.shape[0]
                points += compared
                state.results.update_batch_squared(squared, keep)
            with profile_lock:
                state.profile.series_accessed += read
                state.profile.distance_computations += computed
                state.profile.points_compared += points
                state.profile.points_total += computed * length
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    _run_workers(
        cr_worker, len(sclists), errors, span_name="query.phase4.worker"
    )


def _compute_results_from_leaves(
    state: _SearchState, lclist: list[tuple[Node, float]]
) -> None:
    """NoSAX ablation: refine whole candidate leaves with real distances.

    Without iSAX words there is no per-series filter; threads claim
    leaves (in file order) and compute real distances over each.
    """
    counter = itertools.count()
    counter_lock = threading.Lock()
    errors: list[BaseException] = []
    profile_lock = threading.Lock()

    def worker(thread_id: int) -> None:
        try:
            length = state.query.shape[0]
            read = 0
            computed = 0
            points = 0
            while True:
                with counter_lock:
                    j = next(counter)
                if j >= len(lclist):
                    break
                leaf, bound = lclist[j]
                if state.scaled_squared(bound) >= state.results.bsf_squared:
                    continue
                data = state.lrd.read_range(leaf.file_position, leaf.size)
                read += leaf.size
                squared, compared = early_abandon_squared(
                    state.query, data, state.results.bsf_squared
                )
                computed += leaf.size
                points += compared
                positions = leaf.file_position + np.arange(
                    leaf.size, dtype=np.int64
                )
                state.results.update_batch_squared(squared, positions)
            with profile_lock:
                state.profile.series_accessed += read
                state.profile.distance_computations += computed
                state.profile.points_compared += points
                state.profile.points_total += computed * length
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    _run_workers(
        worker,
        state.config.num_query_threads,
        errors,
        span_name="query.phase4.worker",
    )


def _run_workers(
    target,
    num_threads: int,
    errors: list[BaseException],
    span_name: Optional[str] = None,
) -> None:
    """Run ``target(thread_id)`` on N threads (inline when N == 1).

    With ``span_name`` each worker's run is recorded as a trace span
    parented to the phase span that launched the fan-out — worker
    threads have no ambient span stack of their own, so the parent is
    captured here, on the calling thread, and attached explicitly.
    """
    parent = obs.current_span()

    def run(thread_id: int) -> None:
        if span_name is None:
            target(thread_id)
        else:
            with obs.span(span_name, parent=parent, worker=thread_id):
                target(thread_id)

    if num_threads == 1:
        run(0)
    else:
        threads = [
            threading.Thread(target=run, args=(i,), daemon=True)
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
